#!/usr/bin/env python3
"""The paper's Section 3.1 walkthrough, replayed on the simulator.

Section 3.1 narrates a two-flit packet (one head, one tail) crossing
each canonical router from the injection channel to the eastern output.
This example injects exactly that packet into each simulated router and
prints the traced events, so you can follow routing, (VC) allocation,
switch arbitration/allocation and crossbar traversal cycle by cycle --
and see the speculative router's combined allocation stage save its
cycle.

Run:  python examples/paper_walkthrough.py
"""

from repro.sim import (
    Network,
    Packet,
    RouterKind,
    SimConfig,
    Tracer,
)

NARRATIVE = {
    RouterKind.WORMHOLE: (
        "Wormhole (Figure 2): the head is buffered and routed, bids the\n"
        "global switch arbiter for the eastern port, holds it, and\n"
        "traverses; the tail follows without re-arbitrating and releases\n"
        "the port.  Three stages: RC | SA | ST."
    ),
    RouterKind.VIRTUAL_CHANNEL: (
        "Virtual-channel (Figure 3): after routing, the head must first\n"
        "win an output VC from the global VC allocator, and only then\n"
        "bid the switch -- allocated flit-by-flit.  Four stages:\n"
        "RC | VA | SA | ST; note the extra cycle before the first\n"
        "traversal."
    ),
    RouterKind.SPECULATIVE_VC: (
        "Speculative VC (Figure 4c): the head bids for the switch *while*\n"
        "bidding for the VC, speculating the allocation succeeds.  In an\n"
        "empty router it always does, so the traversal happens a cycle\n"
        "earlier than the non-speculative router -- wormhole timing with\n"
        "virtual channels."
    ),
}


def walkthrough(kind: RouterKind) -> None:
    vcs = 2 if kind.uses_vcs else 1
    network = Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=4,
        injection_fraction=0.0,
    ))
    tracer = Tracer.attach(network)

    # The paper's example: a two-flit packet entering at the injection
    # channel, leaving through the eastern output (node 0 -> node 1).
    packet = Packet(source=0, destination=1, length=2, creation_cycle=0)
    network.sources[0].enqueue(packet)
    network.run(40)

    print("=" * 72)
    print(NARRATIVE[kind])
    print("-" * 72)
    print(tracer.render(tracer.packet_events(packet.packet_id)))
    print(f"-> packet latency: {packet.latency} cycles\n")


def main() -> None:
    print(__doc__)
    for kind in (
        RouterKind.WORMHOLE,
        RouterKind.VIRTUAL_CHANNEL,
        RouterKind.SPECULATIVE_VC,
    ):
        walkthrough(kind)
    print(
        "Reading the traces: 'switch_grant' in the speculative router\n"
        "lands one cycle earlier than in the non-speculative one -- that\n"
        "cycle, times hops per packet, is the paper's entire latency\n"
        "argument."
    )


if __name__ == "__main__":
    main()
