#!/usr/bin/env python3
"""Watch congestion form: occupancy heat maps under adversarial traffic.

Runs transpose traffic on the 8x8 mesh and prints ASCII heat maps of
buffer occupancy for three routing policies.  Under XY routing the load
piles onto the diagonal band; O1TURN splits it across both orders;
adaptive routing flattens it almost completely.  The busiest routers are
then dumped in detail (VC states, routes, held resources) -- the same
tools you would reach for when debugging a stuck simulation.

Run:  python examples/congestion_atlas.py [--load 0.45] [--cycles 1500]
"""

import argparse

from repro.sim import (
    Network,
    RouterKind,
    SimConfig,
    busiest_routers,
    describe_router,
    occupancy_map,
)


def atlas(routing: str, load: float, cycles: int) -> None:
    network = Network(SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        injection_fraction=load, traffic_pattern="transpose",
        routing_function=routing, seed=3,
    ))
    network.run(cycles)
    delivered = [p for sink in network.sinks for p in sink.delivered]
    latency = (
        sum(p.latency for p in delivered) / len(delivered)
        if delivered else float("nan")
    )
    print("=" * 60)
    print(f"routing = {routing}  (avg latency so far: {latency:.1f} cycles)")
    print(occupancy_map(network))
    print()
    hottest = busiest_routers(network, count=2)
    for router in hottest:
        print(describe_router(router))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.45,
                        help="offered load (fraction of capacity)")
    parser.add_argument("--cycles", type=int, default=1500)
    args = parser.parse_args()

    print(f"Transpose traffic at {args.load:.0%} of capacity, "
          f"{args.cycles} cycles\n")
    for routing in ("xy", "o1turn", "adaptive"):
        atlas(routing, args.load, args.cycles)
    print(
        "Reading the maps: '@'/'#' cells are nearly full input buffers.\n"
        "XY concentrates them along the transpose diagonal; o1turn halves\n"
        "the band; adaptive routing spreads load until the maps go quiet."
    )


if __name__ == "__main__":
    main()
