#!/usr/bin/env python3
"""Anatomy of speculation: success rate vs offered load.

The speculative router bets that a head flit will win an output VC in
the same cycle it bids for the switch.  At low load the bet almost
always pays (free VCs everywhere), which is where the saved pipeline
stage matters most; under congestion more bets fail -- but because
non-speculative requests always take priority, the misses only waste
crossbar slots nobody else claimed.

This example sweeps offered load and reports the speculation success
rate alongside latency, then shows the conservative-priority property:
the non-speculative traffic's switch grants are unaffected by
speculation (an invariant the test suite also checks at the allocator
level).

Run:  python examples/speculation_anatomy.py
"""

from repro.core import measure_speculation
from repro.sim import MeasurementConfig

MEASUREMENT = MeasurementConfig(
    warmup_cycles=400, sample_packets=600, max_cycles=20_000,
    drain_cycles=5_000,
)


def main() -> None:
    print("Speculative VC router (2 VCs x 4 buffers), 8x8 mesh\n")
    print(f"{'load':>6} {'spec grants':>12} {'success':>8} {'latency':>9}")
    for load in (0.05, 0.15, 0.25, 0.35, 0.45, 0.55):
        report = measure_speculation(
            injection_fraction=load, measurement=MEASUREMENT,
        )
        print(
            f"{load:6.0%} {report.spec_grants:12d} "
            f"{report.success_rate:8.1%} {report.average_latency:9.1f}"
        )
    print(
        "\nReading: success stays high well past mid-load -- the single"
        "\ncombined allocation stage is nearly always as good as the"
        "\nnon-speculative router's two serial stages, at one cycle less"
        "\nper hop."
    )


if __name__ == "__main__":
    main()
