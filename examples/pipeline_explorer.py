#!/usr/bin/env python3
"""Explore router pipelines across clock targets and configurations.

The paper's central modelling point: cycle time is set by the system
(chip-to-chip signalling, the processor clock), and the router pipeline
depth must follow.  This example sweeps the clock from aggressive to
relaxed and shows how the model (EQ 1 + Table 1) re-pipelines each
router -- plus the effect of the routing-function range on the
speculative router's allocation stage (Figure 12).

Run:  python examples/pipeline_explorer.py [--p 5] [--w 32]
"""

import argparse

from repro.delaymodel import (
    CMOS_018UM,
    RoutingRange,
    speculative_allocation_delay,
    speculative_vc_pipeline,
    tau_to_tau4,
    virtual_channel_pipeline,
    wormhole_pipeline,
)


def depth_table(p: int, w: int) -> None:
    print(f"Pipeline depth vs clock (p={p}, w={w}, v=4):")
    clocks = (12.0, 16.0, 20.0, 28.0, 40.0)
    header = f"{'clock (tau4)':>14} {'MHz@0.18um':>11} {'WH':>4} {'VC':>4} {'specVC':>7}"
    print(header)
    for clk in clocks:
        wormhole = wormhole_pipeline(p, w, clk).depth
        vc = virtual_channel_pipeline(p, 4, w, clock_tau4=clk).depth
        spec = speculative_vc_pipeline(p, 4, w, clock_tau4=clk).depth
        mhz = CMOS_018UM.clock_frequency_mhz(clk)
        print(f"{clk:14.0f} {mhz:11.0f} {wormhole:4d} {vc:4d} {spec:7d}")
    print()


def vc_scaling(p: int, w: int) -> None:
    print(f"Pipeline depth vs virtual channels (p={p}, w={w}, clk=20 tau4):")
    print(f"{'v':>4} {'VC (Rpv)':>9} {'specVC (Rv)':>12}")
    for v in (2, 4, 8, 16, 32):
        vc = virtual_channel_pipeline(p, v, w).depth
        spec = speculative_vc_pipeline(p, v, w).depth
        print(f"{v:4d} {vc:9d} {spec:12d}")
    print()


def routing_range_effect(p: int) -> None:
    print(f"Combined VC+switch allocation delay by routing range (p={p}):")
    print(f"{'v':>4} {'R->v':>7} {'R->p':>7} {'R->pv':>7}   (tau4; one cycle = 20)")
    for v in (2, 4, 8, 16, 32):
        delays = [
            tau_to_tau4(speculative_allocation_delay(p, v, rng))
            for rng in (RoutingRange.RV, RoutingRange.RP, RoutingRange.RPV)
        ]
        marks = ["*" if d <= 20.0 else " " for d in delays]
        print(
            f"{v:4d} {delays[0]:6.1f}{marks[0]} {delays[1]:6.1f}{marks[1]} "
            f"{delays[2]:6.1f}{marks[2]}"
        )
    print("(* fits within a single 20-tau4 cycle -- Figure 12's takeaway:")
    print(" a narrower routing function keeps allocation single-cycle.)\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--p", type=int, default=5,
                        help="physical channels (5 = 2D mesh router)")
    parser.add_argument("--w", type=int, default=32, help="phit width, bits")
    args = parser.parse_args()

    depth_table(args.p, args.w)
    vc_scaling(args.p, args.w)
    routing_range_effect(args.p)


if __name__ == "__main__":
    main()
