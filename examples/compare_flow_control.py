#!/usr/bin/env python3
"""Compare wormhole, VC, and speculative-VC flow control under load.

Reproduces a miniature Figure 13/14: latency-throughput curves for the
three flow-control methods on the 8x8 mesh, printed as aligned text
tables, with saturation estimates.  This is the experiment behind the
paper's headline claim -- a speculative virtual-channel router gets
wormhole latency *and* virtual-channel throughput.

Run:  python examples/compare_flow_control.py [--buffers 8|16] [--quick]
                                              [--workers N] [--cache]
"""

import argparse

from repro.experiments.sweep import compare_curves
from repro.runtime import Experiment
from repro.sim import MeasurementConfig, RouterKind, SimConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--buffers", type=int, default=8, choices=(8, 16),
        help="flit buffers per input port (8 -> Figure 13, 16 -> Figure 14)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer load points and smaller samples (~1 minute)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="run sweep points across N worker processes",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="reuse results from the on-disk cache across invocations",
    )
    args = parser.parse_args()

    per_vc = args.buffers // 2
    configs = [
        ("wormhole", SimConfig(
            router_kind=RouterKind.WORMHOLE, buffers_per_vc=args.buffers,
        )),
        ("virtual-channel (2 VCs)", SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL,
            num_vcs=2, buffers_per_vc=per_vc,
        )),
        ("speculative VC (2 VCs)", SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            num_vcs=2, buffers_per_vc=per_vc,
        )),
    ]

    if args.quick:
        loads = (0.05, 0.35, 0.55)
        measurement = MeasurementConfig(
            warmup_cycles=300, sample_packets=400, max_cycles=12_000,
            drain_cycles=3_000,
        )
    else:
        loads = (0.05, 0.20, 0.35, 0.45, 0.55, 0.65)
        measurement = MeasurementConfig(
            warmup_cycles=600, sample_packets=1500, max_cycles=40_000,
            drain_cycles=8_000,
        )

    print(f"8x8 mesh, {args.buffers} flit buffers per input port, "
          f"5-flit packets, uniform traffic\n")
    # One Experiment batches every (curve, load) point: with --workers
    # they fan out in parallel, with --cache re-runs are near-instant.
    experiment = Experiment(
        measurement, workers=args.workers, cache=args.cache or None,
    )
    curves = experiment.sweeps(
        [(label, config) for label, config in configs], loads=loads
    )
    print(compare_curves(curves))
    print(
        "\nExpected shape (paper Figures 13/14): the wormhole router"
        "\nsaturates first; the non-speculative VC router extends"
        "\nthroughput but pays one pipeline stage of latency per hop; the"
        "\nspeculative VC router keeps the wormhole latency and saturates"
        "\nlast."
    )


if __name__ == "__main__":
    main()
