#!/usr/bin/env python3
"""Beyond the paper: torus topology, O1TURN, and adaptive routing.

The paper's conclusion lists "other topologies" and "other routing
policies" as extensions.  This example runs both, built on the same
speculative VC router:

1. **8x8 torus** with dateline VC classes: wrap links shorten the
   average path from 5.33 to 4.06 hops, cutting zero-load latency by
   ~5 cycles, while dateline classes keep the rings deadlock-free.
2. **Routing policies under transpose traffic**: the paper's XY order
   vs O1TURN (per-packet XY/YX with VC-class separation) vs minimal
   adaptive routing with a Duato escape VC -- the speculative allocator
   handles the adaptive case exactly as the paper's footnote 5 option
   (b) describes: routing returns a single port and blocked heads
   re-iterate the routing stage.

Run:  python examples/beyond_the_paper.py [--quick]
"""

import argparse

from repro.experiments.ablations import o1turn_study, topology_study
from repro.sim import MeasurementConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller samples (~30 s)")
    args = parser.parse_args()

    measurement = MeasurementConfig(
        warmup_cycles=300 if args.quick else 500,
        sample_packets=400 if args.quick else 1000,
        max_cycles=15_000,
        drain_cycles=4_000,
    )

    print(topology_study(measurement=measurement).render())
    print(
        "\n(Loads are fractions of each topology's own capacity:"
        "\n 0.5 flits/node/cycle on the mesh, 1.0 on the torus.)\n"
    )
    print(o1turn_study(measurement=measurement).render())
    print(
        "\nUnder transpose traffic, o1turn roughly halves the worst"
        "\nchannel load by splitting packets across XY and YX orders,"
        "\nand minimal adaptive routing (escape VC + re-iteration)"
        "\navoids the hotspots almost entirely."
    )


if __name__ == "__main__":
    main()
