#!/usr/bin/env python3
"""Study the credit loop: buffer turnaround and its throughput cost.

Section 5.2 and Figure 18 of the paper: credit latency never shows up in
zero-load latency, but it idles buffers between uses, so it caps each
virtual channel's sustainable rate at roughly buffers / credit-loop.
This example

1. prints the Figure 16 turnaround timelines,
2. simulates a speculative VC router while sweeping the credit
   propagation delay, showing the saturation point walking backwards
   while zero-load latency stays put.

Run:  python examples/credit_loop_study.py [--quick] [--workers N]
"""

import argparse

from repro.experiments.figures import fig16
from repro.experiments.sweep import find_saturation
from repro.runtime import Experiment
from repro.sim import MeasurementConfig, RouterKind, SimConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller samples, fewer load points")
    parser.add_argument("--workers", type=int, default=0,
                        help="run sweep points across N worker processes")
    args = parser.parse_args()

    print(fig16())
    print()

    if args.quick:
        loads = (0.05, 0.40, 0.55)
        measurement = MeasurementConfig(
            warmup_cycles=300, sample_packets=400, max_cycles=12_000,
            drain_cycles=3_000,
        )
        propagations = (1, 4)
    else:
        loads = (0.05, 0.30, 0.45, 0.55, 0.62)
        measurement = MeasurementConfig(
            warmup_cycles=600, sample_packets=1200, max_cycles=30_000,
            drain_cycles=6_000,
        )
        propagations = (1, 2, 4)

    print("Speculative VC router (2 VCs x 4 buffers), 8x8 mesh:")
    experiment = Experiment(measurement, workers=args.workers)
    labeled = [
        (
            f"{propagation}-cycle credit propagation",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=4,
                credit_propagation=propagation,
            ),
        )
        for propagation in propagations
    ]
    for curve in experiment.sweeps(labeled, loads=loads):
        print(curve.describe())
        print(
            f"  -> zero-load {curve.zero_load_latency():.1f} cycles, "
            f"saturation ~{find_saturation(curve):.0%} of capacity"
        )
    print(
        "\nPaper (Figure 18): 1 -> 4 cycles of credit propagation cuts"
        "\nsaturation throughput from ~55% to ~45% of capacity, while the"
        "\nleft end of the curves barely moves."
    )


if __name__ == "__main__":
    main()
