#!/usr/bin/env python3
"""Design-space exploration: clocks, buffers, and Chien's model.

Three architect-facing questions the delay model answers beyond the
paper's figures:

1. *What clock minimises absolute per-hop latency?*  A fast clock means
   more stages (EQ 1); a slow clock wastes slack.  The sweep shows the
   quantisation trade-off per flow-control method.
2. *How many buffers per VC does full throughput need?*  The credit
   loop (grant to credit-reuse) sets the requirement -- 5 flits for the
   3-stage routers, 6 for the 4-stage one, 8 with 4-cycle credits.
3. *How bad was the pre-paper (Chien) model?*  Evaluating Chien's
   single-cycle, crossbar-port-per-VC architecture with the same gate
   costs shows its implied cycle time stretching with the VC count --
   the motivation for Section 3's canonical architectures.

Run:  python examples/design_space.py
"""

from repro.delaymodel.chien import comparison_table, render_comparison
from repro.delaymodel.optimizer import (
    min_buffers_for_full_throughput,
    optimal_clock,
    render_clock_sweep,
    sweep_clock,
)
from repro.delaymodel.pipeline import FlowControl


def main() -> None:
    print("=== 1. Clock sweep (speculative VC router, p=5, v=4, w=32) ===\n")
    points = sweep_clock(
        FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, 5, 32, v=4,
        clocks_tau4=tuple(range(12, 41, 4)),
    )
    print(render_clock_sweep(points))
    for flow_control in (
        FlowControl.WORMHOLE,
        FlowControl.VIRTUAL_CHANNEL,
        FlowControl.SPECULATIVE_VIRTUAL_CHANNEL,
    ):
        best = optimal_clock(flow_control, 5, 32, v=4)
        print(
            f"  optimum for {flow_control.value}: clk={best.clock_tau4:.0f} "
            f"tau4 -> {best.stages} stages, {best.per_hop_tau4:.0f} tau4/hop"
        )

    print("\n=== 2. Buffers needed to cover the credit loop ===\n")
    for name, depth in (("wormhole / specVC", 3), ("non-spec VC", 4),
                        ("single-cycle", 1)):
        buffers = min_buffers_for_full_throughput(depth)
        print(f"  {name:18s} (depth {depth}): {buffers} flits/VC")
    slow = min_buffers_for_full_throughput(3, credit_propagation=4)
    print(f"  specVC with 4-cycle credits (Fig 18): {slow} flits/VC")

    print("\n=== 3. Chien's model vs the pipelined model ===\n")
    print(render_comparison(comparison_table()))


if __name__ == "__main__":
    main()
