#!/usr/bin/env python3
"""Quickstart: design a router with the delay model, then simulate it.

Walks the library's three layers in ~40 lines:

1. ask the delay model for the pipeline of each flow-control method
   (Section 3 / Figure 11 of Peh & Dally, HPCA 2001);
2. ground the design in a real process (0.18um CMOS, as the paper's
   Synopsys validation did);
3. run the cycle-accurate simulator at a light load and confirm the
   zero-load latencies the paper reports (29 / 35 / 29 cycles on an
   8x8 mesh).

Run:  python examples/quickstart.py
"""

from repro.core import FlowControl, RouterDesign
from repro.sim import MeasurementConfig

# A quick measurement: a few hundred packets is plenty at low load.
MEASUREMENT = MeasurementConfig(
    warmup_cycles=300, sample_packets=400, max_cycles=20_000
)


def main() -> None:
    designs = [
        RouterDesign(FlowControl.WORMHOLE, buffers_per_vc=8),
        RouterDesign(FlowControl.VIRTUAL_CHANNEL, num_vcs=2, buffers_per_vc=4),
        RouterDesign(
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, num_vcs=2, buffers_per_vc=4
        ),
    ]

    print("=== Delay model: pipelines at a 20-tau4 clock ===\n")
    for design in designs:
        print(design.summary())
        print()

    print("=== Simulation: zero-load latency on the 8x8 mesh (5% load) ===\n")
    paper_values = {
        FlowControl.WORMHOLE: 29,
        FlowControl.VIRTUAL_CHANNEL: 36,
        FlowControl.SPECULATIVE_VIRTUAL_CHANNEL: 30,
    }
    for design in designs:
        result = design.simulate(injection_fraction=0.05,
                                 measurement=MEASUREMENT)
        print(
            f"{design.flow_control.value:30s} "
            f"{result.average_latency:5.1f} cycles "
            f"(paper: {paper_values[design.flow_control]})"
        )

    print(
        "\nThe speculative VC router matches the wormhole router's per-hop"
        "\nlatency (3 stages) while keeping virtual channels' throughput;"
        "\nthe non-speculative VC router pays one extra stage per hop."
    )


if __name__ == "__main__":
    main()
