"""Shared fixtures: the golden-file workflow.

Golden tests pin exact outputs (the simulator and the delay model are
deterministic functions of their inputs) to JSON fixtures committed
under ``tests/experiments/goldens/``.  When an intentional change moves
the numbers, regenerate with::

    PYTHONPATH=src python -m pytest tests/experiments/test_goldens.py --update-goldens

and commit the fixture diff alongside the change that caused it.
"""

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "experiments" / "goldens"


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens", action="store_true", default=False,
        help="rewrite the committed golden fixtures from current outputs",
    )


class GoldenChecker:
    """Compares data against a committed JSON fixture (or rewrites it)."""

    def __init__(self, update: bool) -> None:
        self.update = update

    def check(self, name: str, data) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        rendered = json.dumps(data, indent=2, sort_keys=True) + "\n"
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(rendered)
            return
        if not path.exists():
            pytest.fail(
                f"golden fixture {path} is missing; generate it with "
                f"pytest --update-goldens"
            )
        expected = json.loads(path.read_text())
        assert data == expected, (
            f"output diverged from golden fixture {path.name}; if the "
            f"change is intentional, rerun with --update-goldens and "
            f"commit the fixture diff"
        )


@pytest.fixture
def golden(request):
    return GoldenChecker(request.config.getoption("--update-goldens"))
