"""Tests for the high-level RouterDesign API."""

import pytest

from repro.core import FlowControl, RouterDesign, RoutingRange
from repro.delaymodel.tau import CMOS_018UM
from repro.sim.config import MeasurementConfig, RouterKind


class TestRouterDesign:
    def test_wormhole_defaults(self):
        design = RouterDesign(FlowControl.WORMHOLE)
        assert design.per_hop_cycles == 3
        assert design.num_vcs == 1  # forced for wormhole

    def test_vc_design(self):
        design = RouterDesign(FlowControl.VIRTUAL_CHANNEL, num_vcs=2)
        assert design.per_hop_cycles == 4

    def test_speculative_design_matches_wormhole(self):
        spec = RouterDesign(FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, num_vcs=2)
        wormhole = RouterDesign(FlowControl.WORMHOLE)
        assert spec.per_hop_cycles == wormhole.per_hop_cycles == 3

    def test_per_hop_ps_in_018um(self):
        design = RouterDesign(FlowControl.WORMHOLE)
        # 3 cycles x 20 tau4 x 90 ps = 5.4 ns.
        assert design.per_hop_ps == pytest.approx(5400.0)

    def test_routing_range_override(self):
        rpv = RouterDesign(
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL,
            num_vcs=16, routing_range=RoutingRange.RPV,
        )
        rv = RouterDesign(
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL,
            num_vcs=16, routing_range=RoutingRange.RV,
        )
        assert rv.per_hop_cycles <= rpv.per_hop_cycles

    def test_sim_config_mirrors_design(self):
        design = RouterDesign(
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, num_vcs=2,
            buffers_per_vc=4,
        )
        config = design.sim_config(injection_fraction=0.3)
        assert config.router_kind is RouterKind.SPECULATIVE_VC
        assert config.num_vcs == 2
        assert config.buffers_per_vc == 4
        assert config.injection_fraction == 0.3

    def test_deeper_model_pipeline_maps_to_extra_va_cycles(self):
        # At v=32 the model prescribes a 4-stage speculative pipeline;
        # the extra allocation stage becomes va_extra_cycles=1.
        design = RouterDesign(FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, num_vcs=32)
        assert design.per_hop_cycles == 4
        config = design.sim_config()
        assert config.va_extra_cycles == 1

    def test_nonspec_16vc_five_stage_simulable(self):
        design = RouterDesign(FlowControl.VIRTUAL_CHANNEL, num_vcs=16)
        assert design.per_hop_cycles == 5
        assert design.sim_config().va_extra_cycles == 1

    def test_shallower_model_pipeline_rejected(self):
        # At a very long clock the VC and switch allocators merge into
        # one stage; the fixed 4-stage simulated router cannot shrink.
        design = RouterDesign(
            FlowControl.VIRTUAL_CHANNEL, num_vcs=2, clock_tau4=100.0
        )
        assert design.per_hop_cycles < 4
        with pytest.raises(ValueError):
            design.sim_config()

    def test_matching_depth_has_no_extra_cycles(self):
        design = RouterDesign(FlowControl.VIRTUAL_CHANNEL, num_vcs=2)
        assert design.sim_config().va_extra_cycles == 0

    def test_deep_design_end_to_end_latency(self):
        """The simulated 5-stage VC router's zero-load latency follows
        (D+1)H + D + L with D = 5."""
        design = RouterDesign(
            FlowControl.VIRTUAL_CHANNEL, num_vcs=16, buffers_per_vc=8,
            mesh_radix=4,
        )
        from repro.sim.network import Network
        from repro.sim.flit import Packet

        network = Network(design.sim_config(injection_fraction=0.0))
        packet = Packet(source=0, destination=3, length=5, creation_cycle=0)
        network.sources[0].enqueue(packet)
        network.run(160)
        assert packet.latency == 6 * 3 + 5 + 5

    def test_simulate_end_to_end(self):
        design = RouterDesign(
            FlowControl.WORMHOLE, buffers_per_vc=8, mesh_radix=4
        )
        result = design.simulate(
            injection_fraction=0.1,
            measurement=MeasurementConfig(
                warmup_cycles=100, sample_packets=100, max_cycles=5_000
            ),
        )
        assert not result.saturated
        assert result.average_latency > 0

    def test_summary(self):
        text = RouterDesign(FlowControl.WORMHOLE).summary()
        assert "3 cycles" in text
        assert CMOS_018UM.name in text
        assert "MHz" in text


class TestSpeculationReport:
    def test_measure_speculation(self):
        from repro.core import measure_speculation

        report = measure_speculation(
            injection_fraction=0.1, mesh_radix=4,
            measurement=MeasurementConfig(
                warmup_cycles=100, sample_packets=100, max_cycles=5_000
            ),
        )
        assert report.spec_grants > 0
        assert 0.0 <= report.success_rate <= 1.0
        assert "speculative grants" in report.describe()
