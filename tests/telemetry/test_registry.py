"""Unit tests for the metric registry: counters, gauges, histograms."""

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_sums(self):
        a, b = Counter(3), Counter(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_tracks_extrema_and_mean(self):
        gauge = Gauge()
        for value in (3, 1, 7):
            gauge.set(value)
        assert gauge.value == 7  # last write
        assert gauge.minimum == 1
        assert gauge.maximum == 7
        assert gauge.mean == pytest.approx(11 / 3)

    def test_empty_gauge_mean_is_zero(self):
        assert Gauge().mean == 0.0

    def test_merge_combines_extrema(self):
        a, b = Gauge(), Gauge()
        a.set(5)
        b.set(1)
        b.set(9)
        a.merge(b)
        assert a.minimum == 1
        assert a.maximum == 9
        assert a.samples == 3
        assert a.value == 9  # other is the later writer

    def test_merge_with_unsampled_gauge_keeps_extrema(self):
        a = Gauge()
        a.set(5)
        a.merge(Gauge())
        assert a.minimum == 5
        assert a.maximum == 5


class TestHistogram:
    def test_observations_land_in_buckets(self):
        # counts[i] tallies (bounds[i-1], bounds[i]]; the final slot is
        # the +inf overflow.
        histogram = Histogram(bounds=(0, 2, 4))
        for value in (0, 1, 2, 3, 5, 100):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 2]
        assert histogram.observations == 6
        assert histogram.mean == pytest.approx(111 / 6)

    def test_weighted_observation(self):
        histogram = Histogram()
        histogram.observe(0, count=64)
        assert histogram.counts[0] == 64
        assert histogram.observations == 64
        assert histogram.total == 0.0

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(2, 1))
        with pytest.raises(ValueError):
            Histogram(bounds=(1, 1))

    def test_merge_requires_equal_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(0, 1)).merge(Histogram(bounds=(0, 2)))

    def test_merge_sums_buckets(self):
        a, b = Histogram(), Histogram()
        a.observe(1)
        b.observe(1)
        b.observe(50)
        a.merge(b)
        assert a.observations == 3
        assert a.counts[-1] == 1  # the 50 landed above the last bound


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert len(registry) == 1

    def test_labels_distinguish_metrics(self):
        registry = MetricRegistry()
        registry.counter("flits", port="east").inc(2)
        registry.counter("flits", port="west").inc(3)
        assert registry.value("flits", port="east") == 2
        assert registry.value("flits", port="west") == 3
        assert registry.value("flits") == 0.0  # unlabeled is distinct

    def test_label_order_is_canonical(self):
        registry = MetricRegistry()
        registry.counter("m", a=1, b=2).inc()
        assert registry.counter("m", b=2, a=1).value == 1

    def test_kind_clash_raises(self):
        registry = MetricRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_items_render_labels(self):
        registry = MetricRegistry()
        registry.counter("flits", port="east")
        (name, _metric), = registry.items()
        assert name == "flits{port=east}"

    def test_round_trip(self):
        registry = MetricRegistry()
        registry.counter("c", node=3).inc(7)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3)
        rebuilt = MetricRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.value("c", node=3) == 7
        assert rebuilt.get("h").bounds == DEFAULT_BUCKETS

    def test_merge_sums_and_copies(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("shared").inc(1)
        b.counter("shared").inc(2)
        b.counter("only_b").inc(5)
        a.merge(b)
        assert a.value("shared") == 3
        assert a.value("only_b") == 5
        # The copied metric is independent of the source registry.
        b.counter("only_b").inc(100)
        assert a.value("only_b") == 5
