"""Session lifecycle: attach, sample, finalize, and clean detach."""

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySession,
    TelemetrySummary,
)
from repro.telemetry.session import resolve_telemetry
from repro.telemetry.summary import (
    SA_GRANTS,
    SPEC_ATTEMPTED,
    VC_OCCUPANCY,
    merge_summaries,
)

MEAS = MeasurementConfig(
    warmup_cycles=100, sample_packets=100, max_cycles=10_000
)


def spec_config(**overrides):
    defaults = dict(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        injection_fraction=0.2, seed=5,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestTelemetryConfig:
    def test_defaults_are_valid(self):
        config = TelemetryConfig()
        assert config.sample_period >= 1
        assert not config.capture_trace

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_period=0)
        with pytest.raises(ValueError):
            TelemetryConfig(window_cycles=0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_windows=1)


class TestResolveTelemetry:
    def test_false_disables(self):
        assert resolve_telemetry(False, spec_config()) is None

    def test_none_defers_to_config(self):
        assert resolve_telemetry(None, spec_config()) is None
        embedded = spec_config(telemetry=TelemetryConfig(sample_period=8))
        session = resolve_telemetry(None, embedded)
        assert session is not None
        assert session.config.sample_period == 8

    def test_true_uses_defaults(self):
        session = resolve_telemetry(True, spec_config())
        assert session.config == TelemetryConfig()

    def test_config_and_session_pass_through(self):
        config = TelemetryConfig(sample_period=4)
        assert resolve_telemetry(config, spec_config()).config is config
        session = TelemetrySession()
        assert resolve_telemetry(session, spec_config()) is session

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            resolve_telemetry(42, spec_config())


@pytest.mark.sim
class TestSessionLifecycle:
    def test_run_produces_summary(self):
        telemetry = TelemetryConfig(sample_period=4, window_cycles=64)
        result = Simulator(spec_config(), MEAS, telemetry=telemetry).run()
        summary = result.telemetry
        assert isinstance(summary, TelemetrySummary)
        assert summary.cycles_observed == result.cycles_simulated
        assert summary.metrics.value(SPEC_ATTEMPTED) > 0
        assert summary.metrics.value(SA_GRANTS) > 0
        assert summary.speculation_win_rate > 0
        assert 0 < summary.channel_utilization < 1
        assert summary.windows, "windowed timeseries is empty"
        occupancy = summary.metrics.get(VC_OCCUPANCY)
        assert occupancy is not None and occupancy.observations > 0

    def test_finalize_detaches_all_machinery(self):
        simulator = Simulator(
            spec_config(),
            MEAS,
            telemetry=TelemetryConfig(sample_period=4, capture_trace=True),
        )
        network = simulator.network
        # Attached: the crossbar hook shadows the class method and the
        # tracer is installed.
        assert all("_traverse" in r.__dict__ for r in network.routers)
        assert all(r.tracer is not None for r in network.routers)
        simulator.run()
        assert all("_traverse" not in r.__dict__ for r in network.routers)
        assert all(r.tracer is None for r in network.routers)

    def test_disabled_telemetry_installs_nothing(self):
        simulator = Simulator(spec_config(), MEAS)
        assert simulator.telemetry is None
        network = simulator.network
        assert all("_traverse" not in r.__dict__ for r in network.routers)
        assert all(r.tracer is None for r in network.routers)
        assert simulator.run().telemetry is None

    def test_double_attach_raises(self):
        simulator = Simulator(spec_config(), MEAS, telemetry=True)
        with pytest.raises(RuntimeError):
            simulator.telemetry.attach(simulator.network)

    def test_summary_round_trips_and_merges(self):
        telemetry = TelemetryConfig(sample_period=4, window_cycles=64)
        summaries = [
            Simulator(spec_config(seed=seed), MEAS, telemetry=telemetry)
            .run().telemetry
            for seed in (1, 2)
        ]
        rebuilt = TelemetrySummary.from_dict(summaries[0].to_dict())
        assert rebuilt == summaries[0]

        merged = merge_summaries(summaries + [None])
        assert merged.runs == 2
        assert merged.cycles_observed == sum(
            s.cycles_observed for s in summaries
        )
        assert merged.metrics.value(SA_GRANTS) == sum(
            s.metrics.value(SA_GRANTS) for s in summaries
        )
        assert merged.windows == []  # per-run timelines are dropped

    def test_merge_rejects_mismatched_sample_period(self):
        a = TelemetrySummary(sample_period=4, window_cycles=64,
                             cycles_observed=10)
        b = TelemetrySummary(sample_period=8, window_cycles=64,
                             cycles_observed=10)
        with pytest.raises(ValueError):
            a.merge(b)
