"""Exporter formats: JSONL, CSV, and Chrome trace_event."""

import csv
import json

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig, TelemetrySession, exporters

MEAS = MeasurementConfig(
    warmup_cycles=100, sample_packets=80, max_cycles=10_000
)


@pytest.fixture(scope="module")
def traced_run():
    """One instrumented run, sharing the summary *and* the live tracer."""
    config = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        injection_fraction=0.2, seed=9,
    )
    session = TelemetrySession(TelemetryConfig(
        sample_period=4, window_cycles=64, capture_trace=True,
        trace_max_events=50_000,
    ))
    result = Simulator(config, MEAS, telemetry=session).run()
    return result.telemetry, session.tracer


@pytest.mark.sim
class TestJsonl:
    def test_header_then_metrics_then_windows(self, traced_run, tmp_path):
        summary, _tracer = traced_run
        path = exporters.export_jsonl(summary, tmp_path / "t.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert records[0]["type"] == "summary"
        assert records[0]["cycles_observed"] == summary.cycles_observed
        assert records[0]["speculation_win_rate"] == pytest.approx(
            summary.speculation_win_rate
        )
        types = [record["type"] for record in records]
        assert types == (
            ["summary"]
            + ["metric"] * sum(t == "metric" for t in types)
            + ["window"] * sum(t == "window" for t in types)
        )
        metric_names = {r["name"] for r in records if r["type"] == "metric"}
        assert "switch_grants" in metric_names
        assert "crossbar_traversals{port=east}" in metric_names


@pytest.mark.sim
class TestCsv:
    def test_metric_catalogue(self, traced_run, tmp_path):
        summary, _tracer = traced_run
        path = exporters.export_csv(summary, tmp_path / "t.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        by_name = {row["name"]: row for row in rows}
        assert float(by_name["switch_grants"]["value"]) > 0
        assert by_name["vc_buffer_occupancy"]["kind"] == "histogram"
        assert by_name["network_buffered_flits"]["kind"] == "gauge"

    def test_window_timeline(self, traced_run, tmp_path):
        summary, _tracer = traced_run
        path = exporters.export_windows_csv(summary, tmp_path / "w.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(summary.windows)
        assert sum(float(row["flits_forwarded"]) for row in rows) == (
            summary.metrics.value("flits_forwarded")
        )


@pytest.mark.sim
class TestChromeTrace:
    def test_trace_structure(self, traced_run, tmp_path):
        summary, tracer = traced_run
        path = exporters.export_chrome_trace(
            tmp_path / "trace.json", summary=summary, tracer=tracer
        )
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert trace["otherData"]["source"] == "repro.telemetry"
        # One metadata record per router that logged an event.
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names and all(n.startswith("router ") for n in names)
        instants = [e for e in events if e["ph"] == "i"]
        assert {"switch_grant", "traversal"} <= {e["name"] for e in instants}
        assert all("ts" in e and "tid" in e for e in instants)
        counters = [e for e in events if e["ph"] == "C"]
        assert counters and all("per_cycle" in e["args"] for e in counters)

    def test_summary_only_trace_has_counters_only(self, traced_run, tmp_path):
        summary, _tracer = traced_run
        path = exporters.export_chrome_trace(
            tmp_path / "counters.json", summary=summary
        )
        events = json.loads(path.read_text())["traceEvents"]
        assert events
        assert {e["ph"] for e in events} == {"C"}
