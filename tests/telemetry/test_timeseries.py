"""Unit tests for the bounded windowed timeseries."""

import pytest

from repro.telemetry.timeseries import Timeseries, Window


class TestWindow:
    def test_rejects_empty_span(self):
        with pytest.raises(ValueError):
            Window(10, 10)

    def test_rate_is_per_cycle(self):
        window = Window(0, 100, {"flits": 25})
        assert window.rate("flits") == 0.25
        assert window.rate("absent") == 0.0

    def test_merge_spans_and_sums(self):
        merged = Window(0, 10, {"a": 1}).merge(Window(10, 30, {"a": 2, "b": 5}))
        assert (merged.start, merged.end) == (0, 30)
        assert merged.values == {"a": 3, "b": 5}

    def test_merge_does_not_mutate_operands(self):
        a = Window(0, 10, {"a": 1})
        a.merge(Window(10, 20, {"a": 2}))
        assert a.values == {"a": 1}

    def test_round_trip(self):
        window = Window(5, 9, {"x": 2.0})
        assert Window.from_dict(window.to_dict()).to_dict() == window.to_dict()


class TestTimeseries:
    def test_rejects_out_of_order_appends(self):
        series = Timeseries(max_windows=4)
        series.append(Window(0, 10))
        with pytest.raises(ValueError):
            series.append(Window(5, 15))

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            Timeseries(max_windows=1)

    def test_compacts_at_capacity(self):
        series = Timeseries(max_windows=4)
        for i in range(8):
            series.append(Window(i * 10, (i + 1) * 10, {"n": 1}))
        # Every append that reaches max_windows halves the ring, so the
        # count stays strictly below the bound.
        assert len(series) < 4
        assert series.merged().values == {"n": 8}

    def test_compaction_preserves_totals_and_span(self):
        series = Timeseries(max_windows=2)
        for i in range(100):
            series.append(Window(i, i + 1, {"n": 1, "m": i}))
        total = series.merged()
        assert (total.start, total.end) == (0, 100)
        assert total.values["n"] == 100
        assert total.values["m"] == sum(range(100))

    def test_empty_series_merges_to_none(self):
        assert Timeseries(max_windows=4).merged() is None

    def test_to_dicts(self):
        series = Timeseries(max_windows=4)
        series.append(Window(0, 10, {"a": 1}))
        assert series.to_dicts() == [{"start": 0, "end": 10, "values": {"a": 1}}]
