"""PURE checker: delay-model purity rules."""

from repro.analysis.checkers.pure import PurityChecker

from .conftest import run_analysis, rules_of


def _pure_only(*paths, root=None):
    return run_analysis(*paths, checkers=[PurityChecker()], root=root)


def test_bad_fixture_fires_all_three_rules():
    result = _pure_only("pure_bad.py")
    rules = rules_of(result)
    assert rules.count("PURE001") == 1  # global _CALLS
    assert rules.count("PURE002") == 2  # print + open
    assert rules.count("PURE003") == 2  # _RESULTS.append + _MEMO[...] =


def test_good_fixture_is_silent():
    result = _pure_only("pure_good.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_rules_scoped_to_delaymodel(tmp_path):
    # Identical code outside the delaymodel domain is not PURE's
    # business (the experiments layer prints reports all day).
    snippet = tmp_path / "report.py"
    snippet.write_text(
        "ROWS = []\n"
        "def render(row):\n"
        "    ROWS.append(row)\n"
        "    print(row)\n"
    )
    result = _pure_only(snippet, root=tmp_path)
    assert result.ok


def test_real_delaymodel_is_pure():
    from .conftest import REPO_ROOT

    result = _pure_only(
        REPO_ROOT / "src/repro/delaymodel", root=REPO_ROOT
    )
    assert result.ok, [str(f) for f in result.new_findings]


def test_surrogate_scope_inherits_purity_rules():
    # The surrogate domain (path-derived or via scope[surrogate])
    # carries the same purity contract as the delay model.
    result = _pure_only("surrogate_bad.py")
    rules = rules_of(result)
    assert rules.count("PURE001") == 1  # global _TOTAL
    assert rules.count("PURE002") == 1  # print
    assert rules.count("PURE003") == 1  # _FITS[...] =


def test_real_surrogate_is_pure():
    from .conftest import REPO_ROOT

    result = _pure_only(
        REPO_ROOT / "src/repro/surrogate", root=REPO_ROOT
    )
    assert result.ok, [str(f) for f in result.new_findings]
