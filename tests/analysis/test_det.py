"""DET checker: seeded bad fixtures fire, good fixtures stay silent."""

from repro.analysis.checkers.det import DeterminismChecker

from .conftest import run_analysis, rules_of


def _det_only(*paths):
    return run_analysis(*paths, checkers=[DeterminismChecker()])


def test_bad_fixture_fires_det001_and_det002():
    result = _det_only("det_bad.py")
    rules = rules_of(result)
    assert rules.count("DET001") == 2  # from-import + random.random()
    assert rules.count("DET002") == 2  # time.time + os.urandom
    assert not result.ok


def test_good_fixture_is_silent():
    result = _det_only("det_good.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_hot_path_set_iteration_fires_det003():
    result = _det_only("det_bad_hot.py")
    rules = rules_of(result)
    assert rules == ["DET003"] * 3
    messages = " ".join(f.message for f in result.new_findings)
    assert "hash order" in messages


def test_hot_path_ordered_iteration_is_silent():
    result = _det_only("det_good_hot.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_det_rules_scoped_to_sim_and_delaymodel(tmp_path):
    # The same bad code outside sim/delaymodel/hot scope is not DET's
    # business (benchmarks legitimately read wall clocks).
    snippet = tmp_path / "bench_something.py"
    snippet.write_text(
        "import time\n\ndef now():\n    return time.time()\n"
    )
    result = run_analysis(
        snippet, checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok


def test_sole_requestor_set_membership_allowed(tmp_path):
    # Membership tests on sets must not be flagged -- only iteration.
    snippet = tmp_path / "allocators.py"
    snippet.write_text(
        "# repro: scope[sim, hot]\n"
        "def pick(requests):\n"
        "    active = set(requests)\n"
        "    return [r for r in requests if r in active]\n"
    )
    result = run_analysis(
        snippet, checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok, [str(f) for f in result.new_findings]


def test_surrogate_scope_inherits_determinism_rules():
    # The surrogate domain is deterministic code: RNG and wall-clock
    # sources fire exactly as they would under sim/delaymodel.
    result = _det_only("surrogate_bad.py")
    rules = rules_of(result)
    assert rules.count("DET001") == 1  # random.random()
    assert rules.count("DET002") == 1  # time.perf_counter()


def test_real_surrogate_is_deterministic():
    from .conftest import REPO_ROOT

    result = _det_only(REPO_ROOT / "src/repro/surrogate")
    assert result.ok, [str(f) for f in result.new_findings]
