"""Self-lint: the repository passes its own analyzer, fast, via the CLI.

This is the gate CI runs (`python -m repro.analysis --check src tests
benchmarks`); keeping a test-suite copy means a violation fails the
ordinary pytest run too, with the findings in the assertion message.
"""

import time

from repro.analysis import Baseline, analyze
from repro.analysis.__main__ import main
from repro.analysis.driver import iter_rules

from .conftest import REPO_ROOT


def _repo_paths():
    return [REPO_ROOT / p for p in ("src", "tests", "benchmarks")]


def test_repository_is_clean_and_fast():
    baseline_path = REPO_ROOT / "analysis-baseline.json"
    baseline = Baseline.load(baseline_path)
    started = time.perf_counter()
    result = analyze(_repo_paths(), root=REPO_ROOT, baseline=baseline)
    elapsed = time.perf_counter() - started
    assert result.ok, "\n".join(str(f) for f in result.new_findings)
    # All five checker families ran.
    assert result.checker_count == 5
    # The CI budget is <5s over the full repo; leave headroom for slow
    # shared runners but fail on an order-of-magnitude regression.
    assert elapsed < 5.0, f"analysis took {elapsed:.2f}s (budget 5s)"


def test_all_five_checker_families_have_rules():
    families = {rule.id[:-3] for rule in iter_rules()
                if rule.id not in ("PARSE001", "SUP001")}
    assert families == {"DET", "CACHE", "WRAP", "SLOTS", "PURE"}


def test_cli_check_mode_exits_zero(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--check", "src", "tests", "benchmarks"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 new finding(s)" in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "CACHE001", "WRAP001", "SLOTS001", "PURE001"):
        assert rule_id in out


def test_cli_json_mode(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["--json", "src"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert '"summary"' in out


def test_cli_nonzero_on_findings(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "# repro: scope[sim]\n"
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    code = main([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET002" in out


def test_cli_write_baseline_round_trip(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "# repro: scope[sim]\n"
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    assert main(["--write-baseline", str(bad)]) == 0
    assert (tmp_path / "analysis-baseline.json").exists()
    capsys.readouterr()
    # Baselined now: the same lint run exits clean.
    assert main([str(bad)]) == 0
    assert "1 baselined" in capsys.readouterr().out
