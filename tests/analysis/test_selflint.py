"""Self-lint: the repository passes its own analyzer, fast, via the CLI.

This is the gate CI runs (`python -m repro.analysis --check src tests
benchmarks`); keeping a test-suite copy means a violation fails the
ordinary pytest run too, with the findings in the assertion message.
"""

import time

from repro.analysis import Baseline, analyze
from repro.analysis.__main__ import main
from repro.analysis.driver import iter_rules

from .conftest import REPO_ROOT

DRIVER_RULES = ("PARSE001", "SUP001", "SUP002")


def _repo_paths():
    return [REPO_ROOT / p for p in ("src", "tests", "benchmarks")]


def test_repository_is_clean_and_fast():
    baseline_path = REPO_ROOT / "analysis-baseline.json"
    baseline = Baseline.load(baseline_path)
    started = time.perf_counter()
    result = analyze(_repo_paths(), root=REPO_ROOT, baseline=baseline)
    elapsed = time.perf_counter() - started
    assert result.ok, "\n".join(str(f) for f in result.new_findings)
    # All seven checker families ran.
    assert result.checker_count == 7
    # The CI budget is <10s cold over the full repo; leave headroom for
    # slow shared runners but fail on an order-of-magnitude regression.
    assert elapsed < 10.0, f"analysis took {elapsed:.2f}s (budget 10s)"


def test_all_seven_checker_families_have_rules():
    families = {rule.id[:-3] for rule in iter_rules()
                if rule.id not in DRIVER_RULES}
    assert families == {
        "DET", "CACHE", "WRAP", "SLOTS", "PURE", "CONC", "HOT",
    }


def test_every_real_tree_suppression_is_load_bearing():
    # SUP002 would fire on any stale escape; a clean run proves every
    # hot-ok/allow marker in the tree still suppresses a finding.
    result = analyze(_repo_paths(), root=REPO_ROOT)
    stale = [f for f in result.new_findings if f.rule == "SUP002"]
    assert stale == [], "\n".join(str(f) for f in stale)
    assert result.suppressed_count > 0


def test_cli_check_mode_exits_zero(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path))
    code = main(["--check", "src", "tests", "benchmarks"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 new finding(s)" in out


def test_cli_warm_run_uses_the_cache(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path))
    assert main(["--check", "src"]) == 0
    capsys.readouterr()
    assert main(["--check", "--stats", "src"]) == 0
    err = capsys.readouterr().err
    assert "0 analyzed" in err
    assert "finalize cached" in err


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "CACHE001", "WRAP001", "SLOTS001",
                    "PURE001", "CONC001", "HOT001", "SUP002"):
        assert rule_id in out


def test_cli_json_mode(monkeypatch, tmp_path, capsys):
    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path))
    code = main(["--json", "src"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert '"summary"' in out


def test_cli_nonzero_on_findings(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "# repro: scope[sim]\n"
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    code = main([str(bad)])
    out = capsys.readouterr().out
    assert code == 1
    assert "DET002" in out


def test_cli_write_baseline_round_trip(tmp_path, monkeypatch, capsys):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "# repro: scope[sim]\n"
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    )
    monkeypatch.chdir(tmp_path)
    assert main(["--write-baseline", str(bad)]) == 0
    assert (tmp_path / "analysis-baseline.json").exists()
    capsys.readouterr()
    # Baselined now: the same lint run exits clean.
    assert main([str(bad)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_experiments_analyze_alias_stays_in_sync(monkeypatch, tmp_path,
                                                 capsys):
    """`python -m repro.experiments analyze` forwards argv verbatim, so
    every repro.analysis flag -- including --no-cache/--stats -- works
    identically through the alias."""
    from repro.analysis.__main__ import build_parser
    from repro.experiments.__main__ import main as experiments_main

    # Parser-level parity: the canonical flag set is all present.
    options = {
        opt for action in build_parser()._actions
        for opt in action.option_strings
    }
    for flag in ("--check", "--json", "--baseline", "--write-baseline",
                 "--list-rules", "--no-cache", "--stats", "--workers",
                 "--verbose"):
        assert flag in options, f"{flag} missing from repro.analysis CLI"

    # Behavioural parity: the alias and the direct CLI agree bytewise.
    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_ANALYSIS_CACHE_DIR", str(tmp_path))
    assert main(["--list-rules"]) == 0
    direct = capsys.readouterr().out
    assert experiments_main(["analyze", "--list-rules"]) == 0
    aliased = capsys.readouterr().out
    assert aliased == direct

    # JSON mode is timing-free, so the comparison is bytewise even
    # though the second (aliased) run is served warm from the cache.
    argv = ["--json", "src/repro/analysis"]
    assert main(argv) == 0
    direct = capsys.readouterr()
    assert experiments_main(["analyze", *argv]) == 0
    aliased = capsys.readouterr()
    assert aliased.out == direct.out
