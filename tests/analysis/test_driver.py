"""Framework behaviour: suppressions, baseline round-trip, driver rules."""

from pathlib import Path

from repro.analysis import Baseline, analyze
from repro.analysis.checkers.det import DeterminismChecker
from repro.analysis.reporters import render_json, render_text

BAD_SNIPPET = (
    "# repro: scope[sim]\n"
    "import time\n"
    "def now():\n"
    "    return time.time()\n"
)


def _write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.write_text(text)
    return path


def test_inline_suppression_with_reason_silences_finding(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    return time.time()  # repro: allow[DET002] wall-clock only",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok
    assert result.suppressed_count == 1


def test_suppression_on_preceding_comment_line(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    # repro: allow[DET002] wall-clock only\n    return time.time()",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok
    assert result.suppressed_count == 1


def test_rule_family_prefix_matches(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    return time.time()  # repro: allow[DET] whole family",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok


def test_reasonless_suppression_is_its_own_finding(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    return time.time()  # repro: allow[DET002]",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    rules = sorted(f.rule for f in result.new_findings)
    # The reasonless allow does not suppress, and is itself flagged.
    assert rules == ["DET002", "SUP001"]


def test_wrong_rule_suppression_does_not_silence(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    return time.time()  # repro: allow[PURE002] wrong family",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    # The wrong-family allow does not silence DET002.  It is not SUP002
    # either: PURE did not run, so this partial pass cannot call the
    # marker stale (a full default-checker run would).
    assert [f.rule for f in result.new_findings] == ["DET002"]


def test_stale_suppression_is_flagged(tmp_path):
    _write(
        tmp_path, "mod.py",
        "# repro: scope[sim]\n"
        "def fine():\n"
        "    return 1  # repro: allow[DET002] nothing here anymore\n",
    )
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert [f.rule for f in result.new_findings] == ["SUP002"]
    assert "allow[DET002]" in result.new_findings[0].message


def test_stale_hot_ok_is_flagged(tmp_path):
    _write(
        tmp_path, "mod.py",
        "# repro: scope[sim]\n"
        "def fine():\n"
        "    return 1  # repro: hot-ok[long-gone scratch buffer]\n",
    )
    from repro.analysis.checkers.hot import HotPathChecker

    result = analyze(
        [tmp_path], checkers=[HotPathChecker()], root=tmp_path
    )
    assert [f.rule for f in result.new_findings] == ["SUP002"]
    assert "hot-ok[...]" in result.new_findings[0].message


def test_suppression_for_inactive_family_is_not_stale(tmp_path):
    # A partial run (HOT checker left out) cannot prove the marker dead.
    _write(
        tmp_path, "mod.py",
        "# repro: scope[sim]\n"
        "def fine():\n"
        "    return 1  # repro: hot-ok[long-gone scratch buffer]\n",
    )
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok


def test_load_bearing_suppression_is_not_stale(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET.replace(
        "    return time.time()",
        "    return time.time()  # repro: allow[DET002] wall-clock only",
    ))
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok
    assert result.suppressed_count == 1


def test_syntax_error_reported_as_parse_finding(tmp_path):
    _write(tmp_path, "broken.py", "def half(:\n")
    result = analyze([tmp_path], checkers=[], root=tmp_path)
    assert [f.rule for f in result.new_findings] == ["PARSE001"]


def test_baseline_round_trip(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET)
    first = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert len(first.new_findings) == 1

    baseline_path = tmp_path / "baseline.json"
    Baseline.from_findings(first.new_findings).save(baseline_path)
    loaded = Baseline.load(baseline_path)
    assert loaded == Baseline.from_findings(first.new_findings)

    second = analyze(
        [tmp_path], checkers=[DeterminismChecker()],
        root=tmp_path, baseline=loaded,
    )
    assert second.ok
    assert len(second.baselined) == 1

    # Saving the unchanged baseline again is byte-identical.
    again = tmp_path / "baseline2.json"
    Baseline.from_findings(
        [*second.new_findings, *second.baselined]
    ).save(again)
    assert again.read_text() == baseline_path.read_text()


def test_baseline_absorbs_counts_not_rules(tmp_path):
    # Two identical findings, baseline allows one: one is still new.
    _write(
        tmp_path, "mod.py",
        "# repro: scope[sim]\n"
        "import time\n"
        "def a():\n"
        "    return time.time()\n"
        "def b():\n"
        "    return time.time()\n",
    )
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert len(result.new_findings) == 2
    one = Baseline.from_findings(result.new_findings[:1])
    partial = analyze(
        [tmp_path], checkers=[DeterminismChecker()],
        root=tmp_path, baseline=one,
    )
    assert len(partial.new_findings) == 1
    assert len(partial.baselined) == 1


def test_fixture_directories_are_excluded(tmp_path):
    nested = tmp_path / "pkg" / "fixtures"
    nested.mkdir(parents=True)
    _write(nested, "bad.py", BAD_SNIPPET)
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    assert result.ok
    assert len(result.files) == 0


def test_reporters_render(tmp_path):
    _write(tmp_path, "mod.py", BAD_SNIPPET)
    result = analyze(
        [tmp_path], checkers=[DeterminismChecker()], root=tmp_path
    )
    text = render_text(result)
    assert "DET002" in text
    assert "1 new finding(s)" in text
    payload = render_json(result)
    assert '"rule": "DET002"' in payload
    assert '"new": 1' in payload
