# repro: scope[wrap-site]
"""Seeded WRAP good example: every wrap target resolves to Router
(defined in wrap_routers.py, analyzed alongside this file)."""


class GoodCollector:
    def attach(self, network):
        for router in network.routers:
            original = router._traverse
            router._traverse = lambda flit: original(flit)
            spec = getattr(router, "_spec_allocator", None)
            if spec is not None:
                pass

    def detach(self, network):
        for router in network.routers:
            if "_traverse" in router.__dict__:
                del router._traverse
