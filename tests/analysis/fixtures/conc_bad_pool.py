# repro: scope[runtime]
"""CONC004: a mutable module global mutated by a pool worker entry,
with no PROCESS_LOCAL declaration."""

_CACHE = {}


def _work(x):
    _CACHE[x] = x * 2  # forks silently per worker process
    return _CACHE[x]


def run(pool, xs):
    return [pool.submit(_work, x) for x in xs]
