# repro: scope[sim]
"""Seeded DET bad example: global RNG + wall clock in sim-scoped code."""

import os
import random
import time
from random import randint  # DET001: binds the global RNG


def jitter() -> float:
    return random.random()  # DET001: module-level RNG call


def stamp() -> float:
    return time.time()  # DET002: wall clock


def entropy() -> bytes:
    return os.urandom(8)  # DET002: OS entropy


def roll() -> int:
    return randint(1, 6)
