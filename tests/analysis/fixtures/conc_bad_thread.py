# repro: scope[runtime]
"""CONC002: an unguarded field write reachable from a Thread target in
a class that owns no lock."""

import threading


class Worker:
    def __init__(self):
        self.count = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def start(self):
        self._thread.start()

    def _run(self):
        while self.count < 100:
            self._bump()

    def _bump(self):
        self.count += 1  # CONC002: two threads touch this instance
