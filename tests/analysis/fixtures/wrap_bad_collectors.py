# repro: scope[wrap-site]
"""Seeded WRAP bad example: wrap targets Router (wrap_routers.py) does
not define -- the renamed-method drift WRAP001 exists to catch."""


class BadCollector:
    def attach(self, network):
        for router in network.routers:
            original = router._cross_traverse  # WRAP001: no such method
            router._cross_traverse = lambda flit: original(flit)
            spec = getattr(router, "_speculative_alloc", None)  # WRAP001
            if spec is not None:
                pass

    def detach(self, network):
        for router in network.routers:
            if "_cross_traverse" in router.__dict__:  # WRAP001
                del router._cross_traverse
