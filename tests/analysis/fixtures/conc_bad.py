# repro: scope[runtime]
"""Bad lock discipline: CONC001 (unguarded/mis-guarded writes) and
CONC003 (wait discipline) violations."""

import threading

LOCKED_BY = {"Racy.declared": "_lock"}


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self.value = 0
        self.declared = 0

    def set_value(self, v):
        self.value = v  # CONC001: no owned lock held

    def set_declared(self, v):
        self.declared = v  # CONC001: LOCKED_BY names _lock, not held

    def wait_unheld(self):
        self._cond.wait()  # CONC003: condition not held

    def wait_no_loop(self):
        with self._cond:
            if self.value == 0:
                self._cond.wait()  # CONC003: bare wait outside a while
