# repro: scope[sim]
"""Seeded DET good example: seeded instances only, no wall clock."""

import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def draw(rng: random.Random) -> float:
    return rng.random()
