# repro: scope[surrogate]
"""Seeded DET/PURE bad examples under the surrogate domain.

The surrogate package promises the same contract as the delay model:
deterministic, pure functions of (config, load).  This fixture holds
one violation of each rule class the domain inherits.
"""

import random
import time

_FITS = {}


def noisy_estimate(load):
    jitter = random.random()  # DET001: process-global RNG
    return load * (1.0 + jitter)


def timed_estimate(load):
    started = time.perf_counter()  # DET002: wall clock in model code
    return load + started


def count_fit():
    global _TOTAL  # PURE001: global rebinding
    _TOTAL = 1
    return _TOTAL


def memo_fit(key, value):
    _FITS[key] = value  # PURE003: module dict write
    return _FITS


def dump_fit(record):
    print(record)  # PURE002: I/O in model code
