# repro: scope[delaymodel]
"""Seeded PURE bad examples: global writes, module mutation, I/O."""

_RESULTS = []
_MEMO = {}
_CALLS = 0


def record(delay):
    _RESULTS.append(delay)  # PURE003: module state mutation
    return delay


def memoized_delay(width):
    if width not in _MEMO:
        _MEMO[width] = width * 3.5  # PURE003: module dict write
    return _MEMO[width]


def count_call():
    global _CALLS  # PURE001: global rebinding
    _CALLS = _CALLS + 1
    return _CALLS


def dump_table(rows):
    print(rows)  # PURE002: I/O in model code
    with open("table.txt", "w") as handle:  # PURE002
        handle.write(str(rows))
