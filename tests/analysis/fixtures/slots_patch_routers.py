"""Fully-slotted provider class for the SLOTS002 fixture."""


class SlottedRouter:
    __slots__ = ("node",)

    def __init__(self, node):
        self.node = node

    def forward(self, flit):
        return flit
