"""Seeded SLOTS good examples: covered slots, field-only config state."""

from dataclasses import dataclass


class Packed:
    __slots__ = ("length", "head", "tagged")

    def __init__(self, length):
        self.length = length
        self.head = None
        self.tagged = False

    def mark(self):
        self.tagged = True


class Flexible:
    # No __slots__: instances carry a __dict__, assign freely.

    def mark(self):
        self.tagged = True


@dataclass
class SimConfig:
    mesh_radix: int = 8
    seed: int = 1


def tag_config():
    config = SimConfig(mesh_radix=4)
    config.seed = 7
    return config
