# repro: scope[runtime]
"""Good lock discipline: every CONC rule's happy path in one module."""

import queue
import threading

LOCKED_BY = {"Server.value": "_lock"}
THREAD_CONFINED = {"Server._scratch"}
PROCESS_LOCAL = {"_MEMO"}

_MEMO = {}


class Server:
    def __init__(self):
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs = queue.Queue()
        self.value = 0
        self._scratch = []

    def set_value(self, v):
        with self._lock:
            self.value = v

    def enqueue(self, item):
        # queue.Queue is intrinsically thread-safe: no guard needed.
        self._jobs.put(item)

    def note(self, x):
        # Declared THREAD_CONFINED: only ever touched by the caller.
        self._scratch.append(x)

    def wait_until_set(self):
        with self._cond:
            while self.value == 0:
                self._cond.wait()

    def wait_until_set_predicate(self):
        with self._cond:
            self._cond.wait_for(lambda: self.value != 0)


def _work(x):
    # _MEMO is declared PROCESS_LOCAL: the per-process fork is intended.
    _MEMO[x] = x * 2
    return _MEMO[x]


def run(pool, xs):
    return [pool.submit(_work, x) for x in xs]
