"""Seeded CACHE bad example: fields that never reach the cache key."""

import hashlib
import json
from dataclasses import dataclass
from typing import Optional


@dataclass
class TelemetryConfig:
    sample_period: int = 64  # CACHE001: TelemetryConfig never keyed


@dataclass
class SimConfig:
    SCHEMA_HINT = "v1"  # CACHE002: class attr, invisible to asdict()

    mesh_radix: int = 8
    seed: int = 1
    debug_label: str = ""  # CACHE001: not keyed, not exempt
    telemetry: Optional[TelemetryConfig] = None  # CACHE001


@dataclass
class MeasurementConfig:
    warmup_cycles: int = 1000
    sample_packets: int = 2000  # CACHE001: measurement not keyed at all


def config_key(config: SimConfig) -> str:
    payload = {
        "radix": config.mesh_radix,
        "seed": config.seed,
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()
