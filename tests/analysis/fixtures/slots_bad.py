"""Seeded SLOTS bad examples: slot gaps and non-field dataclass state."""

from dataclasses import dataclass


class Packed:
    __slots__ = ("length", "head")

    def __init__(self, length):
        self.length = length
        self.head = None

    def mark(self):
        self.tagged = True  # SLOTS001: 'tagged' not in __slots__


class PackedChild(Packed):
    __slots__ = ("tail",)

    def seal(self):
        self.tail = None
        self.checksum = 0  # SLOTS001: not in the chain's slots


@dataclass
class SimConfig:
    mesh_radix: int = 8
    seed: int = 1


def tag_config():
    config = SimConfig(mesh_radix=4)
    config.seed = 7  # fine: a real field
    config.run_label = "sweep-3"  # SLOTS003: not a SimConfig field
    return config
