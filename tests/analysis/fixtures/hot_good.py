# repro: scope[sim, hot]
"""Hot-path discipline: the happy path for every HOT rule."""


class Router:
    def step(self, cycle):
        requests = self.requests  # single-hop reads are fine
        stats = self.stats  # hoisted once, used in the loop
        for request in requests:
            stats.grants += 1
            request.age = cycle
        # repro: hot-ok[bounded scratch the fixture documents]
        held = [r for r in requests]
        if held and cycle < 0:
            raise ValueError(f"negative cycle {cycle}")  # error path only
        return held
