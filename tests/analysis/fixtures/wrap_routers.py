"""Provider classes the WRAP fixtures resolve against."""


class Router:
    def __init__(self):
        self.node = 0
        self._spec_allocator = object()

    def _traverse(self, flit):
        return flit
