"""Seeded CACHE003 bad example: an unaccounted execution-plan knob."""

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional

RESULT_NEUTRAL = {
    "Plan.chunk_size",
}


@dataclass
class Plan:
    chunk_size: Optional[int] = None  # declared scheduling-only above
    retry_limit: int = 0  # neither keyed nor declared -> CACHE003


@dataclass
class SimConfig:
    seed: int = 1


def config_key(config: SimConfig) -> str:
    canonical = json.dumps(asdict(config), sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()
