# repro: scope[wrap-site]
"""Seeded SLOTS002 bad example: patching a fully-__slots__ class
(SlottedRouter lives in slots_patch_routers.py)."""


class PatchingCollector:
    def attach(self, network):
        for router in network.routers:
            original = router.forward  # resolves to SlottedRouter.forward
            router.forward = lambda flit: original(flit)  # SLOTS002
