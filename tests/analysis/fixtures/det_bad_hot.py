# repro: scope[sim, hot]
"""Seeded DET003 bad example: set iteration in a hot path."""


def arbitrate(requests):
    active = set(requests)
    for index in active:  # DET003: set iteration decides the winner
        if index % 2 == 0:
            return index
    return None


def collect(grants):
    return [g for g in {grant.port for grant in grants}]  # DET003


def sweep_ports(ports):
    for port in frozenset(ports):  # DET003
        yield port
