# repro: scope[delaymodel]
"""Seeded PURE good examples: pure computation, lru_cache memoization."""

import functools

TAU_FO4 = 5.0


@functools.lru_cache(maxsize=None)
def memoized_delay(width):
    return width * 3.5


def gate_delay(logical_effort, fanout):
    local = []
    local.append(logical_effort * fanout)  # local mutation is fine
    return sum(local) + TAU_FO4


def describe(rows):
    return "\n".join(str(row) for row in rows)  # returns text, no I/O
