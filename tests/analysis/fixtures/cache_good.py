"""Seeded CACHE good example: asdict coverage + explicit exemption."""

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional

CACHE_KEY_EXEMPT = {
    "MeasurementConfig.progress_note",
    "SimConfig.SCHEMA_VERSION",
}


@dataclass
class TelemetryConfig:
    sample_period: int = 64  # covered transitively via SimConfig.telemetry


@dataclass
class SimConfig:
    #: Documentation-only marker; exempted above (CACHE002 otherwise).
    SCHEMA_VERSION = 1

    mesh_radix: int = 8
    seed: int = 1
    telemetry: Optional[TelemetryConfig] = None


@dataclass
class MeasurementConfig:
    warmup_cycles: int = 1000
    #: Display-only; exempted above because it never affects results.
    progress_note: str = ""


def config_key(config: SimConfig,
               measurement: Optional[MeasurementConfig] = None) -> str:
    payload = {
        "config": asdict(config),
        "warmup": measurement.warmup_cycles if measurement else 0,
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()
