# repro: scope[sim, hot]
"""Hot-path violations: every HOT rule fires at least once, including
through a call-graph hop from the step root."""


class Router:
    def step(self, cycle):
        ready = [r for r in self.requests]  # HOT001: fresh list per call
        for request in ready:
            grant = {"request": request}  # HOT001: dict per iteration
            tracer = self.stats.tracer  # HOT004: 2-hop chain in a loop
            tracer.record(grant)
        key = lambda r: r.age  # HOT002: lambda per call
        print("stepped", cycle)  # HOT003: I/O on the hot path
        msg = f"cycle {cycle}"  # HOT003: f-string on the hot path
        self._drain(key, msg)

    def _drain(self, key, msg):
        # Reached from step over the call graph: still checked.
        return sorted((r for r in self.requests), key=key)  # HOT001
