"""Seeded CACHE003 good example: every plan field declared or keyed."""

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Optional

RESULT_NEUTRAL = {
    "Plan.chunk_size",
    "Plan.label",
}


@dataclass
class Plan:
    chunk_size: Optional[int] = None  # scheduling-only, declared above
    label: str = ""  # scheduling-only, declared above
    fault_rate: float = 0.0  # changes results, so it rides the key


@dataclass
class SimConfig:
    seed: int = 1


def config_key(config: SimConfig, plan: Plan) -> str:
    payload = {
        "config": asdict(config),
        "fault_rate": plan.fault_rate,
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()
