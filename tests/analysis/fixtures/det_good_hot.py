# repro: scope[sim, hot]
"""Seeded DET003 good example: ordered iteration, sets for membership."""


def arbitrate(requests):
    active = set(requests)
    for index in requests:  # sequence order: deterministic
        if index in active and index % 2 == 0:
            return index
    return None


def sweep_ports(ports):
    for port in sorted(set(ports)):  # sorted(): order restored
        yield port
