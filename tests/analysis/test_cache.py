"""CACHE checker: cache-key completeness, including the live drift test
that adds an unfingerprinted field to a throwaway config tree."""

import shutil
from pathlib import Path

from repro.analysis.checkers.cache import CacheKeyChecker

from .conftest import FIXTURES, run_analysis, rules_of


def _cache_only(*paths, root=None):
    return run_analysis(*paths, checkers=[CacheKeyChecker()], root=root)


def test_bad_fixture_flags_every_unkeyed_field():
    result = _cache_only("cache_bad.py")
    rules = rules_of(result)
    assert rules.count("CACHE001") == 5
    assert rules.count("CACHE002") == 1
    flagged = {f.message.split(" ")[0] for f in result.new_findings}
    assert flagged == {
        "SimConfig.debug_label",
        "SimConfig.telemetry",
        "SimConfig.SCHEMA_HINT",
        "TelemetryConfig.sample_period",
        "MeasurementConfig.warmup_cycles",
        "MeasurementConfig.sample_packets",
    }


def test_good_fixture_is_silent():
    result = _cache_only("cache_good.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_findings_point_at_field_definition_lines():
    result = _cache_only("cache_bad.py")
    text = (FIXTURES / "cache_bad.py").read_text().splitlines()
    for finding in result.new_findings:
        field_name = finding.message.split(" ")[0].split(".")[1]
        assert field_name in text[finding.line - 1]


def test_adding_unfingerprinted_field_to_real_tree_fails(tmp_path):
    """The drift test: copy the real config + cache modules and add one
    unfingerprinted knob to SimConfig; the lint must fail on exactly it.

    The real ``config_key`` hashes ``asdict(config)``, so any *dataclass
    field* added to SimConfig is fingerprinted automatically -- the
    genuinely unfingerprinted vector is class-level state, which
    ``asdict`` skips.  That is what CACHE002 guards."""
    repo_src = Path(__file__).resolve().parent.parent.parent / "src"
    tree = tmp_path / "mini"
    tree.mkdir()
    shutil.copy(repo_src / "repro/sim/config.py", tree / "config.py")
    shutil.copy(repo_src / "repro/runtime/cache.py", tree / "cache.py")
    shutil.copy(
        repo_src / "repro/telemetry/config.py", tree / "telemetry_config.py"
    )

    clean = _cache_only(tree, root=tmp_path)
    assert clean.ok, [str(f) for f in clean.new_findings]

    config = tree / "config.py"
    text = config.read_text()
    anchor = "    seed: int = 1\n"
    assert anchor in text
    config.write_text(text.replace(
        anchor, anchor + "    sneaky_knob = 0\n", 1
    ))
    dirty = _cache_only(tree, root=tmp_path)
    assert rules_of(dirty) == ["CACHE002"]
    assert "SimConfig.sneaky_knob" in dirty.new_findings[0].message


def test_exempt_field_via_module_set(tmp_path):
    snippet = tmp_path / "mod.py"
    snippet.write_text(
        "import hashlib, json\n"
        "from dataclasses import asdict, dataclass\n"
        "CACHE_KEY_EXEMPT = {'SimConfig.note'}\n"
        "@dataclass\n"
        "class SimConfig:\n"
        "    seed: int = 1\n"
        "    note: str = ''\n"
        "def config_key(config: SimConfig) -> str:\n"
        "    return hashlib.sha256(\n"
        "        json.dumps({'seed': config.seed}).encode()).hexdigest()\n"
    )
    result = _cache_only(snippet, root=tmp_path)
    assert result.ok, [str(f) for f in result.new_findings]


def test_plan_bad_fixture_flags_undeclared_field():
    result = _cache_only("cache_plan_bad.py")
    assert rules_of(result) == ["CACHE003"]
    finding = result.new_findings[0]
    assert "Plan.retry_limit" in finding.message
    text = (FIXTURES / "cache_plan_bad.py").read_text().splitlines()
    assert "retry_limit" in text[finding.line - 1]


def test_plan_good_fixture_is_silent():
    # chunk_size/label are declared result-neutral; fault_rate rides
    # the key via the plan parameter -- all three accounted for.
    result = _cache_only("cache_plan_good.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_neutral_declaration_must_sit_next_to_the_class(tmp_path):
    # A RESULT_NEUTRAL set in a different module does not bless the
    # field: the declaration and the knob must be one reviewable diff.
    (tmp_path / "plan.py").write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Plan:\n"
        "    chunk_size: int = 1\n"
    )
    (tmp_path / "keys.py").write_text(
        "import hashlib\n"
        "RESULT_NEUTRAL = {'Plan.chunk_size'}\n"
        "def config_key(seed: int) -> str:\n"
        "    return hashlib.sha256(str(seed).encode()).hexdigest()\n"
    )
    result = _cache_only(tmp_path, root=tmp_path)
    assert rules_of(result) == ["CACHE003"]
    assert "Plan.chunk_size" in result.new_findings[0].message


def test_adding_plan_field_to_real_tree_fails(tmp_path):
    """The scheduler drift test: copy the real scheduler + cache modules
    and add one undeclared Plan knob; the lint must fail on exactly it."""
    repo_src = Path(__file__).resolve().parent.parent.parent / "src"
    tree = tmp_path / "mini"
    tree.mkdir()
    for rel, name in (
        ("repro/runtime/scheduler.py", "scheduler.py"),
        ("repro/runtime/cache.py", "cache.py"),
        ("repro/sim/config.py", "config.py"),
        ("repro/telemetry/config.py", "telemetry_config.py"),
    ):
        shutil.copy(repo_src / rel, tree / name)

    clean = _cache_only(tree, root=tmp_path)
    assert clean.ok, [str(f) for f in clean.new_findings]

    scheduler = tree / "scheduler.py"
    text = scheduler.read_text()
    anchor = '    label: str = ""\n'
    assert anchor in text
    scheduler.write_text(text.replace(
        anchor, anchor + "    speculative_retry: int = 0\n", 1
    ))
    dirty = _cache_only(tree, root=tmp_path)
    assert rules_of(dirty) == ["CACHE003"]
    assert "Plan.speculative_retry" in dirty.new_findings[0].message


def test_plan_silent_without_key_function(tmp_path):
    snippet = tmp_path / "plan.py"
    snippet.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class Plan:\n"
        "    chunk_size: int = 1\n"
    )
    result = _cache_only(snippet, root=tmp_path)
    assert result.ok


def test_silent_without_key_function(tmp_path):
    # Completeness is undecidable without the key construction in view.
    snippet = tmp_path / "configs.py"
    snippet.write_text(
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SimConfig:\n"
        "    seed: int = 1\n"
    )
    result = _cache_only(snippet, root=tmp_path)
    assert result.ok
