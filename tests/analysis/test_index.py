"""ProjectIndex unit suite: call graph, fingerprints, signatures."""

from pathlib import Path

from repro.analysis.core import SourceFile
from repro.analysis.index import ProjectIndex


def _index(tmp_path: Path, **modules: str) -> ProjectIndex:
    index = ProjectIndex()
    for name, text in modules.items():
        path = tmp_path / f"{name}.py"
        path.write_text(text)
        index.add_file(SourceFile(path, root=tmp_path))
    return index


GRAPH = (
    "def helper():\n"
    "    return 1\n"
    "\n"
    "class Engine:\n"
    "    def __init__(self):\n"
    "        self.pump = Pump()\n"
    "\n"
    "    def run(self):\n"
    "        helper()\n"
    "        self.spin()\n"
    "        self.pump.prime()\n"
    "\n"
    "    def spin(self):\n"
    "        pass\n"
    "\n"
    "class Pump:\n"
    "    def prime(self):\n"
    "        pass\n"
)


def test_bare_name_edge(tmp_path):
    index = _index(tmp_path, mod=GRAPH)
    run = index.function_node("Engine", "run")
    reached = index.reachable([run])
    assert "mod.py::helper" in reached


def test_self_method_edge(tmp_path):
    index = _index(tmp_path, mod=GRAPH)
    run = index.function_node("Engine", "run")
    reached = index.reachable([run])
    assert "mod.py::Engine.spin" in reached


def test_ctor_typed_attribute_edge(tmp_path):
    # self.pump = Pump() in __init__ types the receiver of
    # self.pump.prime(), so the edge is precise, not any-provider.
    index = _index(tmp_path, mod=GRAPH)
    run = index.function_node("Engine", "run")
    reached = index.reachable([run])
    assert "mod.py::Pump.prime" in reached


def test_reachable_keep_filter_blocks_expansion(tmp_path):
    index = _index(tmp_path, mod=GRAPH)
    run = index.function_node("Engine", "run")
    reached = index.reachable(
        [run], keep=lambda n: n.class_name == "Engine"
    )
    # Roots always pass; expansion stays inside the Engine class.
    assert "mod.py::Engine.run" in reached
    assert "mod.py::Engine.spin" in reached
    assert "mod.py::helper" not in reached


def test_nested_functions_get_locals_qualnames(tmp_path):
    index = _index(
        tmp_path,
        mod=(
            "def make():\n"
            "    def inner():\n"
            "        return 1\n"
            "    return inner\n"
        ),
    )
    assert any(
        node.nested and "make.<locals>.inner" in qualname
        for qualname, node in index.nodes.items()
    )


def test_module_fingerprint_tracks_any_byte(tmp_path):
    index_a = _index(tmp_path, mod=GRAPH)
    fp_a = index_a.modules["mod.py"].fingerprint
    (tmp_path / "mod.py").write_text(GRAPH + "# trailing comment\n")
    index_b = ProjectIndex()
    index_b.add_file(SourceFile(tmp_path / "mod.py", root=tmp_path))
    assert index_b.modules["mod.py"].fingerprint != fp_a


def test_signature_ignores_comment_only_edits(tmp_path):
    index_a = _index(tmp_path, mod=GRAPH)
    (tmp_path / "mod.py").write_text("# a leading comment\n" + GRAPH)
    index_b = ProjectIndex()
    index_b.add_file(SourceFile(tmp_path / "mod.py", root=tmp_path))
    assert index_b.signature() == index_a.signature()


def test_signature_tracks_structural_edits(tmp_path):
    index_a = _index(tmp_path, mod=GRAPH)
    (tmp_path / "mod.py").write_text(
        GRAPH + "\ndef extra():\n    return 2\n"
    )
    index_b = ProjectIndex()
    index_b.add_file(SourceFile(tmp_path / "mod.py", root=tmp_path))
    assert index_b.signature() != index_a.signature()


def test_signature_is_stable_across_builds(tmp_path):
    index_a = _index(tmp_path, mod=GRAPH)
    index_b = _index(tmp_path, mod=GRAPH)
    assert index_a.signature() == index_b.signature()
