"""Helpers for the analysis-checker tests."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture
def fixtures() -> Path:
    return FIXTURES


def run_analysis(*paths, checkers=None, baseline=None, root=None):
    """Analyze ``paths`` (absolute or fixture-relative) and return the
    result."""
    from repro.analysis import analyze

    resolved = [
        p if Path(p).is_absolute() else FIXTURES / p for p in paths
    ]
    return analyze(
        resolved,
        checkers=checkers,
        baseline=baseline,
        root=root or REPO_ROOT,
    )


def rules_of(result):
    """Sorted rule ids of the result's new findings."""
    return sorted(f.rule for f in result.new_findings)
