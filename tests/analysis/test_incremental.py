"""Incremental driver: cache round-trip, warm-run identity, invalidation."""

import json
from pathlib import Path

from repro.analysis import AnalysisCache, analyze
from repro.analysis.cache import module_key, project_key
from repro.analysis.core import Finding
from repro.analysis.reporters import render_json

GOOD = "def fine():\n    return 1\n"
BAD = (
    "# repro: scope[sim]\n"
    "import time\n"
    "def now():\n"
    "    return time.time()\n"
)


def _tree(tmp_path: Path) -> Path:
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "good.py").write_text(GOOD)
    (src / "bad.py").write_text(BAD)
    return src


def test_cache_round_trip(tmp_path):
    cache = AnalysisCache(tmp_path / "cache")
    findings = [
        Finding(rule="DET002", severity="error", path="a.py", line=3,
                message="m", checker="det"),
    ]
    key = module_key("fp", "sig", "rules")
    assert cache.get(key) is None  # recorded miss
    cache.put(key, findings)
    assert key in cache
    assert cache.get(key) == findings
    assert cache.hits == 1 and cache.misses == 1
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_keys_separate_module_index_and_ruleset():
    base = module_key("fp", "sig", "rules")
    assert module_key("fp2", "sig", "rules") != base
    assert module_key("fp", "sig2", "rules") != base
    assert module_key("fp", "sig", "rules2") != base
    # Project keys are order-independent over the module set.
    assert project_key(["a", "b"], "sig", "rules") == project_key(
        ["b", "a", "a"], "sig", "rules"
    )
    assert project_key(["a"], "sig", "rules") != module_key(
        "a", "sig", "rules"
    )


def test_warm_run_reanalyzes_nothing(tmp_path):
    src = _tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold = analyze([src], root=tmp_path, cache=cache)
    assert cold.stats.modules_analyzed == 2
    assert cold.stats.modules_cached == 0
    warm = analyze([src], root=tmp_path, cache=cache)
    assert warm.stats.modules_analyzed == 0
    assert warm.stats.modules_cached == 2
    assert warm.stats.finalize_cached


def test_warm_json_is_byte_identical(tmp_path):
    src = _tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    cold = analyze([src], root=tmp_path, cache=cache)
    warm = analyze([src], root=tmp_path, cache=cache)
    assert render_json(warm) == render_json(cold)
    assert not cold.ok  # the run exercised real findings, not no-ops
    payload = json.loads(render_json(warm))
    assert "elapsed" not in json.dumps(payload)  # timings never leak in


def test_comment_edit_keeps_other_modules_warm(tmp_path):
    src = _tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze([src], root=tmp_path, cache=cache)
    (src / "good.py").write_text("# a new comment\n" + GOOD)
    second = analyze([src], root=tmp_path, cache=cache)
    # Only the edited module went cold; the index signature is
    # unchanged by a comment, so bad.py stayed cached.
    assert second.stats.modules_analyzed == 1
    assert second.stats.modules_cached == 1


def test_structural_edit_rotates_the_project_entry(tmp_path):
    src = _tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze([src], root=tmp_path, cache=cache)
    (src / "good.py").write_text(GOOD + "def extra():\n    return 2\n")
    second = analyze([src], root=tmp_path, cache=cache)
    assert not second.stats.finalize_cached


def test_no_cache_analyzes_cold_every_time(tmp_path):
    src = _tree(tmp_path)
    first = analyze([src], root=tmp_path)
    second = analyze([src], root=tmp_path)
    for result in (first, second):
        assert result.stats.modules_analyzed == 2
        assert result.stats.modules_cached == 0
        assert not result.stats.finalize_cached


def test_findings_identical_with_and_without_cache(tmp_path):
    src = _tree(tmp_path)
    cache = AnalysisCache(tmp_path / "cache")
    analyze([src], root=tmp_path, cache=cache)  # populate
    warm = analyze([src], root=tmp_path, cache=cache)
    cold = analyze([src], root=tmp_path)
    assert warm.new_findings == cold.new_findings


def test_parallel_workers_match_serial(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    for i in range(12):
        (src / f"mod{i:02d}.py").write_text(BAD)
    serial = analyze([src], root=tmp_path, workers=1)
    threaded = analyze([src], root=tmp_path, workers=4)
    assert serial.new_findings == threaded.new_findings
    assert threaded.stats.workers == 4
    assert len(serial.new_findings) == 12
