"""SLOTS checker: slot coverage, slotted-instance patching, pickled
dataclass hygiene."""

from repro.analysis.checkers.slots import SlotsChecker

from .conftest import run_analysis, rules_of


def _slots_only(*paths, root=None):
    return run_analysis(*paths, checkers=[SlotsChecker()], root=root)


def test_bad_fixture_fires_coverage_and_pickle_rules():
    result = _slots_only("slots_bad.py")
    rules = rules_of(result)
    assert rules.count("SLOTS001") == 2  # Packed.tagged, PackedChild.checksum
    assert rules.count("SLOTS003") == 1  # SimConfig.run_label
    messages = " ".join(f.message for f in result.new_findings)
    assert "tagged" in messages
    assert "checksum" in messages
    assert "run_label" in messages


def test_good_fixture_is_silent():
    result = _slots_only("slots_good.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_patching_fully_slotted_class_fires_slots002():
    result = _slots_only(
        "slots_bad_patch_collectors.py", "slots_patch_routers.py"
    )
    assert "SLOTS002" in rules_of(result)
    finding = next(
        f for f in result.new_findings if f.rule == "SLOTS002"
    )
    assert "SlottedRouter" in finding.message


def test_dict_backed_provider_keeps_patch_legal(tmp_path):
    # Same patch, but the provider has no __slots__: instances carry a
    # __dict__, so the wrap is fine (this is the sim's actual contract).
    site = tmp_path / "collectors.py"
    site.write_text(
        "class C:\n"
        "    def attach(self, network):\n"
        "        for router in network.routers:\n"
        "            original = router.forward\n"
        "            router.forward = lambda f: original(f)\n"
    )
    provider = tmp_path / "routers.py"
    provider.write_text(
        "class Router:\n"
        "    def forward(self, flit):\n"
        "        return flit\n"
    )
    result = _slots_only(site, provider, root=tmp_path)
    assert result.ok, [str(f) for f in result.new_findings]


def test_unresolvable_base_disables_coverage_check(tmp_path):
    # A base class outside the analyzed set may carry __dict__;
    # flagging would be a false positive, so the checker must not.
    snippet = tmp_path / "mod.py"
    snippet.write_text(
        "from somewhere import Base\n"
        "class Sub(Base):\n"
        "    __slots__ = ('x',)\n"
        "    def set_both(self):\n"
        "        self.x = 1\n"
        "        self.y = 2\n"
    )
    result = _slots_only(snippet, root=tmp_path)
    assert result.ok, [str(f) for f in result.new_findings]
