"""HOT hot-path checker: fixtures, reachability, and escapes."""

from repro.analysis.checkers.hot import HotPathChecker

from .conftest import run_analysis, rules_of


def _hot(*paths, root=None):
    return run_analysis(*paths, checkers=[HotPathChecker()], root=root)


def test_good_fixture_is_clean_with_escape_counted():
    result = _hot("hot_good.py")
    assert result.ok, "\n".join(str(f) for f in result.new_findings)
    # The documented hot-ok escape did suppress something.
    assert result.suppressed_count == 1


def test_bad_fixture_fires_every_rule():
    result = _hot("hot_bad.py")
    assert rules_of(result) == [
        "HOT001", "HOT001", "HOT001",
        "HOT002",
        "HOT003", "HOT003",
        "HOT004",
    ]


def test_hot001_reaches_through_the_call_graph():
    # The generator expression lives in _drain, one self-call from step.
    result = _hot("hot_bad.py")
    drained = [
        f for f in result.new_findings
        if f.rule == "HOT001" and "_drain" in f.message
    ]
    assert len(drained) == 1


def test_hot004_names_the_chain():
    result = _hot("hot_bad.py")
    (chain,) = [f for f in result.new_findings if f.rule == "HOT004"]
    assert "self.stats.tracer" in chain.message


def test_rules_scoped_to_hot_domain(tmp_path):
    # The same code outside the sim/hot domains is cold by definition.
    from .conftest import FIXTURES

    unscoped = tmp_path / "mod.py"
    unscoped.write_text(
        (FIXTURES / "hot_bad.py").read_text().replace(
            "# repro: scope[sim, hot]\n", ""
        )
    )
    result = _hot(str(unscoped), root=tmp_path)
    assert result.ok


def test_error_paths_are_exempt(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text(
        "# repro: scope[sim, hot]\n"
        "class Router:\n"
        "    def step(self):\n"
        "        if self.broken:\n"
        "            raise ValueError(f'bad state {self.broken}')\n"
        "        assert self.ready, f'not ready'\n"
    )
    result = _hot(str(mod), root=tmp_path)
    assert result.ok, "\n".join(str(f) for f in result.new_findings)


def test_test_modules_never_join_the_hot_set(tmp_path):
    mod = tmp_path / "test_router.py"
    mod.write_text(
        "# repro: scope[sim, hot]\n"
        "class Router:\n"
        "    def step(self):\n"
        "        return [r for r in self.requests]\n"
    )
    result = _hot(str(mod), root=tmp_path)
    assert result.ok
