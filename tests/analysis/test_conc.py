"""CONC lock-discipline checker: fixtures plus the estimator drift test."""

from pathlib import Path

from repro.analysis.checkers.conc import ConcurrencyChecker

from .conftest import REPO_ROOT, run_analysis, rules_of

ESTIMATOR = REPO_ROOT / "src" / "repro" / "runtime" / "estimator.py"


def _conc(*paths, root=None):
    return run_analysis(*paths, checkers=[ConcurrencyChecker()], root=root)


def test_good_fixture_is_clean():
    result = _conc("conc_good.py")
    assert result.ok, "\n".join(str(f) for f in result.new_findings)


def test_bad_fixture_unguarded_and_misguarded_writes():
    result = _conc("conc_bad.py")
    assert rules_of(result) == ["CONC001", "CONC001", "CONC003", "CONC003"]


def test_conc001_names_the_declared_lock():
    result = _conc("conc_bad.py")
    declared = [
        f for f in result.new_findings if "Racy.declared" in f.message
    ]
    assert len(declared) == 1
    assert "LOCKED_BY" in declared[0].message
    assert "_lock" in declared[0].message


def test_conc002_thread_target_reachability():
    result = _conc("conc_bad_thread.py")
    assert rules_of(result) == ["CONC002"]
    (finding,) = result.new_findings
    assert "Worker.count" in finding.message
    assert "_bump" in finding.message  # the write is one call away


def test_conc003_sites():
    result = _conc("conc_bad.py")
    waits = [f for f in result.new_findings if f.rule == "CONC003"]
    messages = " | ".join(f.message for f in waits)
    assert "without holding" in messages
    assert "while" in messages


def test_conc004_pool_worker_global():
    result = _conc("conc_bad_pool.py")
    assert rules_of(result) == ["CONC004"]
    (finding,) = result.new_findings
    assert "_CACHE" in finding.message
    assert "PROCESS_LOCAL" in finding.message


def test_rules_scoped_to_runtime_domain(tmp_path):
    # The same bad code outside the runtime domain is not CONC's business.
    bad = (REPO_ROOT / "tests" / "analysis" / "fixtures" / "conc_bad.py")
    unscoped = tmp_path / "mod.py"
    unscoped.write_text(
        bad.read_text().replace("# repro: scope[runtime]\n", "")
    )
    result = _conc(str(unscoped), root=tmp_path)
    assert result.ok


# ----------------------------------------------------------------------
# Drift test: strip a lock acquisition from a copy of the real
# estimator and the checker must notice.
# ----------------------------------------------------------------------


def _estimator_copy(tmp_path: Path, text: str) -> Path:
    copy = tmp_path / "estimator_copy.py"
    copy.write_text("# repro: scope[runtime]\n" + text)
    return copy


def test_real_estimator_copy_is_clean(tmp_path):
    copy = _estimator_copy(tmp_path, ESTIMATOR.read_text())
    result = _conc(str(copy), root=tmp_path)
    conc = [f for f in result.new_findings if f.rule.startswith("CONC")]
    assert conc == [], "\n".join(str(f) for f in conc)


def test_drain_loop_without_idle_lock_trips_conc001(tmp_path):
    source = ESTIMATOR.read_text()
    guarded = (
        "            with self._idle:\n"
        "                self._inflight -= len(batch)"
    )
    stripped = source.replace(
        guarded,
        guarded.replace("with self._idle:", "if True:"),
    )
    assert stripped != source, "estimator drain-loop shape drifted"
    copy = _estimator_copy(tmp_path, stripped)
    result = _conc(str(copy), root=tmp_path)
    conc001 = [f for f in result.new_findings if f.rule == "CONC001"]
    assert any("_inflight" in f.message for f in conc001), (
        "\n".join(str(f) for f in result.new_findings)
    )
