"""WRAP checker: probe-point resolution, including the live drift test
that renames a wrapped method in a throwaway copy of the real tree."""

import shutil
from pathlib import Path

from repro.analysis.checkers.wrap import WrapTargetChecker, collect_wrap_sites
from repro.analysis.core import SourceFile

from .conftest import FIXTURES, run_analysis, rules_of

REPO_SRC = Path(__file__).resolve().parent.parent.parent / "src"


def _wrap_only(*paths, root=None):
    return run_analysis(*paths, checkers=[WrapTargetChecker()], root=root)


def test_bad_fixture_fires_on_every_orphaned_target():
    result = _wrap_only("wrap_bad_collectors.py", "wrap_routers.py")
    rules = rules_of(result)
    assert rules == ["WRAP001"] * 3
    attrs = {f.message.split("'")[1] for f in result.new_findings}
    assert attrs == {"_cross_traverse", "_speculative_alloc"}


def test_good_fixture_is_silent():
    result = _wrap_only("wrap_good_collectors.py", "wrap_routers.py")
    assert result.ok, [str(f) for f in result.new_findings]


def test_site_collection_finds_all_three_idioms():
    source = SourceFile(
        FIXTURES / "wrap_good_collectors.py", root=FIXTURES.parent
    )
    kinds = {(s.kind, s.attr) for s in collect_wrap_sites(source)}
    assert ("monkeypatch", "_traverse") in kinds
    assert ("getattr", "_spec_allocator") in kinds
    assert ("dict-probe", "_traverse") in kinds


def test_real_probe_points_resolve():
    """The repository's own probes/collectors must resolve today."""
    result = _wrap_only(
        REPO_SRC / "repro/sim/validation/probes.py",
        REPO_SRC / "repro/telemetry/collectors.py",
        REPO_SRC / "repro/sim/routers",
        REPO_SRC / "repro/sim/network.py",
        REPO_SRC / "repro/sim/traffic.py",
        root=REPO_SRC.parent,
    )
    assert result.ok, [str(f) for f in result.new_findings]


def test_renaming_wrapped_method_fails_lint(tmp_path):
    """The drift test: rename ``_traverse`` in a throwaway copy of the
    router base class and the collector wrap site must stop resolving."""
    tree = tmp_path / "mini"
    tree.mkdir()
    shutil.copy(
        REPO_SRC / "repro/telemetry/collectors.py", tree / "collectors.py"
    )
    base = tree / "base.py"
    shutil.copy(REPO_SRC / "repro/sim/routers/base.py", base)
    shutil.copy(REPO_SRC / "repro/sim/traffic.py", tree / "traffic.py")

    clean = _wrap_only(tree, root=tmp_path)
    assert clean.ok, [str(f) for f in clean.new_findings]

    renamed = base.read_text().replace("_traverse", "_push_through")
    base.write_text(renamed)
    dirty = _wrap_only(tree, root=tmp_path)
    assert "WRAP001" in rules_of(dirty)
    assert any(
        "_traverse" in f.message for f in dirty.new_findings
    ), [str(f) for f in dirty.new_findings]
