"""Smoke tests: every example script runs end to end.

Examples are documentation that executes; these tests keep them from
rotting.  Each runs in a subprocess with its quickest settings and must
exit 0 and print its headline content.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", [], "zero-load latency"),
    ("pipeline_explorer.py", [], "Pipeline depth vs clock"),
    ("design_space.py", [], "Chien"),
    ("paper_walkthrough.py", [], "packet latency"),
    ("compare_flow_control.py", ["--quick"], "saturation"),
    ("credit_loop_study.py", ["--quick"], "turnaround"),
    ("beyond_the_paper.py", ["--quick"], "torus"),
    ("congestion_atlas.py", ["--cycles", "300", "--load", "0.4"],
     "buffer occupancy"),
    ("speculation_anatomy.py", None, "speculative"),  # None -> importable only
]


@pytest.mark.parametrize(
    "script,args,needle",
    [case for case in CASES if case[1] is not None],
    ids=[case[0] for case in CASES if case[1] is not None],
)
@pytest.mark.slow
def test_example_runs(script, args, needle):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert needle.lower() in result.stdout.lower()


@pytest.mark.parametrize("script", [case[0] for case in CASES])
def test_example_compiles(script):
    """Cheap per-commit check: every example at least byte-compiles."""
    source = (EXAMPLES / script).read_text()
    compile(source, script, "exec")


def test_all_examples_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {case[0] for case in CASES}
