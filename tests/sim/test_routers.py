"""Targeted router-behaviour tests: blocking, VC interleaving, speculation."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.routers.base import VCState
from repro.sim.topology import EAST, LOCAL


def make_network(kind, vcs, radix=4, bufs=4, seed=0, **kw):
    return Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=radix,
        buffers_per_vc=bufs, injection_fraction=0.0, seed=seed, **kw,
    ))


def send(network, src, dst, length):
    packet = Packet(source=src, destination=dst, length=length,
                    creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestVirtualChannelInterleaving:
    """The raison d'etre of VCs: a short packet is not serialised behind a
    long packet sharing its physical channel (head-of-line blocking)."""

    def run_two_packets(self, kind, vcs):
        network = make_network(kind, vcs, bufs=4)
        long_packet = send(network, 0, 3, length=24)   # 0 -> 3 along the top
        short_packet = send(network, 0, 1, length=2)   # shares channel 0->1
        network.run(200)
        assert long_packet.ejection_cycle is not None
        assert short_packet.ejection_cycle is not None
        return long_packet, short_packet

    def test_wormhole_serialises_short_behind_long(self):
        long_packet, short_packet = self.run_two_packets(RouterKind.WORMHOLE, 1)
        # The single input queue forces the short packet to wait for all
        # 24 flits of the long one.
        assert short_packet.ejection_cycle > long_packet.creation_cycle + 24

    def test_vc_router_interleaves(self):
        long_packet, short_packet = self.run_two_packets(
            RouterKind.VIRTUAL_CHANNEL, 2
        )
        # The short packet travels on the second VC, finishing long
        # before the long packet's 24 flits have even been injected.
        assert short_packet.ejection_cycle < long_packet.ejection_cycle

    def test_vc_short_packet_beats_wormhole_short_packet(self):
        _, wormhole_short = self.run_two_packets(RouterKind.WORMHOLE, 1)
        _, vc_short = self.run_two_packets(RouterKind.VIRTUAL_CHANNEL, 2)
        assert vc_short.ejection_cycle < wormhole_short.ejection_cycle


class TestWormholePortHolding:
    def test_output_port_held_until_tail(self):
        network = make_network(RouterKind.WORMHOLE, 1, bufs=8)
        send(network, 0, 2, length=6)
        router = network.routers[0]
        held_cycles = []
        for _ in range(40):
            network.step()
            if router.port_held_by[EAST] is not None:
                held_cycles.append(network.cycle)
        # Held continuously for the packet's traversal, then released.
        assert len(held_cycles) >= 5
        assert held_cycles == list(range(held_cycles[0], held_cycles[-1] + 1))
        assert router.port_held_by[EAST] is None

    def test_second_packet_waits_for_release(self):
        network = make_network(RouterKind.WORMHOLE, 1, bufs=8)
        first = send(network, 0, 1, length=8)
        second = send(network, 4, 1, length=2)  # node below; competes for
        network.run(100)                        # ejection port at node 1
        assert first.ejection_cycle is not None
        assert second.ejection_cycle is not None


class TestSpeculativeBehaviour:
    def test_speculation_succeeds_in_empty_network(self):
        network = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=8)
        packet = send(network, 0, 3, length=5)
        network.run(80)
        grants = sum(r.stats.spec_grants for r in network.routers)
        wasted = sum(r.stats.spec_wasted for r in network.routers)
        assert packet.ejection_cycle is not None
        assert grants >= 3          # one per hop for the head flit
        assert wasted == 0          # nothing contended, all succeed

    def test_speculative_head_saves_a_cycle_per_hop(self):
        spec = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=8)
        nonspec = make_network(RouterKind.VIRTUAL_CHANNEL, 2, bufs=8)
        spec_packet = send(spec, 0, 3, length=5)
        nonspec_packet = send(nonspec, 0, 3, length=5)
        spec.run(100)
        nonspec.run(100)
        # 3 hops + ejection: 4 routers on the path, 1 cycle saved in each.
        assert nonspec_packet.latency - spec_packet.latency == 4

    def test_wasted_speculation_under_contention(self):
        network = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=2, seed=3)
        for generator in network.generators:
            generator.rate_packets_per_cycle = 0.08
        network.run(600)
        wasted = sum(r.stats.spec_wasted for r in network.routers)
        grants = sum(r.stats.spec_grants for r in network.routers)
        assert grants > 0
        # Some speculation fails under load, but it must stay bounded.
        assert 0 < wasted < grants

    def test_bodies_are_never_speculative(self):
        """Only head flits bid speculatively (bodies inherit the VC), so
        speculative grants are at most one per routed packet per hop."""
        network = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=8)
        send(network, 0, 3, length=30)
        network.run(200)
        grants = sum(r.stats.spec_grants for r in network.routers)
        routed = sum(r.stats.packets_routed for r in network.routers)
        assert grants <= routed


class TestVCAllocationStates:
    def test_head_walks_through_states(self):
        network = make_network(RouterKind.VIRTUAL_CHANNEL, 2, bufs=4)
        send(network, 0, 3, length=5)
        router = network.routers[0]
        observed = set()
        for _ in range(12):
            network.step()
            observed.add(router.input_vcs[LOCAL][0].state)
        assert VCState.ACTIVE in observed
        # the VC returns to idle after the tail departs
        network.run(80)
        assert router.input_vcs[LOCAL][0].state is VCState.IDLE

    def test_output_vc_released_after_tail(self):
        network = make_network(RouterKind.VIRTUAL_CHANNEL, 2, bufs=4)
        send(network, 0, 1, length=5)
        network.run(60)
        for router in network.routers:
            for port_vcs in router.output_vcs:
                for ovc in port_vcs:
                    assert ovc.is_free

    def test_two_packets_use_distinct_output_vcs(self):
        network = make_network(RouterKind.VIRTUAL_CHANNEL, 2, bufs=4)
        send(network, 0, 3, length=20)
        send(network, 0, 3, length=20)
        seen_pairs = set()
        router = network.routers[0]
        for _ in range(30):
            network.step()
            holders = [
                ovc.held_by
                for ovc in router.output_vcs[EAST]
                if ovc.held_by is not None
            ]
            if len(holders) == 2:
                seen_pairs.add(tuple(sorted(holders)))
        assert seen_pairs, "packets never held two output VCs concurrently"
