"""Tests for packets and flit segmentation."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.flit import Flit, FlitType, Packet


def make_packet(length=5, src=0, dst=1, created=0):
    return Packet(source=src, destination=dst, length=length,
                  creation_cycle=created)


class TestPacket:
    def test_unique_ids(self):
        a, b = make_packet(), make_packet()
        assert a.packet_id != b.packet_id

    def test_latency_requires_delivery(self):
        packet = make_packet(created=10)
        with pytest.raises(ValueError):
            _ = packet.latency
        packet.ejection_cycle = 42
        assert packet.latency == 32

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            make_packet(length=0)

    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            make_packet(src=3, dst=3)


class TestFlitSegmentation:
    def test_five_flit_packet(self):
        flits = make_packet(length=5).make_flits()
        types = [f.flit_type for f in flits]
        assert types == [
            FlitType.HEAD, FlitType.BODY, FlitType.BODY, FlitType.BODY,
            FlitType.TAIL,
        ]

    def test_two_flit_packet(self):
        # The paper's walkthrough example: one head, one tail.
        flits = make_packet(length=2).make_flits()
        assert [f.flit_type for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_single_flit_packet(self):
        (flit,) = make_packet(length=1).make_flits()
        assert flit.flit_type is FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_indices_sequential(self):
        flits = make_packet(length=7).make_flits()
        assert [f.index for f in flits] == list(range(7))

    def test_flits_share_packet(self):
        packet = make_packet()
        assert all(f.packet is packet for f in packet.make_flits())

    def test_destination_passthrough(self):
        flits = make_packet(dst=42, src=0).make_flits()
        assert all(f.destination == 42 for f in flits)

    @given(st.integers(min_value=1, max_value=64))
    def test_exactly_one_head_and_tail(self, length):
        flits = make_packet(length=length).make_flits()
        assert len(flits) == length
        assert sum(f.is_head for f in flits) == 1
        assert sum(f.is_tail for f in flits) == 1
        assert flits[0].is_head
        assert flits[-1].is_tail

    def test_vcid_defaults_to_zero_and_is_mutable(self):
        flit = make_packet().make_flits()[0]
        assert flit.vcid == 0
        flit.vcid = 3  # routers rewrite it at each hop
        assert flit.vcid == 3


class TestFlitType:
    def test_head_tail_flags(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail
