"""Integration tests: VC routers on a torus, and o1turn on a mesh."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.dateline import o1turn_choice, vc_class
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.topology import LOCAL, Torus, port_dimension
from repro.sim.trace import EventKind, Tracer


def torus_network(kind=RouterKind.SPECULATIVE_VC, vcs=2, radix=4, load=0.0,
                  bufs=4, seed=0, **kw):
    return Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=radix, buffers_per_vc=bufs,
        injection_fraction=load, topology="torus", seed=seed, **kw,
    ))


def send(network, src, dst, length=5):
    packet = Packet(source=src, destination=dst, length=length,
                    creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestConfigGuards:
    def test_wormhole_on_torus_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.WORMHOLE, topology="torus")

    def test_single_cycle_wormhole_on_torus_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(
                router_kind=RouterKind.SINGLE_CYCLE_WORMHOLE, topology="torus"
            )

    def test_o1turn_needs_vcs(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.WORMHOLE, routing_function="o1turn")

    def test_o1turn_on_torus_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(
                router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=4,
                routing_function="o1turn", topology="torus",
            )


class TestTorusDelivery:
    def test_wrap_hop_latency(self):
        network = torus_network()
        packet = send(network, 0, 3)  # one hop WEST via the wrap link
        network.run(60)
        assert packet.latency == 4 * 1 + 8

    def test_all_pairs_deliver(self):
        network = torus_network(radix=3, vcs=2)
        packets = [
            send(network, src, dst)
            for src in range(9) for dst in range(9) if src != dst
        ]
        network.run(2500)
        assert all(p.ejection_cycle is not None for p in packets)

    def test_torus_beats_mesh_zero_load(self):
        """Wrap links cut the average path (4.06 vs 5.33 hops at k=8)."""
        results = {}
        for topology in ("mesh", "torus"):
            network = Network(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=8, mesh_radix=8, injection_fraction=0.03,
                topology=topology, seed=7,
            ))
            network.run(2500)
            delivered = [
                p for sink in network.sinks for p in sink.delivered
            ]
            assert len(delivered) > 50
            results[topology] = sum(p.latency for p in delivered) / len(delivered)
        assert results["torus"] < results["mesh"] - 3.0

    def test_heavy_load_keeps_moving_and_drains(self):
        """Dateline classes keep the rings deadlock-free."""
        network = torus_network(
            kind=RouterKind.VIRTUAL_CHANNEL, vcs=2, load=0.5, seed=3
        )
        network.run(600)
        first = network.total_flits_ejected()
        network.run(600)
        assert network.total_flits_ejected() > first
        for generator in network.generators:
            generator.rate_packets_per_cycle = 0.0
        for _ in range(6000):
            network.step()
            if network.drained():
                break
        assert network.drained()
        network.check_conservation()

    def test_ring_pressure_drains(self):
        """Adversarial ring traffic: every node sends halfway around its
        row, maximising wrap-link contention."""
        network = torus_network(vcs=2, radix=4)
        torus = network.mesh
        packets = []
        for node in torus.nodes():
            x, y = torus.coordinates(node)
            dst = torus.node_at((x + 2) % 4, y)
            for _ in range(6):
                packets.append(send(network, node, dst))
        network.run(4000)
        assert all(p.ejection_cycle is not None for p in packets)


class TestDatelineInvariant:
    def test_flits_use_class1_after_crossing(self):
        """Reconstruct each flit's path from buffer-write events: within
        one dimension, once a wrap link is crossed every subsequent
        buffer in that dimension must be a class-1 VC."""
        network = torus_network(vcs=2, radix=4, load=0.4, seed=5)
        tracer = Tracer.attach(network)
        network.run(400)

        torus: Torus = network.mesh
        writes = {}
        for event in tracer.events_of_kind(EventKind.BUFFER_WRITE):
            writes.setdefault((event.packet_id, event.flit_index), []).append(event)

        checked = 0
        for events in writes.values():
            events.sort(key=lambda e: e.cycle)
            crossed_in_dim = {0: False, 1: False}
            previous = None
            for event in events:
                if event.port == LOCAL:
                    previous = event
                    continue
                dimension = port_dimension(event.port)
                if previous is not None and previous.port != LOCAL:
                    if port_dimension(previous.port) != dimension:
                        crossed_in_dim[dimension] = False
                # arriving via `event.port` means the link left the
                # upstream node via the opposite port; wrap detection:
                upstream = torus.neighbor(event.node, event.port)
                from repro.sim.topology import OPPOSITE

                if torus.is_wrap_link(upstream, OPPOSITE[event.port]):
                    crossed_in_dim[dimension] = True
                if crossed_in_dim[dimension]:
                    assert vc_class(event.vc, 2) == 1, event
                    checked += 1
                previous = event
        assert checked > 10  # the invariant was actually exercised


class TestO1TurnNetwork:
    def test_delivery(self):
        network = Network(SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=4, mesh_radix=4, injection_fraction=0.0,
            routing_function="o1turn",
        ))
        packets = [send(network, 0, 15), send(network, 15, 0),
                   send(network, 3, 12), send(network, 12, 3)]
        network.run(300)
        assert all(p.ejection_cycle is not None for p in packets)

    def test_vc_classes_respected(self):
        network = Network(SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2,
            buffers_per_vc=4, mesh_radix=4, injection_fraction=0.35,
            routing_function="o1turn", seed=2,
        ))
        tracer = Tracer.attach(network)
        network.run(400)
        checked = 0
        for event in tracer.events_of_kind(EventKind.BUFFER_WRITE):
            if event.port == LOCAL:
                continue  # injection VC is chosen by the source
            packet = None
            # recover the packet's committed order from its id hash
            class _P:  # minimal shim carrying the id
                packet_id = event.packet_id
            expected = 1 if o1turn_choice(_P) == "yx" else 0
            assert vc_class(event.vc, 2) == expected, event
            checked += 1
        assert checked > 50

    def test_o1turn_helps_transpose(self):
        """The point of per-packet XY/YX: transpose traffic no longer
        concentrates on one diagonal's worth of channels."""
        latencies = {}
        for routing in ("xy", "o1turn"):
            network = Network(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, mesh_radix=8, injection_fraction=0.40,
                traffic_pattern="transpose", routing_function=routing,
                seed=2,
            ))
            network.run(3000)
            delivered = [p for sink in network.sinks for p in sink.delivered]
            assert delivered
            latencies[routing] = sum(p.latency for p in delivered) / len(delivered)
        assert latencies["o1turn"] < latencies["xy"]
