"""Unit tests for the injection sources and ejection sinks."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network, Sink, Source
from repro.sim.topology import LOCAL


def network_and_router(vcs=2, kind=RouterKind.VIRTUAL_CHANNEL):
    network = Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=4,
        injection_fraction=0.0,
    ))
    return network, network.routers[0]


def packet(dst=1, length=5):
    return Packet(source=0, destination=dst, length=length, creation_cycle=0)


class TestSource:
    def test_injects_one_flit_per_cycle(self):
        network, router = network_and_router()
        source = network.sources[0]
        source.enqueue(packet(length=5))
        injected = [source.inject(router, c) for c in range(3)]
        assert all(f is not None for f in injected)
        assert [f.index for f in injected] == [0, 1, 2]

    def test_respects_buffer_credits(self):
        network, router = network_and_router()
        source = network.sources[0]
        source.enqueue(packet(length=10))
        flits = [source.inject(router, c) for c in range(6)]
        # capacity 4 per VC: the fifth attempt stalls
        assert [f is not None for f in flits] == [True] * 4 + [False, False]

    def test_credit_restore_resumes(self):
        network, router = network_and_router()
        source = network.sources[0]
        source.enqueue(packet(length=6))
        for c in range(4):
            source.inject(router, c)
        assert source.inject(router, 4) is None
        # the router drains one flit and hands the credit back
        router.input_vcs[LOCAL][0].buffer.pop()
        source.restore_credit(0)
        assert source.inject(router, 5) is not None

    def test_two_packets_use_distinct_vcs(self):
        network, router = network_and_router()
        source = network.sources[0]
        source.enqueue(packet(length=8))
        source.enqueue(packet(dst=2, length=8))
        vcids = set()
        for c in range(8):
            flit = source.inject(router, c)
            if flit is not None:
                vcids.add(flit.vcid)
        assert vcids == {0, 1}  # round-robin interleaves the streams

    def test_wormhole_source_single_stream(self):
        network, router = network_and_router(vcs=1, kind=RouterKind.WORMHOLE)
        source = network.sources[0]
        source.enqueue(packet(length=3))
        source.enqueue(packet(dst=2, length=3))
        order = []
        for c in range(10):
            flit = source.inject(router, c)
            if flit is not None:
                order.append((flit.packet.packet_id, flit.index))
                # free the slot again so injection continues
                router.input_vcs[LOCAL][0].buffer.pop()
                source.restore_credit(0)
        # strictly one packet after the other, flits in order
        first = order[0][0]
        boundary = max(i for i, (pid, _) in enumerate(order) if pid == first)
        assert all(pid == first for pid, _ in order[: boundary + 1])
        assert [idx for _, idx in order[: boundary + 1]] == [0, 1, 2]

    def test_backlog_accounting(self):
        network, router = network_and_router()
        source = network.sources[0]
        source.enqueue(packet(length=5))
        source.enqueue(packet(dst=2, length=5))
        assert source.backlog_flits == 10
        source.inject(router, 0)
        assert source.backlog_flits == 9
        assert source.queued_packets == 2

    def test_empty_source_injects_nothing(self):
        network, router = network_and_router()
        assert network.sources[0].inject(router, 0) is None


class TestSink:
    def test_counts_flits_and_packets(self):
        sink = Sink(node=1)
        flits = packet(length=3).make_flits()
        for cycle, flit in enumerate(flits):
            sink.accept(flit, cycle)
        assert sink.flits_ejected == 3
        assert sink.packets_ejected == 1
        assert sink.delivered[0].ejection_cycle == 2

    def test_measured_counter(self):
        sink = Sink(node=1)
        measured = packet(length=1)
        unmeasured = packet(length=1)
        unmeasured.measured = False
        sink.accept(measured.make_flits()[0], 0)
        sink.accept(unmeasured.make_flits()[0], 1)
        assert sink.packets_ejected == 2
        assert sink.measured_ejected == 1

    def test_wrong_destination_raises(self):
        sink = Sink(node=9)
        with pytest.raises(AssertionError):
            sink.accept(packet(dst=1, length=1).make_flits()[0], 0)
