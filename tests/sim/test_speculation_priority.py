"""Tests for the speculation-priority knob (conservative vs equal)."""

import pytest

from repro.sim.allocators import Request, SpeculativeSwitchAllocator
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

FAST = MeasurementConfig(
    warmup_cycles=150, sample_packets=200, max_cycles=8_000,
    drain_cycles=2_500,
)


class TestEqualPriorityAllocator:
    def test_unknown_priority_rejected(self):
        with pytest.raises(ValueError):
            SpeculativeSwitchAllocator(2, 2, priority="psychic")

    def test_equal_mode_lets_speculation_win_conflicts(self):
        """Under equal priority a speculative request CAN beat a
        non-speculative one for the same output -- the hazard the
        paper's combiner exists to prevent."""
        allocator = SpeculativeSwitchAllocator(2, 2, priority="equal")
        spec_won = nonspec_won = 0
        for _ in range(20):
            nonspec, spec = allocator.allocate(
                nonspec_requests=[Request(0, 0, 1)],
                spec_requests=[Request(1, 0, 1)],
            )
            spec_won += len(spec)
            nonspec_won += len(nonspec)
        assert spec_won > 0
        assert nonspec_won > 0

    def test_conservative_mode_never_lets_speculation_win_conflicts(self):
        allocator = SpeculativeSwitchAllocator(2, 2, priority="conservative")
        for _ in range(20):
            nonspec, spec = allocator.allocate(
                nonspec_requests=[Request(0, 0, 1)],
                spec_requests=[Request(1, 0, 1)],
            )
            assert len(nonspec) == 1
            assert spec == []

    def test_equal_mode_grants_remain_a_matching(self):
        allocator = SpeculativeSwitchAllocator(3, 2, priority="equal")
        nonspec, spec = allocator.allocate(
            [Request(0, 0, 0), Request(1, 0, 1)],
            [Request(2, 0, 0), Request(2, 1, 2)],
        )
        grants = nonspec + spec
        assert len({g.group for g in grants}) == len(grants)
        assert len({g.resource for g in grants}) == len(grants)


class TestPriorityEndToEnd:
    def test_config_knob_validated(self):
        with pytest.raises(ValueError):
            SimConfig(speculation_priority="sometimes")

    def test_both_modes_simulate(self):
        for priority in ("conservative", "equal"):
            result = simulate(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, mesh_radix=4, injection_fraction=0.3,
                speculation_priority=priority, seed=4,
            ), FAST)
            assert not result.saturated

    def test_conservative_no_worse_under_load(self):
        """The paper's claim: prioritising non-speculative requests means
        speculation never hurts.  Equal priority should never beat it by
        more than noise."""
        latencies = {}
        for priority in ("conservative", "equal"):
            result = simulate(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, mesh_radix=8, injection_fraction=0.5,
                speculation_priority=priority, seed=4,
            ), FAST)
            latencies[priority] = result.average_latency
        assert latencies["conservative"] <= latencies["equal"] * 1.05
