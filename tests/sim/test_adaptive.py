"""Tests for minimal adaptive routing with Duato escape VCs (footnote 5)."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.dateline import AdaptiveEscapeVCs
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.routing import dimension_order_route, productive_ports
from repro.sim.topology import EAST, LOCAL, Mesh, SOUTH, Torus, WEST


def adaptive_network(kind=RouterKind.SPECULATIVE_VC, vcs=2, radix=4,
                     load=0.0, bufs=4, seed=0, **kw):
    return Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=radix, buffers_per_vc=bufs,
        injection_fraction=load, routing_function="adaptive", seed=seed, **kw,
    ))


def send(network, src, dst, length=5):
    packet = Packet(source=src, destination=dst, length=length,
                    creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestProductivePorts:
    mesh = Mesh(4)

    def test_two_dimensions_give_two_ports(self):
        ports = productive_ports(self.mesh, 0, 5)  # (0,0) -> (1,1)
        assert set(ports) == {EAST, SOUTH}

    def test_one_dimension_gives_one_port(self):
        assert productive_ports(self.mesh, 0, 3) == [EAST]
        assert productive_ports(self.mesh, 3, 0) == [WEST]

    def test_destination_gives_local(self):
        assert productive_ports(self.mesh, 5, 5) == [LOCAL]

    def test_all_productive_ports_are_minimal(self):
        for src in self.mesh.nodes():
            for dst in self.mesh.nodes():
                if src == dst:
                    continue
                for port in productive_ports(self.mesh, src, dst):
                    neighbor = self.mesh.neighbor(src, port)
                    assert (
                        self.mesh.hop_distance(neighbor, dst)
                        == self.mesh.hop_distance(src, dst) - 1
                    )

    def test_dor_port_always_productive(self):
        for src in self.mesh.nodes():
            for dst in self.mesh.nodes():
                if src == dst:
                    continue
                dor = dimension_order_route(self.mesh, src, dst)
                assert dor in productive_ports(self.mesh, src, dst)


class TestEscapePolicy:
    def test_requires_two_vcs(self):
        with pytest.raises(ValueError):
            AdaptiveEscapeVCs(1)

    def test_escape_only_on_dor_port(self):
        policy = AdaptiveEscapeVCs(3)
        mesh = Mesh(4)
        head = Packet(source=0, destination=5, length=1,
                      creation_cycle=0).make_flits()[0]
        # from node 0 to node 5, DOR port is EAST; SOUTH is the adaptive
        # alternative.
        east = policy.allowed_vcs(mesh, 0, LOCAL, 0, EAST, head)
        south = policy.allowed_vcs(mesh, 0, LOCAL, 0, SOUTH, head)
        assert 0 in east
        assert 0 not in south
        assert set(south) == {1, 2}

    def test_ejection_unrestricted(self):
        policy = AdaptiveEscapeVCs(2)
        head = Packet(source=0, destination=5, length=1,
                      creation_cycle=0).make_flits()[0]
        assert set(policy.allowed_vcs(Mesh(4), 5, EAST, 0, LOCAL, head)) == {0, 1}


class TestConfigGuards:
    def test_adaptive_needs_vcs(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.WORMHOLE,
                      routing_function="adaptive")

    def test_adaptive_mesh_only(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=4,
                      routing_function="adaptive", topology="torus")


class TestAdaptiveNetwork:
    def test_delivery_all_pairs(self):
        network = adaptive_network(radix=3)
        packets = [
            send(network, src, dst)
            for src in range(9) for dst in range(9) if src != dst
        ]
        network.run(2500)
        assert all(p.ejection_cycle is not None for p in packets)

    def test_zero_load_latency_unchanged(self):
        """Adaptivity must not cost latency when the network is empty."""
        network = adaptive_network(bufs=8)
        packet = send(network, 0, 15)  # 6 minimal hops
        network.run(100)
        assert packet.latency == 4 * 6 + 8

    def test_heavy_load_drains(self):
        """Escape VCs + reiteration keep adaptive routing deadlock-free."""
        network = adaptive_network(
            kind=RouterKind.VIRTUAL_CHANNEL, vcs=3, bufs=2, load=0.6, seed=3
        )
        network.run(1200)
        for generator in network.generators:
            generator.rate_packets_per_cycle = 0.0
        for _ in range(9000):
            network.step()
            if network.drained():
                break
        assert network.drained()
        network.check_conservation()

    def test_reroutes_happen_under_contention(self):
        network = adaptive_network(
            kind=RouterKind.VIRTUAL_CHANNEL, vcs=2, bufs=2, load=0.7, seed=1
        )
        network.run(800)
        assert sum(r.stats.reroutes for r in network.routers) > 0

    def test_no_reroutes_in_empty_network(self):
        network = adaptive_network(bufs=8)
        send(network, 0, 15)
        network.run(100)
        assert sum(r.stats.reroutes for r in network.routers) == 0

    def test_adaptive_beats_xy_on_transpose(self):
        latencies = {}
        for routing in ("xy", "adaptive"):
            network = Network(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, mesh_radix=8, injection_fraction=0.40,
                traffic_pattern="transpose", routing_function=routing,
                seed=2,
            ))
            network.run(3000)
            delivered = [p for sink in network.sinks for p in sink.delivered]
            assert delivered
            latencies[routing] = sum(p.latency for p in delivered) / len(delivered)
        assert latencies["adaptive"] < 0.6 * latencies["xy"]

    def test_paths_remain_minimal(self):
        """Minimal adaptive: every delivered packet's latency matches a
        minimal-path traversal (no detours at low load)."""
        network = adaptive_network(radix=4, bufs=8, load=0.1, seed=4)
        network.run(600)
        mesh = network.mesh
        delivered = [p for sink in network.sinks for p in sink.delivered]
        assert len(delivered) > 10
        for packet in delivered:
            hops = mesh.hop_distance(packet.source, packet.destination)
            minimum = 4 * hops + 8
            assert packet.latency >= minimum
