"""Tests for the network snapshot/debug utilities and latency breakdown."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.snapshot import busiest_routers, describe_router, occupancy_map


def make_network(load=0.0, kind=RouterKind.SPECULATIVE_VC, vcs=2, seed=1):
    return Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=4,
        injection_fraction=load, seed=seed,
    ))


class TestOccupancyMap:
    def test_idle_network_all_empty(self):
        text = occupancy_map(make_network())
        assert text.count(".") >= 16

    def test_loaded_network_shows_fills(self):
        network = make_network(load=0.6, seed=2)
        network.run(300)
        text = occupancy_map(network)
        assert any(glyph in text for glyph in "-+#@")

    def test_grid_shape(self):
        lines = occupancy_map(make_network()).splitlines()
        grid = [l for l in lines if set(l.replace(" ", "")) <= set(".-+#@")]
        assert len(grid) == 4
        assert all(len(row.split()) == 4 for row in grid)


class TestDescribeRouter:
    def test_idle_router(self):
        network = make_network()
        assert "(idle)" in describe_router(network.routers[5])

    def test_active_router_lists_vcs(self):
        network = make_network()
        packet = Packet(source=0, destination=3, length=5, creation_cycle=0)
        network.sources[0].enqueue(packet)
        network.run(2)
        text = describe_router(network.routers[0])
        assert "local" in text
        assert "buffered=" in text

    def test_wormhole_held_ports_shown(self):
        network = make_network(kind=RouterKind.WORMHOLE, vcs=1)
        packet = Packet(source=0, destination=3, length=10, creation_cycle=0)
        network.sources[0].enqueue(packet)
        network.run(5)
        assert "held ports" in describe_router(network.routers[0])


class TestBusiestRouters:
    def test_returns_requested_count_sorted(self):
        network = make_network(load=0.5, seed=3)
        network.run(200)
        top = busiest_routers(network, count=3)
        assert len(top) == 3
        fills = [r.buffered_flits() for r in top]
        assert fills == sorted(fills, reverse=True)


class TestLatencyBreakdown:
    def test_zero_load_has_no_queueing(self):
        network = make_network()
        packet = Packet(source=0, destination=3, length=5, creation_cycle=0)
        network.sources[0].enqueue(packet)
        network.run(80)
        assert packet.queueing_latency == 0
        assert packet.network_latency == packet.latency

    def test_backlog_shows_as_queueing(self):
        network = make_network()
        first = Packet(source=0, destination=3, length=5, creation_cycle=0)
        second = Packet(source=0, destination=2, length=5, creation_cycle=0)
        network.sources[0].enqueue(first)
        network.sources[0].enqueue(second)
        network.run(120)
        # both VCs available: second starts on the other VC immediately
        assert second.queueing_latency <= 1
        # wormhole: strictly serialized behind the first packet
        network = make_network(kind=RouterKind.WORMHOLE, vcs=1)
        first = Packet(source=0, destination=3, length=5, creation_cycle=0)
        second = Packet(source=0, destination=2, length=5, creation_cycle=0)
        network.sources[0].enqueue(first)
        network.sources[0].enqueue(second)
        network.run(120)
        assert second.queueing_latency >= 4
        assert (
            second.latency
            == second.queueing_latency + second.network_latency
        )

    def test_breakdown_requires_delivery(self):
        packet = Packet(source=0, destination=1, length=5, creation_cycle=0)
        with pytest.raises(ValueError):
            _ = packet.queueing_latency
        with pytest.raises(ValueError):
            _ = packet.network_latency
