"""Tests for the virtual cut-through router."""

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate
from repro.sim.flit import Packet
from repro.sim.network import Network

FAST = MeasurementConfig(
    warmup_cycles=150, sample_packets=200, max_cycles=8_000,
    drain_cycles=2_500,
)


def vct_network(radix=4, bufs=8, load=0.0, seed=0, length=5):
    return Network(SimConfig(
        router_kind=RouterKind.VIRTUAL_CUT_THROUGH, mesh_radix=radix,
        buffers_per_vc=bufs, injection_fraction=load, seed=seed,
        packet_length=length,
    ))


def send(network, src, dst, length=5):
    packet = Packet(source=src, destination=dst, length=length,
                    creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestVCTBasics:
    def test_requires_packet_sized_buffers(self):
        with pytest.raises(ValueError):
            vct_network(bufs=4, length=5)

    def test_zero_load_latency_matches_wormhole(self):
        # Same 3-stage datapath: (D+1)H + D + L.
        network = vct_network()
        packet = send(network, 0, 3)
        network.run(80)
        assert packet.latency == 4 * 3 + 8

    def test_delivery_under_load(self):
        network = vct_network(load=0.3, seed=5)
        network.run(500)
        for generator in network.generators:
            generator.rate_packets_per_cycle = 0.0
        for _ in range(3000):
            network.step()
            if network.drained():
                break
        assert network.drained()
        assert network.total_flits_injected() == network.total_flits_ejected()

    def test_no_packet_spreading(self):
        """The defining VCT property: a packet's flits never straddle
        more than two routers' buffers plus the wire (the whole packet
        was admitted downstream before its head advanced)."""
        network = vct_network(load=0.45, seed=7)
        violations = []
        for _ in range(400):
            network.step()
            # count routers holding flits of each packet
            holders = {}
            for router in network.routers:
                for port_vcs in router.input_vcs:
                    for ivc in port_vcs:
                        for flit in ivc.buffer:
                            holders.setdefault(
                                flit.packet.packet_id, set()
                            ).add(router.node)
            for packet_id, nodes in holders.items():
                if len(nodes) > 2:
                    violations.append((packet_id, nodes))
        assert not violations

    def test_wormhole_does_spread(self):
        """Contrast: wormhole packets with small buffers straddle many
        routers under congestion."""
        network = Network(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=2,
            injection_fraction=0.6, seed=7, packet_length=8,
        ))
        max_spread = 0
        for _ in range(400):
            network.step()
            holders = {}
            for router in network.routers:
                for port_vcs in router.input_vcs:
                    for ivc in port_vcs:
                        for flit in ivc.buffer:
                            holders.setdefault(
                                flit.packet.packet_id, set()
                            ).add(router.node)
            for nodes in holders.values():
                max_spread = max(max_spread, len(nodes))
        assert max_spread >= 3

    def test_head_waits_for_whole_packet_space(self):
        """A head with some but insufficient downstream credit stalls."""
        network = vct_network(bufs=8)
        router = network.routers[0]
        from repro.sim.topology import EAST

        counter = router.output_vcs[EAST][0].credits
        for _ in range(4):
            counter.consume()  # leave 4 < packet length 5
        packet = send(network, 0, 2, length=5)
        network.run(40)
        assert packet.ejection_cycle is None
        assert router.stats.credits_stalled > 0
        # restoring space releases it
        for _ in range(4):
            counter.restore()
        network.run(60)
        assert packet.ejection_cycle is not None


class TestVCTPerformance:
    def latency(self, kind, bufs, load):
        return simulate(SimConfig(
            router_kind=kind, mesh_radix=8, buffers_per_vc=bufs,
            injection_fraction=load, seed=3,
        ), FAST).average_latency

    def test_vct_matches_wormhole_with_ample_buffers(self):
        """With deep buffers the whole-packet admission rarely binds and
        VCT tracks wormhole closely."""
        wormhole = self.latency(RouterKind.WORMHOLE, 24, 0.55)
        vct = self.latency(RouterKind.VIRTUAL_CUT_THROUGH, 24, 0.55)
        assert vct <= wormhole * 1.10

    def test_vct_pays_admission_cost_with_tight_buffers(self):
        """With buffers barely above the packet size, requiring a whole
        packet's worth of space stalls heads that wormhole would trickle
        forward -- the flow-control/buffer-sizing interaction the
        Related Work models disagree about."""
        wormhole = self.latency(RouterKind.WORMHOLE, 8, 0.45)
        vct = self.latency(RouterKind.VIRTUAL_CUT_THROUGH, 8, 0.45)
        assert vct > wormhole * 1.2
