"""Tests for the pipelined flit/credit channels."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.channel import PipelinedChannel


class TestPipelinedChannel:
    def test_delivery_after_delay_plus_one(self):
        channel = PipelinedChannel(1)
        channel.send("x", cycle=5)
        assert channel.deliver(6) == ()
        assert channel.deliver(7) == ["x"]

    def test_zero_delay_delivers_next_cycle(self):
        channel = PipelinedChannel(0)
        channel.send("x", cycle=3)
        assert channel.deliver(3) == ()
        assert channel.deliver(4) == ["x"]

    def test_items_preserve_order(self):
        channel = PipelinedChannel(1)
        for cycle, item in enumerate("abc"):
            channel.send(item, cycle)
        assert channel.deliver(10) == ["a", "b", "c"]

    def test_partial_delivery(self):
        channel = PipelinedChannel(0)
        channel.send("a", 0)
        channel.send("b", 5)
        assert channel.deliver(1) == ["a"]
        assert channel.deliver(5) == ()
        assert channel.deliver(6) == ["b"]

    def test_multiple_items_same_cycle(self):
        channel = PipelinedChannel(2)
        channel.send("a", 0)
        channel.send("b", 0)
        assert channel.deliver(3) == ["a", "b"]

    def test_occupancy(self):
        channel = PipelinedChannel(3)
        assert channel.occupancy == 0
        channel.send("a", 0)
        assert channel.occupancy == 1
        assert bool(channel)
        channel.deliver(4)
        assert channel.occupancy == 0
        assert not channel

    def test_peek_all(self):
        channel = PipelinedChannel(1)
        channel.send("a", 0)
        channel.send("b", 1)
        assert channel.peek_all() == ["a", "b"]

    def test_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            PipelinedChannel(-1)

    def test_rejects_time_travel(self):
        channel = PipelinedChannel(0)
        channel.send("a", 10)
        with pytest.raises(ValueError):
            channel.send("b", 3)

    @given(
        st.integers(min_value=0, max_value=5),
        st.lists(st.integers(min_value=0, max_value=30), max_size=20),
    )
    def test_every_item_arrives_exactly_once(self, delay, send_cycles):
        channel = PipelinedChannel(delay)
        for i, cycle in enumerate(sorted(send_cycles)):
            channel.send(i, cycle)
        received = []
        for cycle in range(40 + delay):
            received.extend(channel.deliver(cycle))
        assert received == list(range(len(send_cycles)))
        assert channel.occupancy == 0

    @given(st.integers(min_value=0, max_value=5))
    def test_arrival_cycle_exact(self, delay):
        channel = PipelinedChannel(delay)
        channel.send("x", 7)
        arrival = 7 + delay + 1
        assert channel.deliver(arrival - 1) == ()
        assert channel.deliver(arrival) == ["x"]
