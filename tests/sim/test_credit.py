"""Tests for credit counters and the Figure 16 turnaround accounting."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.credit import (
    CreditCounter,
    CreditLoopTiming,
    InfiniteCredits,
    NONSPECULATIVE_VC_TIMING,
    SINGLE_CYCLE_TIMING,
    SPECULATIVE_VC_SLOW_CREDIT_TIMING,
    SPECULATIVE_VC_TIMING,
    WORMHOLE_TIMING,
    turnaround_cycles,
    turnaround_timeline,
)


class TestCreditCounter:
    def test_starts_full(self):
        assert CreditCounter(4).available == 4

    def test_consume_restore(self):
        counter = CreditCounter(2)
        counter.consume()
        assert counter.available == 1
        counter.restore()
        assert counter.available == 2

    def test_underflow_raises(self):
        counter = CreditCounter(1)
        counter.consume()
        with pytest.raises(ValueError):
            counter.consume()

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            CreditCounter(1).restore()

    def test_bool(self):
        counter = CreditCounter(1)
        assert counter
        counter.consume()
        assert not counter

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CreditCounter(0)

    @given(st.lists(st.booleans(), max_size=100))
    def test_never_escapes_range(self, ops):
        counter = CreditCounter(3)
        for consume in ops:
            if consume and counter.available > 0:
                counter.consume()
            elif not consume and counter.available < 3:
                counter.restore()
            assert 0 <= counter.available <= 3


class TestInfiniteCredits:
    def test_always_available(self):
        credits = InfiniteCredits()
        for _ in range(1000):
            credits.consume()
        assert credits

    def test_restore_noop(self):
        credits = InfiniteCredits()
        credits.restore()
        assert credits


class TestTurnaround:
    """The Section 5.2 / Figure 16 turnaround accounting."""

    def test_wormhole_turnaround_is_4(self):
        assert WORMHOLE_TIMING.turnaround == 4

    def test_speculative_vc_turnaround_is_4(self):
        assert SPECULATIVE_VC_TIMING.turnaround == 4

    def test_nonspeculative_vc_turnaround_is_5(self):
        assert NONSPECULATIVE_VC_TIMING.turnaround == 5

    def test_single_cycle_turnaround_is_2(self):
        # "In a single-cycle router, a credit can be sent and received in
        # 2 cycles."
        assert SINGLE_CYCLE_TIMING.turnaround == 2

    def test_slow_credit_turnaround_is_7(self):
        # Figure 18: 4-cycle credit propagation -> 7 cycles.
        assert SPECULATIVE_VC_SLOW_CREDIT_TIMING.turnaround == 7

    def test_turnaround_cycles_helper(self):
        assert turnaround_cycles(credit_pipeline=1, flit_pipeline=1) == 4
        assert turnaround_cycles(credit_pipeline=2, flit_pipeline=1) == 5

    def test_timeline_is_monotone_and_complete(self):
        events = turnaround_timeline(WORMHOLE_TIMING)
        offsets = [offset for offset, _ in events]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0
        assert offsets[-1] == WORMHOLE_TIMING.turnaround
        assert len(events) == 5

    def test_negative_component_rejected(self):
        with pytest.raises(ValueError):
            CreditLoopTiming(-1, 0, 0, 0)

    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
    )
    def test_turnaround_is_component_sum(self, a, b, c, d):
        assert CreditLoopTiming(a, b, c, d).turnaround == a + b + c + d
