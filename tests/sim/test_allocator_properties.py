"""Seeded property tests: arbiters and allocators over random inputs.

Grant legality (a valid matching, every grant answering a real request)
must hold for *every* request pattern, not just the structured ones the
routers produce -- so these tests drive the allocators with seeded
random request sets.  The arbiter tests pin the matrix arbiter's
least-recently-served discipline: exact fairness under full contention
and a hard starvation bound under arbitrary contention.
"""

import random

import pytest

from repro.sim.allocators import (
    Grant,
    Request,
    SeparableAllocator,
    SpeculativeSwitchAllocator,
    grant_conflicts,
)
from repro.sim.arbiters import MatrixArbiter, RoundRobinArbiter
from repro.sim.matching import make_allocator

GROUPS, MEMBERS, RESOURCES = 5, 4, 5
ROUNDS = 200


def random_requests(rng, *, density=0.4):
    """One request per (group, member) with probability ``density``."""
    return [
        Request(group, member, rng.randrange(RESOURCES))
        for group in range(GROUPS)
        for member in range(MEMBERS)
        if rng.random() < density
    ]


def assert_legal(requests, grants):
    request_keys = {(r.group, r.member, r.resource) for r in requests}
    for grant in grants:
        assert (grant.group, grant.member, grant.resource) in request_keys
    assert grant_conflicts(grants) == []


class TestSeparableAllocatorProperties:
    @pytest.mark.parametrize("arbiter_kind", ["matrix", "round_robin"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_grants_always_legal(self, seed, arbiter_kind):
        rng = random.Random(seed)
        allocator = SeparableAllocator(
            GROUPS, MEMBERS, RESOURCES, arbiter_kind
        )
        for _ in range(ROUNDS):
            requests = random_requests(rng)
            assert_legal(requests, allocator.allocate(requests))

    @pytest.mark.parametrize("seed", [4, 5])
    def test_busy_resources_never_granted(self, seed):
        rng = random.Random(seed)
        allocator = SeparableAllocator(GROUPS, MEMBERS, RESOURCES)
        for _ in range(ROUNDS):
            requests = random_requests(rng)
            busy = [
                r for r in range(RESOURCES) if rng.random() < 0.3
            ]
            grants = allocator.allocate(requests, busy_resources=busy)
            assert_legal(requests, grants)
            assert not {g.resource for g in grants} & set(busy)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_maximum_matching_allocator_legal_and_no_smaller(self, seed):
        """The exact-matching ablation obeys the same legality rules and
        never finds a smaller matching than the separable allocator."""
        rng = random.Random(seed)
        separable = SeparableAllocator(GROUPS, MEMBERS, RESOURCES)
        maximum = make_allocator(
            "maximum", GROUPS, MEMBERS, RESOURCES, "matrix"
        )
        for _ in range(ROUNDS // 2):
            requests = random_requests(rng)
            separable_grants = separable.allocate(requests)
            maximum_grants = maximum.allocate(requests)
            assert_legal(requests, maximum_grants)
            assert len(maximum_grants) >= len(separable_grants)


class TestSpeculativeAllocatorProperties:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_combined_grants_legal_and_priority_respected(self, seed):
        rng = random.Random(seed)
        allocator = SpeculativeSwitchAllocator(GROUPS, MEMBERS)
        for _ in range(ROUNDS):
            nonspec = random_requests(rng, density=0.3)
            spec = random_requests(rng, density=0.3)
            nonspec_grants, spec_grants = allocator.allocate(nonspec, spec)
            assert_legal(nonspec, nonspec_grants)
            # Combined: still one grant per input and per output.
            assert grant_conflicts(nonspec_grants, spec_grants) == []
            # Conservative priority: speculation never touches an input
            # or output a non-speculative grant claimed.
            taken_inputs = {g.group for g in nonspec_grants}
            taken_outputs = {g.resource for g in nonspec_grants}
            for grant in spec_grants:
                assert grant.group not in taken_inputs
                assert grant.resource not in taken_outputs

    @pytest.mark.parametrize("seed", [4, 5])
    def test_equal_priority_still_forms_valid_matching(self, seed):
        rng = random.Random(seed)
        allocator = SpeculativeSwitchAllocator(
            GROUPS, MEMBERS, priority="equal"
        )
        for _ in range(ROUNDS):
            nonspec = random_requests(rng, density=0.3)
            spec = random_requests(rng, density=0.3)
            nonspec_grants, spec_grants = allocator.allocate(nonspec, spec)
            assert grant_conflicts(nonspec_grants, spec_grants) == []


class TestGrantConflictsHelper:
    def test_clean_sets_report_nothing(self):
        assert grant_conflicts([Grant(0, 0, 1), Grant(1, 0, 2)]) == []

    def test_duplicate_group_and_resource_reported(self):
        conflicts = grant_conflicts(
            [Grant(0, 0, 1)], [Grant(0, 1, 2), Grant(2, 0, 1)]
        )
        assert len(conflicts) == 2
        assert any("input group 0" in c for c in conflicts)
        assert any("resource 1" in c for c in conflicts)


class TestMatrixArbiterProperties:
    def test_full_contention_is_exactly_fair(self):
        """Least-recently-served under full contention degenerates to a
        strict rotation: counts over any multiple-of-n window are equal."""
        n = 6
        arbiter = MatrixArbiter(n)
        wins = [0] * n
        everyone = list(range(n))
        for _ in range(50 * n):
            wins[arbiter.arbitrate(everyone)] += 1
        assert max(wins) - min(wins) == 0

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_starvation_bound_under_random_contention(self, seed):
        """A requestor that keeps requesting loses at most n-1 rounds in
        a row: each loss strictly raises its priority rank."""
        n = 5
        rng = random.Random(seed)
        arbiter = MatrixArbiter(n)
        streak = 0
        for _ in range(400):
            requests = {0} | {
                i for i in range(1, n) if rng.random() < 0.7
            }
            winner = arbiter.arbitrate(sorted(requests))
            streak = 0 if winner == 0 else streak + 1
            assert streak <= n - 1
            assert arbiter.check_invariant()

    @pytest.mark.parametrize("seed", [5, 6])
    def test_winner_always_among_requests(self, seed):
        n = 7
        rng = random.Random(seed)
        arbiter = MatrixArbiter(n)
        for _ in range(300):
            requests = [i for i in range(n) if rng.random() < 0.5]
            winner = arbiter.arbitrate(requests)
            if requests:
                assert winner in requests
            else:
                assert winner is None

    def test_round_robin_starvation_bound(self):
        n = 5
        rng = random.Random(9)
        arbiter = RoundRobinArbiter(n)
        streak = 0
        for _ in range(400):
            requests = sorted(
                {0} | {i for i in range(1, n) if rng.random() < 0.7}
            )
            streak = 0 if arbiter.arbitrate(requests) == 0 else streak + 1
            assert streak <= n - 1
