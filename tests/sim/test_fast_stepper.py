"""The event-driven fast stepper must be bit-identical to the reference.

The fast stepper (``SimConfig.stepper="fast"``) replaces per-cycle
polling with an arrival event wheel, skips the phases of provably idle
routers, and fast-forwards non-firing constant-rate generators.  None
of that may change a single observable bit: these tests drive both
steppers over seeded random configurations (reusing the property-test
config generator) and over targeted edge cases, and diff everything
down to individual packet ids and ejection cycles.
"""

import itertools
import random
from dataclasses import replace

import pytest

import repro.sim.flit as flit_module
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator, simulate
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.snapshot import state_digest
from repro.sim.topology import Mesh
from repro.sim.traffic import PacketSource
from repro.sim.validation.proptest import CASE_MEASUREMENT, generate_cases

pytestmark = pytest.mark.sim


MEASUREMENT = MeasurementConfig(
    warmup_cycles=100, sample_packets=120, max_cycles=15_000,
    drain_cycles=8_000,
)


def run_both(config, measurement=MEASUREMENT):
    """Run a config under each stepper; return (fast, reference) pairs of
    (RunResult, per-sink delivery history)."""
    out = []
    for stepper in ("fast", "reference"):
        # Packet ids come from a module-global counter (and o1turn keys
        # routing off the id), so both sides must see the same sequence.
        flit_module._packet_ids = itertools.count()
        simulator = Simulator(replace(config, stepper=stepper), measurement)
        result = simulator.run()
        deliveries = [
            [
                (p.packet_id, p.source, p.destination, p.length,
                 p.creation_cycle, p.injection_cycle, p.ejection_cycle,
                 p.measured)
                for p in sink.delivered
            ]
            for sink in simulator.network.sinks
        ]
        out.append((result, deliveries))
    return out


class TestBitIdentity:
    @pytest.mark.parametrize("case", generate_cases(seed=21, count=6),
                             ids=lambda c: f"case{c.case_id}")
    def test_random_configs_identical(self, case):
        """Seeded random configs (every router kind / traffic pattern /
        injection process in the pool) are bit-identical across steppers."""
        (fast_result, fast_del), (ref_result, ref_del) = run_both(
            case.config, CASE_MEASUREMENT
        )
        assert fast_result == ref_result, (
            f"case {case.case_id}: fast {fast_result} "
            f"!= reference {ref_result}"
        )
        assert fast_del == ref_del

    @pytest.mark.parametrize("kind", list(RouterKind))
    def test_each_router_kind_identical(self, kind):
        config = SimConfig(
            router_kind=kind,
            mesh_radix=4,
            num_vcs=2 if kind.uses_vcs else 1,
            # VCT needs a whole packet (5 flits) per buffer.
            buffers_per_vc=5,
            injection_fraction=0.25,
            seed=5,
        )
        (fast_result, fast_del), (ref_result, ref_del) = run_both(config)
        assert fast_result == ref_result
        assert fast_del == ref_del

    def test_maximum_matching_allocator_identical(self):
        """The maximum-matching allocator is pure on empty request
        sets (its rotation only advances on nonempty input), so its
        routers sleep and wake like any other; the batched bitmask
        kernel must stay bit-identical through that."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=4,
            injection_fraction=0.15, seed=9,
            allocator_kind="maximum",
        )
        (fast_result, fast_del), (ref_result, ref_del) = run_both(config)
        assert fast_result == ref_result
        assert fast_del == ref_del

    def test_checked_mode_on_fast_stepper(self):
        """Invariant probes attach to and pass on the fast stepper, and
        the checked run is bit-equal to the unchecked one."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=4,
            injection_fraction=0.2, seed=3, stepper="fast",
        )
        unchecked = simulate(config, MEASUREMENT)
        checked = simulate(config, MEASUREMENT, checked=True)
        assert checked.validation is not None
        assert checked.validation["ok"], checked.validation["violations"]
        assert checked == unchecked


def run_network_pair(config, cycles):
    """Step both steppers for ``cycles`` raw cycles and return, per
    stepper, every observable: aggregate counters, per-router stats,
    per-sink delivery order, and the full microarchitectural state
    digest.  Unlike :func:`run_both` this never waits for drain, so it
    can hold a network *past* saturation for a fixed horizon."""
    out = []
    for stepper in ("fast", "reference"):
        flit_module._packet_ids = itertools.count()
        network = Network(replace(config, stepper=stepper))
        network.run(cycles)
        stats = tuple(
            (r.stats.flits_received, r.stats.flits_forwarded,
             r.stats.packets_routed, r.stats.spec_grants,
             r.stats.spec_wasted, r.stats.credits_stalled,
             r.stats.sa_grants, r.stats.reroutes)
            for r in network.routers
        )
        out.append({
            "generated": network.packets_generated,
            "injected": network.total_flits_injected(),
            "ejected": network.total_flits_ejected(),
            "router_stats": stats,
            "deliveries": [
                [p.packet_id for p in sink.delivered]
                for sink in network.sinks
            ],
            "digest": state_digest(network),
        })
    return out


class TestHighLoadBattery:
    """Saturation-regime differential battery.

    The specialized steppers exist *for* the high-load regime, so this
    is where they must be provably bit-identical: every router kind, on
    mesh and torus, at loads from moderate through past saturation
    (0.5 > the speculative router's ~0.45 saturation throughput), over
    horizons long enough for buffers to fill, wormhole trees to block,
    and every allocator code path (singleton and contended, stage 1 and
    stage 2) to run many times.  Comparison is total: aggregate
    counters, per-router stats, per-sink delivery order, and the
    :func:`state_digest` of all buffered/in-flight state.
    """

    @pytest.mark.parametrize("kind", list(RouterKind))
    @pytest.mark.parametrize("load", [0.3, 0.42, 0.5])
    def test_every_kind_under_load_mesh(self, kind, load):
        config = SimConfig(
            router_kind=kind,
            mesh_radix=4,
            num_vcs=2 if kind.uses_vcs else 1,
            buffers_per_vc=5,  # VCT needs a whole packet per buffer
            injection_fraction=load,
            seed=11,
        )
        fast, reference = run_network_pair(config, 800)
        assert fast == reference
        assert fast["ejected"] > 0

    @pytest.mark.parametrize("kind", [
        RouterKind.SPECULATIVE_VC,
        RouterKind.VIRTUAL_CHANNEL,
        RouterKind.SINGLE_CYCLE_VC,
    ])
    @pytest.mark.parametrize("load", [0.42, 0.5])
    def test_torus_under_load(self, kind, load):
        # Only VC routers are legal on a torus (dateline classes break
        # the ring cycles), so the torus grid covers the VC family.
        config = SimConfig(
            router_kind=kind,
            mesh_radix=4,
            num_vcs=2,
            buffers_per_vc=5,
            injection_fraction=load,
            seed=17,
            topology="torus",
        )
        fast, reference = run_network_pair(config, 800)
        assert fast == reference
        assert fast["ejected"] > 0

    # The specialization-envelope grid: every config dimension that
    # previously fell back to the generic path, driven across the VC
    # family (the dimensions are VC-family concepts; wormhole kinds
    # have no VC/spec allocators to vary).
    ENVELOPE = [
        ("maximum", dict(allocator_kind="maximum")),
        ("o1turn", dict(routing_function="o1turn")),
        ("adaptive", dict(routing_function="adaptive")),
    ]

    @pytest.mark.parametrize("kind", [
        RouterKind.SPECULATIVE_VC,
        RouterKind.VIRTUAL_CHANNEL,
        RouterKind.SINGLE_CYCLE_VC,
    ])
    @pytest.mark.parametrize("override",
                             [o for _, o in ENVELOPE],
                             ids=[name for name, _ in ENVELOPE])
    @pytest.mark.parametrize("load", [0.42, 0.5])
    def test_envelope_configs_under_load_mesh(self, kind, override, load):
        config = SimConfig(
            router_kind=kind,
            mesh_radix=4,
            num_vcs=2,
            buffers_per_vc=5,
            injection_fraction=load,
            seed=11,
            **override,
        )
        fast, reference = run_network_pair(config, 800)
        assert fast == reference
        assert fast["ejected"] > 0

    @pytest.mark.parametrize("override", [
        dict(speculation_priority="equal"),
        dict(speculation_priority="equal", allocator_kind="maximum"),
    ], ids=["equal", "equal-maximum"])
    @pytest.mark.parametrize("load", [0.42, 0.5])
    def test_equal_priority_under_load_mesh(self, override, load):
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=5,
            injection_fraction=load, seed=11,
            **override,
        )
        fast, reference = run_network_pair(config, 800)
        assert fast == reference
        assert fast["ejected"] > 0

    @pytest.mark.parametrize("override", [
        dict(allocator_kind="maximum"),
        dict(speculation_priority="equal"),
    ], ids=["maximum", "equal"])
    def test_envelope_configs_torus(self, override):
        # o1turn/adaptive are mesh-only; the allocator and priority
        # dimensions also hold on a torus (dateline VC classes).
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=5,
            injection_fraction=0.5, seed=17, topology="torus",
            **override,
        )
        fast, reference = run_network_pair(config, 800)
        assert fast == reference
        assert fast["ejected"] > 0

    def test_seeded_random_saturation_configs(self):
        """Randomized corner of the battery: seeded draws over router
        kind, topology, VC count, buffer depth, routing function,
        allocator kind and load in [0.3, 0.5], so coverage extends past
        the hand-picked grid without losing reproducibility."""
        rng = random.Random(0xC0FFEE)
        kinds = list(RouterKind)
        for case in range(10):
            kind = rng.choice(kinds)
            # Tori demand VC routers (dateline deadlock avoidance);
            # o1turn/adaptive demand VC routers on a mesh.
            topology = rng.choice(
                ("mesh", "torus") if kind.uses_vcs else ("mesh",)
            )
            if kind.uses_vcs and topology == "mesh":
                routing = rng.choice(("xy", "yx", "o1turn", "adaptive"))
            else:
                routing = rng.choice(("xy", "yx"))
            config = SimConfig(
                router_kind=kind,
                mesh_radix=4,
                num_vcs=rng.choice((2, 3, 4)) if kind.uses_vcs else 1,
                buffers_per_vc=rng.choice((5, 6, 8)),
                injection_fraction=round(rng.uniform(0.3, 0.5), 3),
                seed=rng.randrange(1_000_000),
                topology=topology,
                routing_function=routing,
                allocator_kind=rng.choice(
                    ("separable", "separable", "maximum")
                ),
            )
            fast, reference = run_network_pair(config, 600)
            assert fast == reference, f"case {case}: {config}"

    @pytest.mark.slow
    def test_long_horizon_past_saturation(self):
        """5000 cycles at offered load 0.5 -- deep inside saturation,
        where the source queues grow without bound and every buffer and
        arbiter is continuously contended."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=4,
            injection_fraction=0.5, seed=23,
        )
        fast, reference = run_network_pair(config, 5000)
        assert fast == reference
        # Sanity that the horizon really crossed saturation: offered
        # traffic outpaced deliveries.
        assert fast["generated"] * config.packet_length > fast["ejected"]

    def test_high_load_checked_run_is_clean(self):
        """Probes see no violations at load 0.5 on the fast stepper
        (which falls back to the generic path when checked -- this
        guards the *fallback* wiring under saturation stress)."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC,
            mesh_radix=4, num_vcs=2, buffers_per_vc=4,
            injection_fraction=0.5, seed=29, stepper="fast",
        )
        measurement = MeasurementConfig(
            warmup_cycles=100, sample_packets=40, max_cycles=2_000,
            drain_cycles=200,
        )
        result = simulate(config, measurement, checked=True)
        assert result.validation is not None
        assert result.validation["ok"], result.validation["violations"]


class TestGeneratorFastForward:
    def test_offer_horizon_matches_polling(self):
        """offer_horizon() == number of _offers_packet calls up to and
        including the firing one, and leaves the accumulator exactly
        where the reference's failing polls leave it."""
        for seed in range(10):
            for rate in (0.03, 0.17, 0.5, 0.99):
                polled = PacketSource(
                    node=0, mesh=Mesh(4), rate_packets_per_cycle=rate,
                    packet_length=5, rng=random.Random(seed),
                )
                jumped = PacketSource(
                    node=0, mesh=Mesh(4), rate_packets_per_cycle=rate,
                    packet_length=5, rng=random.Random(seed),
                )
                for _ in range(5):  # several consecutive inter-arrivals
                    k = jumped.offer_horizon()
                    calls = 0
                    while True:
                        calls += 1
                        if polled._offers_packet():
                            break
                    assert calls == k
                    # The crossing call itself must agree bit-for-bit.
                    assert jumped._offers_packet()
                    assert jumped._accumulator == polled._accumulator

    def test_offer_horizon_rejects_non_constant(self):
        source = PacketSource(
            node=0, mesh=Mesh(4), rate_packets_per_cycle=0.2,
            packet_length=5, rng=random.Random(0), process="bernoulli",
        )
        with pytest.raises(ValueError):
            source.offer_horizon()
        zero = PacketSource(
            node=0, mesh=Mesh(4), rate_packets_per_cycle=0.0,
            packet_length=5, rng=random.Random(0),
        )
        with pytest.raises(ValueError):
            zero.offer_horizon()

    def test_rate_change_mid_run_identical(self):
        """Tests flip rates mid-run in both directions; the cached
        offer horizons must recover bit-identically."""
        results = []
        for stepper in ("fast", "reference"):
            flit_module._packet_ids = itertools.count()
            config = SimConfig(
                router_kind=RouterKind.WORMHOLE, mesh_radix=4,
                num_vcs=1, buffers_per_vc=4, injection_fraction=0.0,
                seed=13, stepper=stepper,
            )
            network = Network(config)
            for _ in range(50):
                network.step()
            for generator in network.generators:
                generator.rate_packets_per_cycle = 0.3
            for _ in range(300):
                network.step()
            for generator in network.generators:
                generator.rate_packets_per_cycle = 0.0
            for _ in range(500):
                network.step()
            results.append((
                network.packets_generated,
                network.total_flits_injected(),
                network.total_flits_ejected(),
                network.drained(),
            ))
        assert results[0] == results[1]
        assert results[0][0] > 0


class TestActivityTracking:
    def test_idle_network_sleeps_and_wakes(self):
        """With nothing in flight every router goes inactive; a packet
        enqueued directly into a source wakes the path back up and is
        delivered."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4,
            num_vcs=2, buffers_per_vc=4, injection_fraction=0.0,
            seed=1, stepper="fast",
        )
        network = Network(config)
        for _ in range(30):
            network.step()
        assert all(not router.active for router in network.routers)

        packet = Packet(source=0, destination=15, length=5,
                        creation_cycle=network.cycle)
        network.sources[0].enqueue(packet)
        for _ in range(200):
            network.step()
            if network.sinks[15].delivered:
                break
        assert [p.packet_id for p in network.sinks[15].delivered] \
            == [packet.packet_id]
        assert network.drained()
        assert all(not router.active for router in network.routers)

    def test_maximum_matching_routers_sleep_and_wake(self):
        """The maximum matcher is pure on empty request sets, so its
        routers participate in activity-tracked sleeping; waking one up
        must leave it bit-identical to the reference stepper, which
        never slept (the allocator state a wake observes is the same as
        if the skipped empty allocate calls had been made)."""
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4,
            num_vcs=2, buffers_per_vc=4, injection_fraction=0.0,
            seed=1, allocator_kind="maximum",
        )
        results = []
        for stepper in ("fast", "reference"):
            flit_module._packet_ids = itertools.count()
            network = Network(replace(config, stepper=stepper))
            for _ in range(30):
                network.step()
            if stepper == "fast":
                assert all(not router.active for router in network.routers)
            packet = Packet(source=0, destination=15, length=5,
                            creation_cycle=network.cycle)
            network.sources[0].enqueue(packet)
            for _ in range(200):
                network.step()
            assert network.drained()
            results.append((
                [p.packet_id for p in network.sinks[15].delivered],
                state_digest(network),
            ))
        fast, reference = results
        assert fast == reference
        assert fast[0] == [0]

    def test_counters_match_physical_scan(self):
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4,
            num_vcs=2, buffers_per_vc=4, injection_fraction=0.3,
            seed=7, stepper="fast",
        )
        network = Network(config)
        for _ in range(400):
            network.step()
        # The incremental totals must agree with the physical scan:
        # injected == ejected + what is actually buffered or on wires.
        assert network.total_flits_injected() > 0
        network.check_conservation()


class TestStepperConfig:
    def test_unknown_stepper_rejected(self):
        with pytest.raises(ValueError, match="stepper"):
            SimConfig(
                router_kind=RouterKind.WORMHOLE, mesh_radix=4,
                num_vcs=1, injection_fraction=0.1, seed=1,
                stepper="asynchronous",
            )

    def test_reference_stepper_has_no_wheel(self):
        config = SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4, num_vcs=1,
            injection_fraction=0.1, seed=1, stepper="reference",
        )
        network = Network(config)
        assert network._wheel is None
