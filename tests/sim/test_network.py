"""Integration tests of the network: delivery, conservation, invariants."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.topology import Mesh

ALL_KINDS = [
    (RouterKind.WORMHOLE, 1),
    (RouterKind.VIRTUAL_CHANNEL, 2),
    (RouterKind.SPECULATIVE_VC, 2),
    (RouterKind.SINGLE_CYCLE_WORMHOLE, 1),
    (RouterKind.SINGLE_CYCLE_VC, 2),
]


def make_network(kind, vcs, radix=4, load=0.0, bufs=4, seed=3, **kw):
    config = SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=radix,
        buffers_per_vc=bufs, injection_fraction=load, seed=seed, **kw,
    )
    return Network(config)


def send_packet(network, src, dst, length=5):
    packet = Packet(source=src, destination=dst, length=length, creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestSinglePacketDelivery:
    @pytest.mark.parametrize("kind,vcs", ALL_KINDS)
    def test_packet_arrives(self, kind, vcs):
        network = make_network(kind, vcs)
        packet = send_packet(network, 0, 15)  # corner to corner, 6 hops
        network.run(100)
        assert packet.ejection_cycle is not None
        assert network.sinks[15].packets_ejected == 1

    @pytest.mark.parametrize("kind,vcs", ALL_KINDS)
    def test_single_hop(self, kind, vcs):
        network = make_network(kind, vcs)
        packet = send_packet(network, 0, 1)
        network.run(60)
        assert packet.ejection_cycle is not None

    def test_wormhole_latency_formula(self):
        # Pipelined latency: tail = 4H + 8 cycles for an H-hop path
        # (3-stage pipe + 1-cycle links, 5-flit packet, see DESIGN.md).
        network = make_network(RouterKind.WORMHOLE, 1, bufs=8)
        packet = send_packet(network, 0, 3)  # 3 hops east
        network.run(80)
        assert packet.latency == 4 * 3 + 8

    def test_vc_latency_formula(self):
        # 4-stage pipe: tail = 5H + 9.
        network = make_network(RouterKind.VIRTUAL_CHANNEL, 2, bufs=8)
        packet = send_packet(network, 0, 3)
        network.run(80)
        assert packet.latency == 5 * 3 + 9

    def test_spec_vc_matches_wormhole_latency(self):
        # The headline claim: per-hop latency equal to wormhole.
        spec = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=8)
        packet = send_packet(spec, 0, 3)
        spec.run(80)
        assert packet.latency == 4 * 3 + 8

    def test_single_cycle_latency_formula(self):
        # 1-stage pipe: tail = 2H + 6.
        network = make_network(RouterKind.SINGLE_CYCLE_WORMHOLE, 1, bufs=8)
        packet = send_packet(network, 0, 3)
        network.run(80)
        assert packet.latency == 2 * 3 + 6

    @pytest.mark.parametrize("kind,vcs", ALL_KINDS)
    def test_flit_count_preserved(self, kind, vcs):
        network = make_network(kind, vcs)
        send_packet(network, 5, 10, length=7)
        network.run(120)
        assert network.sinks[10].flits_ejected == 7

    @pytest.mark.parametrize("length", [1, 2, 5, 9])
    def test_various_packet_lengths(self, length):
        network = make_network(RouterKind.SPECULATIVE_VC, 2, bufs=4)
        packet = send_packet(network, 0, 12, length=length)
        network.run(150)
        assert packet.ejection_cycle is not None
        assert network.sinks[12].flits_ejected == length


class TestManyPacketsIntegrity:
    @pytest.mark.parametrize("kind,vcs", ALL_KINDS)
    def test_all_packets_delivered_and_conserved(self, kind, vcs):
        network = make_network(kind, vcs, load=0.3, seed=7)
        for _ in range(400):
            network.step()
            if network.cycle % 16 == 0:
                network.check_conservation()
                network.check_credit_invariants()
        # stop injecting, drain
        for generator in network.generators:
            generator.rate_packets_per_cycle = 0.0
        for _ in range(2000):
            network.step()
            if network.drained():
                break
        assert network.drained(), f"{kind} did not drain"
        assert network.total_flits_injected() == network.total_flits_ejected()
        assert network.packets_generated > 50

    @pytest.mark.parametrize("kind,vcs", ALL_KINDS)
    def test_packets_arrive_at_their_destination_in_order(self, kind, vcs):
        """Flits of each packet eject in index order (no reordering)."""
        arrivals = {}

        network = make_network(kind, vcs, load=0.35, seed=11)
        original_accepts = []
        for sink in network.sinks:
            original = sink.accept

            def wrapped(flit, cycle, original=original):
                order = arrivals.setdefault(flit.packet.packet_id, [])
                order.append(flit.index)
                original(flit, cycle)

            sink.accept = wrapped
            original_accepts.append(original)

        network.run(600)
        assert arrivals, "no packets delivered"
        for packet_id, indices in arrivals.items():
            assert indices == sorted(indices), (
                f"packet {packet_id} flits reordered: {indices}"
            )

    def test_wormhole_output_no_packet_interleaving(self):
        """Wormhole holds the switch per packet: flits of different
        packets never interleave on one channel."""
        network = make_network(RouterKind.WORMHOLE, 1, load=0.4, seed=5)
        streams = {}
        flit_links = network._flit_links

        def snoop():
            for channel, router, port in flit_links:
                for _, flit in list(channel._in_flight):
                    key = id(channel)
                    last = streams.setdefault(key, [])
                    if not last or last[-1] != (flit.packet.packet_id, flit.index):
                        last.append((flit.packet.packet_id, flit.index))

        for _ in range(400):
            network.step()
            snoop()

        for stream in streams.values():
            open_packet = None
            for packet_id, index in stream:
                if open_packet is None or packet_id != open_packet[0]:
                    # new packet may only start if previous one finished
                    # (its tail seen) -- index 0 begins a packet.
                    assert index == 0, f"packet {packet_id} began mid-stream"
                    open_packet = (packet_id, index)
                else:
                    assert index == open_packet[1] + 1
                    open_packet = (packet_id, index)


class TestPacketIdDeterminism:
    """Packet ids come from a per-network sequence, so runs are pure
    functions of (config, seed) no matter what else ran in the process.

    This matters beyond bookkeeping: o1turn splits traffic by hashing
    the packet id, so process-global ids made o1turn results depend on
    how many packets *previous* networks in the same process created.
    """

    def digest(self, **kw):
        network = make_network(
            RouterKind.SPECULATIVE_VC, 4, load=0.4, seed=13, **kw,
        )
        network.run(400)
        return (
            network.packets_generated,
            network.total_flits_injected(),
            network.total_flits_ejected(),
        )

    def test_ids_start_at_zero_per_network(self):
        network = make_network(RouterKind.SPECULATIVE_VC, 2, load=0.5, seed=1)
        network.run(50)
        network2 = make_network(RouterKind.SPECULATIVE_VC, 2, load=0.5, seed=1)
        packet = network2.generators[0].maybe_generate(0)
        while packet is None:
            packet = network2.generators[0].maybe_generate(0)
        assert packet.packet_id == 0

    def test_o1turn_repeats_bit_identically_in_one_process(self):
        first = self.digest(routing_function="o1turn")
        # Interleave an unrelated run that creates packets; with a
        # process-global id counter this shifted the o1turn hash split.
        make_network(RouterKind.SPECULATIVE_VC, 2, load=0.5, seed=99).run(100)
        second = self.digest(routing_function="o1turn")
        assert first == second


class TestSaturationBehavior:
    def test_backlog_grows_beyond_capacity(self):
        network = make_network(RouterKind.WORMHOLE, 1, load=0.95, seed=1)
        network.run(800)
        backlog = sum(s.backlog_flits for s in network.sources)
        assert backlog > 100  # sources cannot inject at offered rate

    def test_network_keeps_ejecting_at_overload(self):
        """No deadlock: ejection continues even far beyond saturation."""
        network = make_network(RouterKind.SPECULATIVE_VC, 2, load=0.95, seed=1)
        network.run(400)
        mid = network.total_flits_ejected()
        network.run(400)
        assert network.total_flits_ejected() > mid + 100


class TestInjectionRejection:
    def test_over_bandwidth_injection_rejected(self):
        # 4x4 mesh capacity is 1 flit/node/cycle; at 5 flits/packet a
        # load fraction above 5.0 would need >1 packet/node/cycle.
        with pytest.raises(ValueError):
            make_network(RouterKind.WORMHOLE, 1, load=6.0)


class TestNetworkStructure:
    def test_router_count(self):
        network = make_network(RouterKind.WORMHOLE, 1, radix=5)
        assert len(network.routers) == 25

    def test_channel_count(self):
        network = make_network(RouterKind.WORMHOLE, 1, radix=4)
        # 4k(k-1) directed mesh links + k^2 ejection channels tracked
        # separately.
        assert len(network._flit_links) == 4 * 4 * 3
        assert len(network._ejection_links) == 16

    def test_drained_initially(self):
        network = make_network(RouterKind.WORMHOLE, 1)
        assert network.drained()
