"""Tests for simulation configuration validation."""

import pytest

from repro.sim.config import (
    MeasurementConfig,
    RouterKind,
    SimConfig,
    paper_scale,
)


class TestRouterKind:
    def test_single_cycle_flags(self):
        assert RouterKind.SINGLE_CYCLE_WORMHOLE.is_single_cycle
        assert RouterKind.SINGLE_CYCLE_VC.is_single_cycle
        assert not RouterKind.WORMHOLE.is_single_cycle

    def test_vc_flags(self):
        assert RouterKind.VIRTUAL_CHANNEL.uses_vcs
        assert RouterKind.SPECULATIVE_VC.uses_vcs
        assert RouterKind.SINGLE_CYCLE_VC.uses_vcs
        assert not RouterKind.WORMHOLE.uses_vcs


class TestSimConfig:
    def test_defaults_follow_paper(self):
        config = SimConfig()
        assert config.mesh_radix == 8
        assert config.packet_length == 5
        assert config.flit_propagation == 1
        assert config.credit_propagation == 1
        assert config.traffic_pattern == "uniform"

    def test_wormhole_requires_single_queue(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.WORMHOLE, num_vcs=2)

    def test_vc_router_requires_multiple_vcs(self):
        with pytest.raises(ValueError):
            SimConfig(router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=1)

    def test_buffers_per_port(self):
        config = SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2, buffers_per_vc=4
        )
        assert config.buffers_per_port == 8

    def test_credit_channel_delay_default(self):
        # 1-cycle propagation, 0-cycle processing: a credit sent at grant
        # cycle t is usable at t+1 (channel adds the receive cycle).
        assert SimConfig().credit_channel_delay == 0

    def test_credit_channel_delay_fig18(self):
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            credit_propagation=4,
        )
        assert config.credit_channel_delay == 3

    def test_credit_pipeline_override(self):
        config = SimConfig(credit_pipeline=2)
        assert config.effective_credit_pipeline == 2
        assert config.credit_channel_delay == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mesh_radix": 1},
            {"buffers_per_vc": 0},
            {"packet_length": 0},
            {"injection_fraction": -0.1},
            {"flit_propagation": 0},
            {"credit_propagation": 0},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            SimConfig(**kwargs)


class TestMeasurementConfig:
    def test_defaults_valid(self):
        config = MeasurementConfig()
        assert config.max_cycles > config.warmup_cycles

    def test_paper_scale(self):
        config = paper_scale()
        assert config.warmup_cycles == 10_000
        assert config.sample_packets == 100_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warmup_cycles": -1},
            {"sample_packets": 0},
            {"warmup_cycles": 100, "max_cycles": 100},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            MeasurementConfig(**kwargs)
