"""Tests for latency statistics and sweep results."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.flit import Packet
from repro.sim.metrics import LatencyStats, RunResult, SweepResult, _percentile


def delivered_packet(latency, created=0):
    packet = Packet(source=0, destination=1, length=5, creation_cycle=created)
    packet.ejection_cycle = created + latency
    return packet


def run_result(load, latency, saturated=False, accepted=None):
    stats = (
        LatencyStats.from_packets([delivered_packet(latency)])
        if latency is not None
        else None
    )
    return RunResult(
        injection_fraction=load,
        latency=stats,
        accepted_fraction=accepted if accepted is not None else load,
        saturated=saturated,
        cycles_simulated=1000,
        sample_packets=100,
    )


class TestLatencyStats:
    def test_single_packet(self):
        stats = LatencyStats.from_packets([delivered_packet(30)])
        assert stats.mean == 30
        assert stats.minimum == stats.maximum == 30

    def test_mean_and_extremes(self):
        packets = [delivered_packet(l) for l in (10, 20, 30, 40)]
        stats = LatencyStats.from_packets(packets)
        assert stats.mean == 25
        assert stats.minimum == 10
        assert stats.maximum == 40
        assert stats.count == 4

    def test_median(self):
        packets = [delivered_packet(l) for l in (1, 2, 3, 4, 100)]
        assert LatencyStats.from_packets(packets).p50 == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyStats.from_packets([])

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=50))
    def test_percentiles_ordered(self, latencies):
        stats = LatencyStats.from_packets(
            [delivered_packet(l) for l in latencies]
        )
        assert stats.minimum <= stats.p50 <= stats.p95 <= stats.p99 <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum


class TestPercentile:
    def test_interpolation(self):
        assert _percentile([0, 10], 0.5) == 5.0

    def test_extremes(self):
        values = [1, 2, 3]
        assert _percentile(values, 0.0) == 1
        assert _percentile(values, 1.0) == 3

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            _percentile([], 0.5)


class TestRunResult:
    def test_average_latency(self):
        assert run_result(0.1, 30).average_latency == 30

    def test_saturated_latency_is_infinite(self):
        result = run_result(0.9, None, saturated=True)
        assert math.isinf(result.average_latency)

    def test_describe(self):
        text = run_result(0.25, 42).describe()
        assert "25%" in text
        assert "42" in text
        saturated = run_result(0.9, None, saturated=True).describe()
        assert "saturated" in saturated


class TestSweepResult:
    def make_curve(self):
        return SweepResult(
            label="demo",
            points=[
                run_result(0.1, 30),
                run_result(0.3, 35),
                run_result(0.5, 80),
                run_result(0.7, None, saturated=True),
            ],
        )

    def test_zero_load_latency(self):
        assert self.make_curve().zero_load_latency() == 30

    def test_saturation_fraction(self):
        curve = self.make_curve()
        assert curve.saturation_fraction(latency_limit=90) == 0.5
        assert curve.saturation_fraction(latency_limit=50) == 0.3
        assert curve.saturation_fraction(latency_limit=10) == 0.0

    def test_saturated_points_end_the_flat_region(self):
        curve = SweepResult(
            label="x", points=[run_result(0.1, 30),
                               run_result(0.3, None, saturated=True),
                               run_result(0.5, 31)],
        )
        assert curve.saturation_fraction(latency_limit=1000) == 0.1

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            SweepResult("empty").zero_load_latency()

    def test_describe_lists_points(self):
        text = self.make_curve().describe()
        assert "demo" in text
        assert text.count("load") == 4


class TestAggregateResult:
    def make(self, latencies, load=0.2, saturated_flags=None):
        from repro.sim.metrics import AggregateResult

        flags = saturated_flags or [False] * len(latencies)
        runs = [
            run_result(load, lat if not sat else None, saturated=sat)
            for lat, sat in zip(latencies, flags)
        ]
        return AggregateResult(injection_fraction=load, runs=runs)

    def test_mean_and_std(self):
        aggregate = self.make([28, 30, 32])
        assert aggregate.mean_latency == 30
        assert aggregate.latency_std == pytest.approx(2.0)
        assert aggregate.latency_ci95 == pytest.approx(1.96 * 2 / 3 ** 0.5)

    def test_single_run_has_zero_ci(self):
        aggregate = self.make([30])
        assert aggregate.latency_ci95 == 0.0
        assert aggregate.latency_std == 0.0

    def test_saturation_dominates(self):
        aggregate = self.make([30, None], saturated_flags=[False, True])
        assert math.isinf(aggregate.mean_latency)
        assert "saturated" in aggregate.describe()

    def test_mismatched_loads_rejected(self):
        from repro.sim.metrics import AggregateResult

        with pytest.raises(ValueError):
            AggregateResult(
                injection_fraction=0.2,
                runs=[run_result(0.2, 30), run_result(0.3, 30)],
            )

    def test_empty_rejected(self):
        from repro.sim.metrics import AggregateResult

        with pytest.raises(ValueError):
            AggregateResult(injection_fraction=0.2, runs=[])
