"""Tests for traffic patterns and injection processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.topology import Mesh
from repro.sim.traffic import (
    HOTSPOT_FRACTION,
    PacketSource,
    bit_complement_destination,
    hotspot_destination,
    make_destination_pattern,
    rate_from_capacity_fraction,
    transpose_destination,
    uniform_destination,
)

k8 = Mesh(8)
k3 = Mesh(3)
k4 = Mesh(4)


class TestDestinationPatterns:
    def test_uniform_never_self(self):
        rng = random.Random(0)
        for node in (0, 17, 63):
            for _ in range(200):
                assert uniform_destination(k8, node, rng) != node

    def test_uniform_covers_all_destinations(self):
        rng = random.Random(1)
        seen = {uniform_destination(k8, 0, rng) for _ in range(5000)}
        assert seen == set(range(1, 64))

    def test_uniform_is_roughly_uniform(self):
        rng = random.Random(2)
        counts = {}
        samples = 63 * 300
        for _ in range(samples):
            d = uniform_destination(k8, 10, rng)
            counts[d] = counts.get(d, 0) + 1
        expected = samples / 63
        assert all(0.6 * expected < c < 1.4 * expected for c in counts.values())

    def test_transpose(self):
        rng = random.Random(0)
        src = k8.node_at(2, 5)
        assert transpose_destination(k8, src, rng) == k8.node_at(5, 2)

    def test_transpose_diagonal_falls_back(self):
        rng = random.Random(0)
        src = k8.node_at(3, 3)
        assert transpose_destination(k8, src, rng) != src

    def test_bit_complement(self):
        rng = random.Random(0)
        src = k8.node_at(1, 2)
        assert bit_complement_destination(k8, src, rng) == k8.node_at(6, 5)

    def test_factory(self):
        assert make_destination_pattern("uniform") is uniform_destination
        assert make_destination_pattern("hotspot") is hotspot_destination
        with pytest.raises(ValueError):
            make_destination_pattern("tornado")

    def test_transpose_distribution_on_small_mesh(self):
        """Every off-diagonal source maps deterministically to its
        transpose; the full 4x4 map is a permutation of those pairs."""
        rng = random.Random(0)
        for x in range(4):
            for y in range(4):
                if x == y:
                    continue
                src = k4.node_at(x, y)
                assert transpose_destination(k4, src, rng) == k4.node_at(y, x)
        off_diagonal = [
            k4.node_at(x, y) for x in range(4) for y in range(4) if x != y
        ]
        images = {transpose_destination(k4, s, rng) for s in off_diagonal}
        assert images == set(off_diagonal)  # a permutation, no collisions

    def test_bit_complement_distribution_on_small_mesh(self):
        """Bit-complement on an even mesh is a fixed-point-free
        involution: applying it twice returns to the source."""
        rng = random.Random(0)
        for src in range(k4.num_nodes):
            dst = bit_complement_destination(k4, src, rng)
            assert dst != src
            assert bit_complement_destination(k4, dst, rng) == src

    def test_bit_complement_centre_falls_back_on_odd_mesh(self):
        """On an odd mesh the centre node maps to itself; it must fall
        back to a uniform (non-self) destination instead."""
        rng = random.Random(0)
        centre = k3.node_at(1, 1)
        destinations = {
            bit_complement_destination(k3, centre, rng) for _ in range(200)
        }
        assert centre not in destinations
        assert len(destinations) > 1  # fallback is spread, not a fixed pick

    def test_hotspot_concentrates_on_centre(self):
        rng = random.Random(3)
        hotspot = k8.node_at(4, 4)
        src = k8.node_at(0, 0)
        samples = 20_000
        hits = sum(
            hotspot_destination(k8, src, rng) == hotspot
            for _ in range(samples)
        )
        # hotspot fraction plus the uniform remainder's 1/63 share.
        expected = HOTSPOT_FRACTION + (1 - HOTSPOT_FRACTION) / 63
        assert samples * expected * 0.8 < hits < samples * expected * 1.2

    def test_hotspot_remainder_is_uniform(self):
        rng = random.Random(4)
        hotspot = k4.node_at(2, 2)
        src = k4.node_at(0, 1)
        counts = {}
        for _ in range(15_000):
            d = hotspot_destination(k4, src, rng)
            if d not in (hotspot,):
                counts[d] = counts.get(d, 0) + 1
        assert set(counts) == set(range(k4.num_nodes)) - {src, hotspot}
        expected = sum(counts.values()) / len(counts)
        assert all(0.7 * expected < c < 1.3 * expected for c in counts.values())

    def test_hotspot_node_itself_falls_back_to_uniform(self):
        """The hotspot node can't send to itself: its traffic is uniform
        over everyone else (the self-pair fallback)."""
        rng = random.Random(5)
        hotspot = k4.node_at(2, 2)
        destinations = {
            hotspot_destination(k4, hotspot, rng) for _ in range(2000)
        }
        assert hotspot not in destinations
        assert destinations == set(range(k4.num_nodes)) - {hotspot}

    def test_hotspot_never_self(self):
        rng = random.Random(6)
        for src in range(k4.num_nodes):
            for _ in range(100):
                assert hotspot_destination(k4, src, rng) != src


class TestPacketSource:
    def make_source(self, rate, process="constant", seed=0):
        return PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=rate, packet_length=5,
            rng=random.Random(seed), process=process,
        )

    def test_zero_rate_generates_nothing(self):
        source = self.make_source(0.0)
        assert all(source.maybe_generate(c) is None for c in range(100))

    def test_constant_rate_exact_count(self):
        source = self.make_source(0.25)
        generated = sum(
            source.maybe_generate(c) is not None for c in range(1000)
        )
        assert generated in (250, 251)  # random phase shifts by at most 1

    def test_constant_rate_even_spacing(self):
        source = self.make_source(0.2)
        cycles = [c for c in range(100) if source.maybe_generate(c)]
        gaps = {b - a for a, b in zip(cycles, cycles[1:])}
        assert gaps == {5}

    def test_bernoulli_rate_statistical(self):
        source = self.make_source(0.3, process="bernoulli")
        generated = sum(
            source.maybe_generate(c) is not None for c in range(4000)
        )
        assert 0.25 * 4000 < generated < 0.35 * 4000

    def test_packet_fields(self):
        source = self.make_source(1.0)
        packet = source.maybe_generate(17)
        assert packet is not None
        assert packet.source == 0
        assert packet.destination != 0
        assert packet.length == 5
        assert packet.creation_cycle == 17

    def test_ids_sequence_numbers_packets(self):
        import itertools

        source = PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=1.0, packet_length=5,
            rng=random.Random(0), ids=itertools.count(100),
        )
        packets = [source.maybe_generate(c) for c in range(3)]
        assert [p.packet_id for p in packets] == [100, 101, 102]

    def test_without_ids_falls_back_to_global_counter(self):
        source = self.make_source(1.0)
        first = source.maybe_generate(0)
        second = source.maybe_generate(1)
        assert second.packet_id == first.packet_id + 1

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            self.make_source(1.5)
        with pytest.raises(ValueError):
            self.make_source(-0.1)

    def test_invalid_process(self):
        with pytest.raises(ValueError):
            self.make_source(0.1, process="poisson")

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(0, 100))
    @settings(max_examples=25)
    def test_constant_rate_tracks_target(self, rate, seed):
        source = PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=rate, packet_length=5,
            rng=random.Random(seed),
        )
        cycles = 2000
        generated = sum(
            source.maybe_generate(c) is not None for c in range(cycles)
        )
        assert abs(generated - rate * cycles) <= 1.0


class TestRateConversion:
    def test_full_capacity_8x8(self):
        # 100% capacity = 0.5 flits/node/cycle = 0.1 packets at length 5.
        assert rate_from_capacity_fraction(k8, 1.0, 5) == pytest.approx(0.1)

    def test_scales_linearly(self):
        assert rate_from_capacity_fraction(k8, 0.4, 5) == pytest.approx(0.04)

    def test_packet_length_divides(self):
        assert rate_from_capacity_fraction(k8, 1.0, 1) == pytest.approx(0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            rate_from_capacity_fraction(k8, -0.1, 5)
