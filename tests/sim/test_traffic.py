"""Tests for traffic patterns and injection processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.topology import Mesh
from repro.sim.traffic import (
    PacketSource,
    bit_complement_destination,
    make_destination_pattern,
    rate_from_capacity_fraction,
    transpose_destination,
    uniform_destination,
)

k8 = Mesh(8)


class TestDestinationPatterns:
    def test_uniform_never_self(self):
        rng = random.Random(0)
        for node in (0, 17, 63):
            for _ in range(200):
                assert uniform_destination(k8, node, rng) != node

    def test_uniform_covers_all_destinations(self):
        rng = random.Random(1)
        seen = {uniform_destination(k8, 0, rng) for _ in range(5000)}
        assert seen == set(range(1, 64))

    def test_uniform_is_roughly_uniform(self):
        rng = random.Random(2)
        counts = {}
        samples = 63 * 300
        for _ in range(samples):
            d = uniform_destination(k8, 10, rng)
            counts[d] = counts.get(d, 0) + 1
        expected = samples / 63
        assert all(0.6 * expected < c < 1.4 * expected for c in counts.values())

    def test_transpose(self):
        rng = random.Random(0)
        src = k8.node_at(2, 5)
        assert transpose_destination(k8, src, rng) == k8.node_at(5, 2)

    def test_transpose_diagonal_falls_back(self):
        rng = random.Random(0)
        src = k8.node_at(3, 3)
        assert transpose_destination(k8, src, rng) != src

    def test_bit_complement(self):
        rng = random.Random(0)
        src = k8.node_at(1, 2)
        assert bit_complement_destination(k8, src, rng) == k8.node_at(6, 5)

    def test_factory(self):
        assert make_destination_pattern("uniform") is uniform_destination
        with pytest.raises(ValueError):
            make_destination_pattern("tornado")


class TestPacketSource:
    def make_source(self, rate, process="constant", seed=0):
        return PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=rate, packet_length=5,
            rng=random.Random(seed), process=process,
        )

    def test_zero_rate_generates_nothing(self):
        source = self.make_source(0.0)
        assert all(source.maybe_generate(c) is None for c in range(100))

    def test_constant_rate_exact_count(self):
        source = self.make_source(0.25)
        generated = sum(
            source.maybe_generate(c) is not None for c in range(1000)
        )
        assert generated in (250, 251)  # random phase shifts by at most 1

    def test_constant_rate_even_spacing(self):
        source = self.make_source(0.2)
        cycles = [c for c in range(100) if source.maybe_generate(c)]
        gaps = {b - a for a, b in zip(cycles, cycles[1:])}
        assert gaps == {5}

    def test_bernoulli_rate_statistical(self):
        source = self.make_source(0.3, process="bernoulli")
        generated = sum(
            source.maybe_generate(c) is not None for c in range(4000)
        )
        assert 0.25 * 4000 < generated < 0.35 * 4000

    def test_packet_fields(self):
        source = self.make_source(1.0)
        packet = source.maybe_generate(17)
        assert packet is not None
        assert packet.source == 0
        assert packet.destination != 0
        assert packet.length == 5
        assert packet.creation_cycle == 17

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            self.make_source(1.5)
        with pytest.raises(ValueError):
            self.make_source(-0.1)

    def test_invalid_process(self):
        with pytest.raises(ValueError):
            self.make_source(0.1, process="poisson")

    @given(st.floats(min_value=0.01, max_value=1.0), st.integers(0, 100))
    @settings(max_examples=25)
    def test_constant_rate_tracks_target(self, rate, seed):
        source = PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=rate, packet_length=5,
            rng=random.Random(seed),
        )
        cycles = 2000
        generated = sum(
            source.maybe_generate(c) is not None for c in range(cycles)
        )
        assert abs(generated - rate * cycles) <= 1.0


class TestRateConversion:
    def test_full_capacity_8x8(self):
        # 100% capacity = 0.5 flits/node/cycle = 0.1 packets at length 5.
        assert rate_from_capacity_fraction(k8, 1.0, 5) == pytest.approx(0.1)

    def test_scales_linearly(self):
        assert rate_from_capacity_fraction(k8, 0.4, 5) == pytest.approx(0.04)

    def test_packet_length_divides(self):
        assert rate_from_capacity_fraction(k8, 1.0, 1) == pytest.approx(0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            rate_from_capacity_fraction(k8, -0.1, 5)
