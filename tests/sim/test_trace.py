"""Tests for the flit tracer -- and, through it, exact pipeline timing."""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.trace import EventKind, Tracer


def traced_network(kind, vcs, bufs=8):
    network = Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=bufs,
        injection_fraction=0.0,
    ))
    tracer = Tracer.attach(network)
    return network, tracer


def send(network, src, dst, length=5):
    packet = Packet(source=src, destination=dst, length=length,
                    creation_cycle=0)
    network.sources[src].enqueue(packet)
    return packet


class TestTracerMechanics:
    def test_event_kinds_recorded(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        send(network, 0, 2)
        network.run(60)
        kinds = {e.kind for e in tracer.events}
        # Wormhole routers have no VC allocation stage, so no VC_GRANT.
        assert kinds == {
            EventKind.BUFFER_WRITE, EventKind.RC, EventKind.SWITCH_GRANT,
            EventKind.TRAVERSAL, EventKind.EJECTION,
        }

    def test_vc_router_records_vc_grants(self):
        network, tracer = traced_network(RouterKind.VIRTUAL_CHANNEL, 2)
        send(network, 0, 2)
        network.run(60)
        kinds = {e.kind for e in tracer.events}
        assert kinds == {
            EventKind.BUFFER_WRITE, EventKind.RC, EventKind.VC_GRANT,
            EventKind.SWITCH_GRANT, EventKind.TRAVERSAL, EventKind.EJECTION,
        }

    def test_packet_filter(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        a = send(network, 0, 2)
        b = send(network, 5, 7)
        network.run(60)
        a_events = tracer.packet_events(a.packet_id)
        assert a_events
        assert all(e.packet_id == a.packet_id for e in a_events)
        assert tracer.packet_events(b.packet_id)

    def test_max_events_cap(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        tracer.max_events = 5
        send(network, 0, 3)
        network.run(60)
        assert len(tracer.events) == 5

    def test_render(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        send(network, 0, 1)
        network.run(30)
        text = tracer.render()
        assert "traversal" in text
        assert "ejection" in text

    def test_untraced_network_records_nothing(self):
        network = Network(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4,
            injection_fraction=0.0,
        ))
        send(network, 0, 1)
        network.run(30)  # must simply not crash without a tracer
        assert network.sinks[1].packets_ejected == 1


class TestExactPipelineTiming:
    """The tracer pins the per-stage timing DESIGN.md section 4 claims."""

    @pytest.mark.parametrize("kind,vcs,per_hop", [
        (RouterKind.WORMHOLE, 1, 4),
        (RouterKind.VIRTUAL_CHANNEL, 2, 5),
        (RouterKind.SPECULATIVE_VC, 2, 4),
        (RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 2),
        (RouterKind.SINGLE_CYCLE_VC, 2, 2),
    ])
    def test_head_per_hop_latency(self, kind, vcs, per_hop):
        network, tracer = traced_network(kind, vcs)
        packet = send(network, 0, 3)  # 3 hops east along the top row
        network.run(80)
        gaps = tracer.per_hop_latencies(packet.packet_id, flit_index=0)
        assert gaps == [per_hop] * 3

    def test_flits_stream_back_to_back(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        packet = send(network, 0, 3, length=5)
        network.run(80)
        # At the first router, the five flits traverse on 5 consecutive
        # cycles (8 buffers cover the credit loop).
        cycles = sorted(
            e.cycle for e in tracer.packet_events(packet.packet_id)
            if e.kind is EventKind.TRAVERSAL and e.node == 0
        )
        assert cycles == list(range(cycles[0], cycles[0] + 5))

    def test_grant_precedes_traversal_by_one_cycle(self):
        network, tracer = traced_network(RouterKind.WORMHOLE, 1)
        packet = send(network, 0, 2)
        network.run(60)
        grants = [e for e in tracer.packet_events(packet.packet_id)
                  if e.kind is EventKind.SWITCH_GRANT and e.node == 0
                  and e.flit_index == 0]
        traversals = [e for e in tracer.packet_events(packet.packet_id)
                      if e.kind is EventKind.TRAVERSAL and e.node == 0
                      and e.flit_index == 0]
        assert traversals[0].cycle == grants[0].cycle + 1

    def test_single_cycle_grant_and_traversal_same_cycle(self):
        network, tracer = traced_network(RouterKind.SINGLE_CYCLE_WORMHOLE, 1)
        packet = send(network, 0, 2)
        network.run(60)
        grants = [e for e in tracer.packet_events(packet.packet_id)
                  if e.kind is EventKind.SWITCH_GRANT and e.node == 0]
        traversals = [e for e in tracer.packet_events(packet.packet_id)
                      if e.kind is EventKind.TRAVERSAL and e.node == 0]
        assert traversals[0].cycle == grants[0].cycle

    def test_credit_loop_inserts_head_bubble(self):
        """With buffers one short of the 5-cycle head-paced credit loop,
        each packet pays a one-cycle bubble (the head's extra routing
        cycle downstream delays the first credit); steady-state body
        streaming then runs at full rate because body flits are granted
        the cycle they arrive, closing the loop in 4 cycles = the buffer
        count."""
        network, tracer = traced_network(RouterKind.SPECULATIVE_VC, 2, bufs=4)
        packet = send(network, 0, 1, length=21)
        network.run(200)
        cycles = sorted(
            e.cycle for e in tracer.packet_events(packet.packet_id)
            if e.kind is EventKind.TRAVERSAL and e.node == 0
        )
        assert cycles[-1] - cycles[0] == 21  # 20 gaps + 1 head bubble

    def _head_stage_cycles(self, tracer, packet, node):
        """Cycle of each pipeline event of the head flit at one router."""
        stages = {}
        for event in tracer.packet_events(packet.packet_id):
            if event.node == node and event.flit_index == 0:
                stages[event.kind] = event.cycle
        return stages

    def test_vc_router_stage_progression(self):
        """Non-speculative VC router: RC | VA | SA | ST on consecutive
        cycles (Figure 4b's head pipeline)."""
        network, tracer = traced_network(RouterKind.VIRTUAL_CHANNEL, 2)
        packet = send(network, 0, 2)
        network.run(80)
        stages = self._head_stage_cycles(tracer, packet, node=0)
        rc = stages[EventKind.RC]
        assert stages[EventKind.VC_GRANT] == rc + 1
        assert stages[EventKind.SWITCH_GRANT] == rc + 2
        assert stages[EventKind.TRAVERSAL] == rc + 3

    def test_spec_router_grants_vc_and_switch_same_cycle(self):
        """Speculative router: VA and (speculative) SA in the same cycle
        (Figure 4c), collapsing the head pipeline by one stage."""
        network, tracer = traced_network(RouterKind.SPECULATIVE_VC, 2)
        packet = send(network, 0, 2)
        network.run(80)
        stages = self._head_stage_cycles(tracer, packet, node=0)
        rc = stages[EventKind.RC]
        assert stages[EventKind.VC_GRANT] == rc + 1
        assert stages[EventKind.SWITCH_GRANT] == stages[EventKind.VC_GRANT]
        assert stages[EventKind.TRAVERSAL] == rc + 2

    def test_enough_buffers_restore_full_rate(self):
        network, tracer = traced_network(RouterKind.SPECULATIVE_VC, 2, bufs=5)
        packet = send(network, 0, 1, length=21)
        network.run(200)
        cycles = sorted(
            e.cycle for e in tracer.packet_events(packet.packet_id)
            if e.kind is EventKind.TRAVERSAL and e.node == 0
        )
        assert cycles[-1] - cycles[0] == 20  # back-to-back
