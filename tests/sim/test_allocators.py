"""Tests for the separable allocators, including the speculative pair."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.allocators import (
    Grant,
    Request,
    SeparableAllocator,
    SpeculativeSwitchAllocator,
)


def grants_valid(requests, grants):
    """Matching constraints: one grant per group and per resource, and
    every grant corresponds to an actual request."""
    request_set = {(r.group, r.member, r.resource) for r in requests}
    groups = [g.group for g in grants]
    resources = [g.resource for g in grants]
    assert len(groups) == len(set(groups)), "two grants to one group"
    assert len(resources) == len(set(resources)), "one resource granted twice"
    for g in grants:
        assert (g.group, g.member, g.resource) in request_set


class TestSeparableAllocator:
    def test_single_request_granted(self):
        allocator = SeparableAllocator(2, 2, 3)
        grants = allocator.allocate([Request(0, 1, 2)])
        assert grants == [Grant(0, 1, 2)]

    def test_no_requests(self):
        assert SeparableAllocator(2, 2, 2).allocate([]) == []

    def test_conflicting_requests_one_winner(self):
        allocator = SeparableAllocator(2, 1, 1)
        grants = allocator.allocate([Request(0, 0, 0), Request(1, 0, 0)])
        assert len(grants) == 1

    def test_disjoint_requests_all_granted(self):
        allocator = SeparableAllocator(3, 1, 3)
        requests = [Request(i, 0, i) for i in range(3)]
        assert len(allocator.allocate(requests)) == 3

    def test_stage1_limits_one_per_group(self):
        # Two VCs of the same input port requesting different outputs:
        # the v:1 first stage lets only one through (the separable
        # allocator's efficiency loss, which we must reproduce).
        allocator = SeparableAllocator(1, 2, 2)
        grants = allocator.allocate([Request(0, 0, 0), Request(0, 1, 1)])
        assert len(grants) == 1

    def test_busy_resources_masked(self):
        allocator = SeparableAllocator(2, 1, 2)
        grants = allocator.allocate(
            [Request(0, 0, 0), Request(1, 0, 1)], busy_resources=[0]
        )
        assert grants == [Grant(1, 0, 1)]

    def test_fairness_across_groups(self):
        allocator = SeparableAllocator(2, 1, 1)
        requests = [Request(0, 0, 0), Request(1, 0, 0)]
        winners = [allocator.allocate(requests)[0].group for _ in range(10)]
        assert winners.count(0) == 5
        assert winners.count(1) == 5

    def test_fairness_within_group(self):
        allocator = SeparableAllocator(1, 2, 2)
        requests = [Request(0, 0, 0), Request(0, 1, 1)]
        winners = [allocator.allocate(requests)[0].member for _ in range(10)]
        assert winners.count(0) == 5
        assert winners.count(1) == 5

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SeparableAllocator(0, 1, 1)

    @pytest.mark.parametrize(
        "request_", [Request(5, 0, 0), Request(0, 5, 0), Request(0, 0, 5)]
    )
    def test_out_of_range_requests(self, request_):
        with pytest.raises(ValueError):
            SeparableAllocator(2, 2, 2).allocate([request_])

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=20,
        )
    )
    def test_matching_constraints_hold(self, triples):
        allocator = SeparableAllocator(4, 2, 4)
        requests = [Request(*t) for t in triples]
        grants = allocator.allocate(requests)
        grants_valid(requests, grants)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=3),
            ),
            min_size=1,
            max_size=20,
        )
    )
    def test_nonempty_requests_get_some_grant(self, triples):
        """The allocator is work-conserving at the first stage: at least
        one request is always granted."""
        allocator = SeparableAllocator(4, 2, 4)
        grants = allocator.allocate([Request(*t) for t in triples])
        assert len(grants) >= 1


class TestSpeculativeSwitchAllocator:
    def test_nonspec_beats_spec_on_same_output(self):
        allocator = SpeculativeSwitchAllocator(2, 2)
        nonspec, spec = allocator.allocate(
            nonspec_requests=[Request(0, 0, 1)],
            spec_requests=[Request(1, 0, 1)],
        )
        assert [g.group for g in nonspec] == [0]
        assert spec == []

    def test_nonspec_beats_spec_on_same_input(self):
        # Input port 0's non-speculative VC wins output 1; its other
        # (speculative) VC cannot also use the input port this cycle.
        allocator = SpeculativeSwitchAllocator(2, 2)
        nonspec, spec = allocator.allocate(
            nonspec_requests=[Request(0, 0, 1)],
            spec_requests=[Request(0, 1, 0)],
        )
        assert len(nonspec) == 1
        assert spec == []

    def test_spec_wins_idle_resources(self):
        allocator = SpeculativeSwitchAllocator(2, 2)
        nonspec, spec = allocator.allocate(
            nonspec_requests=[Request(0, 0, 1)],
            spec_requests=[Request(1, 1, 0)],
        )
        assert len(nonspec) == 1
        assert len(spec) == 1

    def test_spec_only_traffic_flows(self):
        allocator = SpeculativeSwitchAllocator(2, 2)
        nonspec, spec = allocator.allocate([], [Request(0, 0, 1)])
        assert nonspec == []
        assert len(spec) == 1

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=12,
        ),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=12,
        ),
    )
    def test_combined_grants_conflict_free(self, nonspec_triples, spec_triples):
        """Non-spec priority: the union of grants is a valid matching,
        and no speculative grant shares a port with a non-spec grant."""
        allocator = SpeculativeSwitchAllocator(5, 2)
        nonspec_requests = [Request(*t) for t in nonspec_triples]
        spec_requests = [Request(*t) for t in spec_triples]
        nonspec, spec = allocator.allocate(nonspec_requests, spec_requests)
        grants_valid(nonspec_requests + spec_requests, nonspec + spec)
        nonspec_inputs = {g.group for g in nonspec}
        nonspec_outputs = {g.resource for g in nonspec}
        for g in spec:
            assert g.group not in nonspec_inputs
            assert g.resource not in nonspec_outputs

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=1,
            max_size=12,
        ),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=0, max_value=4),
            ),
            max_size=12,
        ),
    )
    def test_speculation_never_hurts_nonspec(self, nonspec_triples, spec_triples):
        """Conservative speculation: non-spec grants are identical with
        and without speculative competition."""
        nonspec_requests = [Request(*t) for t in nonspec_triples]
        spec_requests = [Request(*t) for t in spec_triples]
        with_spec = SpeculativeSwitchAllocator(5, 2)
        without_spec = SpeculativeSwitchAllocator(5, 2)
        grants_with, _ = with_spec.allocate(nonspec_requests, spec_requests)
        grants_without, _ = without_spec.allocate(nonspec_requests, [])
        assert grants_with == grants_without
