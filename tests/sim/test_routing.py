"""Tests for dimension-ordered routing."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.routing import (
    dimension_order_route,
    make_routing_function,
    route_path,
    yx_route,
)
from repro.sim.topology import EAST, LOCAL, Mesh, NORTH, SOUTH, WEST

k8 = Mesh(8)
nodes = st.integers(min_value=0, max_value=63)


class TestDimensionOrderRouting:
    def test_eject_at_destination(self):
        assert dimension_order_route(k8, 5, 5) == LOCAL

    def test_x_first(self):
        src = k8.node_at(1, 1)
        dst = k8.node_at(5, 5)
        assert dimension_order_route(k8, src, dst) == EAST
        dst_west = k8.node_at(0, 5)
        assert dimension_order_route(k8, src, dst_west) == WEST

    def test_y_after_x_aligned(self):
        src = k8.node_at(3, 1)
        assert dimension_order_route(k8, src, k8.node_at(3, 5)) == SOUTH
        assert dimension_order_route(k8, src, k8.node_at(3, 0)) == NORTH

    @given(nodes, nodes)
    def test_path_length_is_manhattan_distance(self, src, dst):
        path = route_path(k8, src, dst)
        assert path[-1] == LOCAL
        assert len(path) - 1 == k8.hop_distance(src, dst)

    @given(nodes, nodes)
    def test_path_reaches_destination(self, src, dst):
        node = src
        for port in route_path(k8, src, dst):
            if port == LOCAL:
                break
            node = k8.neighbor(node, port)
        assert node == dst

    @given(nodes, nodes)
    def test_no_turns_back_into_x(self, src, dst):
        """Dimension order: once the route leaves X for Y it never returns."""
        path = route_path(k8, src, dst)
        seen_y = False
        for port in path:
            if port in (NORTH, SOUTH):
                seen_y = True
            if port in (EAST, WEST):
                assert not seen_y

    @given(nodes, nodes)
    def test_deterministic(self, src, dst):
        assert route_path(k8, src, dst) == route_path(k8, src, dst)


class TestYXRouting:
    @given(nodes, nodes)
    def test_yx_reaches_destination(self, src, dst):
        node = src
        for port in route_path(k8, src, dst, yx_route):
            if port == LOCAL:
                break
            node = k8.neighbor(node, port)
        assert node == dst

    @given(nodes, nodes)
    def test_yx_first_moves_vertical(self, src, dst):
        sx, sy = k8.coordinates(src)
        dx, dy = k8.coordinates(dst)
        port = yx_route(k8, src, dst)
        if sy != dy:
            assert port in (NORTH, SOUTH)
        elif sx != dx:
            assert port in (EAST, WEST)
        else:
            assert port == LOCAL


class TestFactory:
    def test_known_names(self):
        assert make_routing_function("xy") is dimension_order_route
        assert make_routing_function("yx") is yx_route

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_routing_function("chaotic")

    def test_router_resolved_functions_refuse_direct_calls(self):
        for name in ("o1turn", "adaptive"):
            fn = make_routing_function(name)
            with pytest.raises(TypeError):
                fn(k8, 0, 5)
