"""Tests for the bursty (on/off Markov) injection process."""

import random

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate
from repro.sim.topology import Mesh
from repro.sim.traffic import PacketSource

k8 = Mesh(8)


def bursty_source(rate, burst_length=8.0, seed=0):
    return PacketSource(
        node=0, mesh=k8, rate_packets_per_cycle=rate, packet_length=5,
        rng=random.Random(seed), process="bursty", burst_length=burst_length,
    )


class TestBurstyProcess:
    def test_long_run_rate_tracks_target(self):
        for rate in (0.02, 0.05, 0.08):
            source = bursty_source(rate, seed=1)
            cycles = 150_000
            generated = sum(
                source.maybe_generate(c) is not None for c in range(cycles)
            )
            assert generated / cycles == pytest.approx(rate, rel=0.10)

    def test_actually_bursty(self):
        """Inter-arrival gaps are bimodal: many short (in-burst) gaps and
        some very long (off-period) gaps -- unlike the constant process."""
        source = bursty_source(0.02, burst_length=8.0, seed=2)
        arrivals = [c for c in range(100_000) if source.maybe_generate(c)]
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        short = sum(g <= 6 for g in gaps)   # back-to-back 5-flit packets
        long = sum(g > 100 for g in gaps)   # off periods
        assert short > 0.5 * len(gaps)
        assert long > 0.02 * len(gaps)

    def test_constant_process_is_not_bursty(self):
        source = PacketSource(
            node=0, mesh=k8, rate_packets_per_cycle=0.02, packet_length=5,
            rng=random.Random(2), process="constant",
        )
        arrivals = [c for c in range(50_000) if source.maybe_generate(c)]
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {50}

    def test_burst_length_validated(self):
        with pytest.raises(ValueError):
            bursty_source(0.05, burst_length=0.5)

    def test_zero_rate(self):
        source = bursty_source(0.0)
        assert all(source.maybe_generate(c) is None for c in range(1000))


class TestBurstyEndToEnd:
    def test_simulates_and_raises_latency(self):
        """Bursty arrivals at equal average load queue more at the
        sources, so latency (which counts source queueing) rises."""
        measurement = MeasurementConfig(
            warmup_cycles=400, sample_packets=500, max_cycles=25_000,
            drain_cycles=8_000,
        )
        latencies = {}
        for process in ("constant", "bursty"):
            result = simulate(SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, injection_fraction=0.3,
                injection_process=process, seed=6,
            ), measurement)
            assert not result.saturated
            latencies[process] = result.average_latency
        assert latencies["bursty"] > latencies["constant"] + 3.0
