"""Tests for matrix and round-robin arbiters."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.arbiters import MatrixArbiter, RoundRobinArbiter, make_arbiter


class TestMatrixArbiter:
    def test_empty_requests(self):
        assert MatrixArbiter(4).arbitrate([]) is None

    def test_single_request_wins(self):
        assert MatrixArbiter(4).arbitrate([2]) == 2

    def test_initial_priority_is_index_order(self):
        assert MatrixArbiter(4).arbitrate([1, 3]) == 1

    def test_winner_drops_to_lowest_priority(self):
        arbiter = MatrixArbiter(3)
        assert arbiter.arbitrate([0, 1, 2]) == 0
        assert arbiter.arbitrate([0, 1, 2]) == 1
        assert arbiter.arbitrate([0, 1, 2]) == 2
        assert arbiter.arbitrate([0, 1, 2]) == 0

    def test_least_recently_served_fairness(self):
        arbiter = MatrixArbiter(4)
        wins = {i: 0 for i in range(4)}
        for _ in range(100):
            wins[arbiter.arbitrate([0, 1, 2, 3])] += 1
        assert all(count == 25 for count in wins.values())

    def test_nonrequesting_inputs_unaffected(self):
        arbiter = MatrixArbiter(3)
        arbiter.arbitrate([1])  # 1 now lowest priority
        assert arbiter.arbitrate([1, 2]) == 2
        assert arbiter.has_priority(0, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MatrixArbiter(2).arbitrate([2])

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            MatrixArbiter(0)

    @given(
        st.integers(min_value=2, max_value=8).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=n - 1),
                        min_size=1, max_size=n, unique=True,
                    ),
                    max_size=30,
                ),
            )
        )
    )
    def test_matrix_invariant_and_winner_membership(self, case):
        n, request_rounds = case
        arbiter = MatrixArbiter(n)
        for requests in request_rounds:
            winner = arbiter.arbitrate(requests)
            assert winner in requests
            assert arbiter.check_invariant()

    @given(st.integers(min_value=2, max_value=6))
    def test_starvation_freedom(self, n):
        """Under continuous full contention, every input wins within n rounds."""
        arbiter = MatrixArbiter(n)
        everyone = list(range(n))
        recent = [arbiter.arbitrate(everyone) for _ in range(n)]
        assert sorted(recent) == everyone


class TestRoundRobinArbiter:
    def test_rotation(self):
        arbiter = RoundRobinArbiter(3)
        assert arbiter.arbitrate([0, 1, 2]) == 0
        assert arbiter.arbitrate([0, 1, 2]) == 1
        assert arbiter.arbitrate([0, 1, 2]) == 2
        assert arbiter.arbitrate([0, 1, 2]) == 0

    def test_skips_idle_inputs(self):
        arbiter = RoundRobinArbiter(4)
        arbiter.arbitrate([0])
        assert arbiter.arbitrate([3]) == 3

    def test_empty(self):
        assert RoundRobinArbiter(4).arbitrate([]) is None

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                     max_size=5, unique=True),
            max_size=30,
        )
    )
    def test_winner_always_a_requestor(self, rounds):
        arbiter = RoundRobinArbiter(5)
        for requests in rounds:
            assert arbiter.arbitrate(requests) in requests


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_arbiter("matrix", 3), MatrixArbiter)
        assert isinstance(make_arbiter("round_robin", 3), RoundRobinArbiter)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_arbiter("coin_flip", 3)
