"""Failure-injection tests: protocol violations must raise, not corrupt.

The simulator's flow-control machinery asserts its own preconditions
(buffer overflow, credit underflow/overflow, grants without resources,
misdelivered flits).  These tests corrupt state on purpose and check the
violation surfaces as an exception at the first affected operation --
"errors should never pass silently".
"""

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.topology import EAST, LOCAL


def quiet_network(kind=RouterKind.VIRTUAL_CHANNEL, vcs=2, **kw):
    return Network(SimConfig(
        router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=4,
        injection_fraction=0.0, **kw,
    ))


def flit_for(dst=1, length=1):
    return Packet(source=0, destination=dst, length=length,
                  creation_cycle=0).make_flits()[0]


class TestBufferViolations:
    def test_input_buffer_overflow_raises(self):
        network = quiet_network()
        router = network.routers[0]
        for _ in range(4):
            router.input_vcs[EAST][0].buffer.push(flit_for())
        with pytest.raises(OverflowError):
            router.accept_flit(EAST, flit_for(), cycle=0)

    def test_head_into_idle_vc_with_backlog_raises(self):
        network = quiet_network()
        router = network.routers[0]
        ivc = router.input_vcs[EAST][0]
        body = Packet(source=0, destination=1, length=3,
                      creation_cycle=0).make_flits()[1]
        ivc.buffer.push(body)  # stale flit with the VC still idle
        with pytest.raises(AssertionError):
            router.accept_flit(EAST, flit_for(), cycle=0)


class TestCreditViolations:
    def test_forged_credit_raises_on_overflow(self):
        network = quiet_network()
        router = network.routers[0]
        with pytest.raises(ValueError):
            router.receive_credit(EAST, 0)  # counter already full

    def test_stolen_credit_surfaces_at_traversal(self):
        """Drain the granted output VC's credits between the switch grant
        and the traversal: the traversal hits the underflow check.
        (Stealing credits *before* the grant merely stalls the flit --
        eligibility is re-checked at allocation.)"""
        network = quiet_network(kind=RouterKind.SPECULATIVE_VC)
        packet = Packet(source=0, destination=2, length=1, creation_cycle=0)
        network.sources[0].enqueue(packet)
        router = network.routers[0]
        for _ in range(10):
            network.step()
            if router.pending_st:
                break
        assert router.pending_st, "head never won the switch"
        port, vc = router.pending_st[0]
        ivc = router.input_vcs[port][vc]
        counter = router.output_vcs[ivc.route][ivc.out_vc].credits
        while counter.available:
            counter.consume()
        with pytest.raises(ValueError):
            network.step()

    def test_stolen_credits_before_grant_stall_not_crash(self):
        network = quiet_network(kind=RouterKind.SPECULATIVE_VC)
        packet = Packet(source=0, destination=2, length=1, creation_cycle=0)
        network.sources[0].enqueue(packet)
        router = network.routers[0]
        network.step()  # inject + route
        for out_vc in router.output_vcs[EAST]:
            while out_vc.credits.available:
                out_vc.credits.consume()
        network.run(30)  # no grant can happen; must not raise
        assert packet.ejection_cycle is None
        assert router.stats.credits_stalled > 0

    def test_credit_invariant_check_catches_corruption(self):
        network = quiet_network()
        counter = network.routers[0].output_vcs[EAST][0].credits
        counter._credits = 99  # bypass the API
        with pytest.raises(AssertionError):
            network.check_credit_invariants()


class TestRouterStateViolations:
    def test_grant_on_empty_vc_raises(self):
        network = quiet_network()
        router = network.routers[0]
        router.pending_st.append((EAST, 0))
        with pytest.raises(AssertionError):
            network.step()

    def test_grant_without_route_raises(self):
        network = quiet_network()
        router = network.routers[0]
        router.input_vcs[EAST][0].buffer.push(flit_for())
        router.pending_st.append((EAST, 0))
        with pytest.raises(AssertionError):
            network.step()

    def test_misdelivered_flit_raises_at_sink(self):
        network = quiet_network()
        sink = network.sinks[3]
        with pytest.raises(AssertionError):
            sink.accept(flit_for(dst=1), cycle=0)


class TestConservationCheck:
    def test_vanished_flit_detected(self):
        network = quiet_network()
        packet = Packet(source=0, destination=3, length=5, creation_cycle=0)
        network.sources[0].enqueue(packet)
        network.run(3)
        # steal a buffered flit
        router = network.routers[0]
        ivc = router.input_vcs[LOCAL][0]
        assert ivc.buffer, "expected an in-flight flit to steal"
        ivc.buffer.pop()
        with pytest.raises(AssertionError):
            network.check_conservation()


class TestSourceMisuse:
    def test_source_requires_credit(self):
        network = quiet_network()
        source = network.sources[0]
        while source.credits[0].available:
            source.credits[0].consume()
        while source.credits[1].available:
            source.credits[1].consume()
        packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
        source.enqueue(packet)
        injected = source.inject(network.routers[0], cycle=0)
        assert injected is None  # blocked, not crashed
        assert source.backlog_flits == 1
