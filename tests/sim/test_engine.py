"""Tests for the simulation driver (warm-up, sampling, drain)."""

import math

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator, simulate

FAST = MeasurementConfig(
    warmup_cycles=100, sample_packets=150, max_cycles=8_000, drain_cycles=3_000
)


def config(load, kind=RouterKind.WORMHOLE, radix=4, **kw):
    return SimConfig(
        router_kind=kind, mesh_radix=radix, injection_fraction=load,
        buffers_per_vc=8, seed=9, **kw,
    )


class TestSimulate:
    def test_light_load_drains(self):
        result = simulate(config(0.1), FAST)
        assert not result.saturated
        assert result.latency is not None
        assert result.sample_packets >= FAST.sample_packets
        assert result.latency.count >= FAST.sample_packets

    def test_latency_reasonable_on_small_mesh(self):
        # 4x4 mesh: avg 2.67 hops -> zero load ~ 4*2.67 + 8 ~ 19.
        result = simulate(config(0.05), FAST)
        assert 14 < result.average_latency < 24

    def test_accepted_tracks_offered_below_saturation(self):
        result = simulate(config(0.3), FAST)
        assert result.accepted_fraction == pytest.approx(0.3, abs=0.06)

    def test_overload_saturates(self):
        overloaded = MeasurementConfig(
            warmup_cycles=400, sample_packets=4_000, max_cycles=3_000,
            drain_cycles=200,
        )
        result = simulate(config(0.95), overloaded)
        assert result.saturated
        assert math.isinf(result.average_latency)
        # accepted throughput caps out below offered
        assert result.accepted_fraction < 0.9

    def test_latency_increases_with_load(self):
        light = simulate(config(0.05), FAST)
        heavy = simulate(config(0.4), FAST)
        assert heavy.average_latency > light.average_latency

    def test_deterministic_given_seed(self):
        a = simulate(config(0.2), FAST)
        b = simulate(config(0.2), FAST)
        assert a.average_latency == b.average_latency
        assert a.cycles_simulated == b.cycles_simulated

    def test_different_seeds_differ(self):
        a = simulate(config(0.2), FAST)
        b = simulate(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4,
            injection_fraction=0.2, buffers_per_vc=8, seed=10,
        ), FAST)
        assert a.average_latency != b.average_latency

    def test_invariants_mode(self):
        # Full conservation + credit checks every cycle.
        simulator = Simulator(config(0.3), FAST, check_invariants=True)
        result = simulator.run()
        assert result.latency is not None

    def test_spec_counters_populated(self):
        result = simulate(
            config(0.2, kind=RouterKind.SPECULATIVE_VC, num_vcs=2), FAST
        )
        assert result.spec_grants > 0
        assert 0 <= result.spec_wasted <= result.spec_grants

    def test_nonspec_has_no_spec_counters(self):
        result = simulate(config(0.2), FAST)
        assert result.spec_grants == 0
        assert result.spec_wasted == 0

    def test_speculation_mostly_successful_at_low_load(self):
        """At low load output VCs are free, so speculation almost always
        succeeds -- the paper's rationale for why it removes the VA stage
        without a throughput price."""
        result = simulate(
            config(0.1, kind=RouterKind.SPECULATIVE_VC, num_vcs=2), FAST
        )
        success = 1.0 - result.spec_wasted / result.spec_grants
        assert success > 0.9
