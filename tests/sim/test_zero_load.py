"""Paper anchor tests: zero-load latencies on the 8x8 mesh (Section 5).

These run the real simulator at 5% load and pin the measured averages to
the figures' quoted zero-load numbers:

* Figure 13/14: wormhole 29 cycles.
* Figure 13: non-speculative VC 36 (2vcsX4bufs); Figure 14: 35 (2vcsX8bufs).
* Figure 13/14: speculative VC 30 / 29 -- equal to wormhole per hop.
* Figure 17: single-cycle routers 16.
"""

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

pytestmark = pytest.mark.sim

MEAS = MeasurementConfig(warmup_cycles=200, sample_packets=300, max_cycles=30_000)


def zero_load_latency(kind, vcs, bufs, **kw):
    config = SimConfig(
        router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
        injection_fraction=0.05, seed=42, **kw,
    )
    return simulate(config, MEAS).average_latency


class TestZeroLoadAnchors:
    def test_wormhole_29(self):
        assert zero_load_latency(RouterKind.WORMHOLE, 1, 8) == pytest.approx(29, abs=1.2)

    def test_nonspec_vc_35_to_36(self):
        latency = zero_load_latency(RouterKind.VIRTUAL_CHANNEL, 2, 4)
        assert latency == pytest.approx(35.5, abs=1.5)

    def test_spec_vc_29_to_30(self):
        latency = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 4)
        assert latency == pytest.approx(29.5, abs=1.5)

    def test_single_cycle_wormhole_16(self):
        latency = zero_load_latency(RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 8)
        assert latency == pytest.approx(16.5, abs=1.2)

    def test_single_cycle_vc_16(self):
        latency = zero_load_latency(RouterKind.SINGLE_CYCLE_VC, 2, 4)
        assert latency == pytest.approx(16.5, abs=1.2)

    def test_spec_vc_matches_wormhole(self):
        wormhole = zero_load_latency(RouterKind.WORMHOLE, 1, 8)
        spec = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 4)
        assert abs(spec - wormhole) <= 1.0

    def test_nonspec_vc_one_stage_slower(self):
        """The extra pipeline stage costs ~1 cycle per hop: with ~6.3
        routers on the average path, VC is ~6 cycles slower at zero load."""
        wormhole = zero_load_latency(RouterKind.WORMHOLE, 1, 8)
        vc = zero_load_latency(RouterKind.VIRTUAL_CHANNEL, 2, 4)
        assert 4.5 <= vc - wormhole <= 8.0

    def test_unit_latency_model_underestimates_by_half(self):
        """Section 5.2: the single-cycle model underestimates zero-load
        latency substantially (the paper quotes 56% against its
        pipelined counterpart's 29-36 cycles)."""
        pipelined = zero_load_latency(RouterKind.VIRTUAL_CHANNEL, 2, 4)
        unit = zero_load_latency(RouterKind.SINGLE_CYCLE_VC, 2, 4)
        assert unit < 0.55 * pipelined

    def test_more_buffers_do_not_raise_zero_load(self):
        small = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 4)
        large = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 8)
        assert large <= small + 0.5

    def test_fig18_slow_credits_leave_zero_load_alone(self):
        """Credit latency does not directly impact zero-load latency
        (Section 6) -- only buffer turnaround, hence throughput."""
        fast = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 4,
                                 credit_propagation=1)
        slow = zero_load_latency(RouterKind.SPECULATIVE_VC, 2, 4,
                                 credit_propagation=4)
        assert slow == pytest.approx(fast, abs=3.0)
