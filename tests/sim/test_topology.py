"""Tests for the mesh topology and capacity."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.topology import (
    EAST,
    LOCAL,
    Mesh,
    NORTH,
    NUM_PORTS,
    OPPOSITE,
    SOUTH,
    WEST,
)

meshes = st.integers(min_value=2, max_value=10).map(Mesh)
k8 = Mesh(8)


class TestCoordinates:
    def test_row_major_numbering(self):
        assert k8.coordinates(0) == (0, 0)
        assert k8.coordinates(7) == (7, 0)
        assert k8.coordinates(8) == (0, 1)
        assert k8.coordinates(63) == (7, 7)

    def test_node_at_inverse(self):
        for node in k8.nodes():
            assert k8.node_at(*k8.coordinates(node)) == node

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            k8.coordinates(64)
        with pytest.raises(ValueError):
            k8.node_at(8, 0)

    def test_rejects_tiny_mesh(self):
        with pytest.raises(ValueError):
            Mesh(1)


class TestNeighbors:
    def test_interior_node(self):
        node = k8.node_at(3, 3)
        assert k8.neighbor(node, EAST) == k8.node_at(4, 3)
        assert k8.neighbor(node, WEST) == k8.node_at(2, 3)
        assert k8.neighbor(node, NORTH) == k8.node_at(3, 2)
        assert k8.neighbor(node, SOUTH) == k8.node_at(3, 4)

    def test_edges_have_no_neighbor(self):
        assert k8.neighbor(k8.node_at(0, 0), WEST) is None
        assert k8.neighbor(k8.node_at(0, 0), NORTH) is None
        assert k8.neighbor(k8.node_at(7, 7), EAST) is None
        assert k8.neighbor(k8.node_at(7, 7), SOUTH) is None

    def test_local_has_no_neighbor(self):
        assert k8.neighbor(0, LOCAL) is None

    def test_unknown_port(self):
        with pytest.raises(ValueError):
            k8.neighbor(0, 9)

    @given(meshes)
    def test_links_are_symmetric(self, mesh):
        links = set(mesh.links())
        for node, port, neighbor in links:
            assert (neighbor, OPPOSITE[port], node) in links

    @given(meshes)
    def test_link_count(self, mesh):
        # A k x k mesh has 2 * k * (k-1) bidirectional links = 4k(k-1)
        # directed channels.
        assert len(list(mesh.links())) == 4 * mesh.k * (mesh.k - 1)


class TestDistancesAndCapacity:
    def test_hop_distance(self):
        assert k8.hop_distance(k8.node_at(0, 0), k8.node_at(7, 7)) == 14
        assert k8.hop_distance(5, 5) == 0

    def test_average_hop_distance_8x8(self):
        # Mean per-dimension distance (k^2-1)/3k = 2.625; x2 dims,
        # rescaled by 64/63 for self-exclusion: ~5.33.
        assert k8.average_hop_distance() == pytest.approx(5.25 * 64 / 63)

    @given(meshes)
    def test_average_matches_exhaustive(self, mesh):
        n = mesh.num_nodes
        total = sum(
            mesh.hop_distance(s, d)
            for s in mesh.nodes()
            for d in mesh.nodes()
            if s != d
        )
        assert mesh.average_hop_distance() == pytest.approx(total / (n * (n - 1)))

    def test_capacity_8x8_is_half_flit(self):
        # The paper's traffic axis: 100% of capacity = 0.5 flits/node/cycle.
        assert k8.capacity_flits_per_node_cycle() == 0.5

    @given(meshes)
    def test_capacity_formula(self, mesh):
        assert mesh.capacity_flits_per_node_cycle() == pytest.approx(4.0 / mesh.k)

    def test_num_ports_constant(self):
        assert NUM_PORTS == 5
