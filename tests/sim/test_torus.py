"""Tests for the torus topology, torus routing, and dateline VC classes."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.dateline import (
    AllVCs,
    DatelineVCs,
    O1TurnVCs,
    class_partition,
    make_vc_policy,
    o1turn_choice,
    vc_class,
)
from repro.sim.flit import Packet
from repro.sim.routing import dimension_order_route, route_path
from repro.sim.topology import (
    EAST,
    LOCAL,
    Mesh,
    NORTH,
    OPPOSITE,
    SOUTH,
    Torus,
    WEST,
    make_topology,
    port_dimension,
)

t4 = Torus(4)
t8 = Torus(8)


class TestTorusTopology:
    def test_wrap_neighbors(self):
        assert t4.neighbor(t4.node_at(3, 0), EAST) == t4.node_at(0, 0)
        assert t4.neighbor(t4.node_at(0, 0), WEST) == t4.node_at(3, 0)
        assert t4.neighbor(t4.node_at(0, 0), NORTH) == t4.node_at(0, 3)
        assert t4.neighbor(t4.node_at(0, 3), SOUTH) == t4.node_at(0, 0)

    def test_interior_matches_mesh(self):
        mesh = Mesh(4)
        node = t4.node_at(1, 1)
        for port in (EAST, WEST, NORTH, SOUTH):
            assert t4.neighbor(node, port) == mesh.neighbor(node, port)

    def test_is_wrap_link(self):
        assert t4.is_wrap_link(t4.node_at(3, 1), EAST)
        assert not t4.is_wrap_link(t4.node_at(2, 1), EAST)
        assert t4.is_wrap_link(t4.node_at(0, 1), WEST)
        assert t4.is_wrap_link(t4.node_at(1, 0), NORTH)
        assert t4.is_wrap_link(t4.node_at(1, 3), SOUTH)

    def test_mesh_has_no_wrap_links(self):
        mesh = Mesh(4)
        assert not mesh.has_wrap_links
        assert not any(
            mesh.is_wrap_link(n, p)
            for n in mesh.nodes() for p in (EAST, WEST, NORTH, SOUTH)
            if mesh.neighbor(n, p) is not None
        )

    def test_every_node_has_four_neighbors(self):
        for node in t4.nodes():
            for port in (EAST, WEST, NORTH, SOUTH):
                assert t4.neighbor(node, port) is not None

    @given(st.integers(min_value=2, max_value=8).map(Torus))
    def test_links_symmetric_and_counted(self, torus):
        links = set(torus.links())
        assert len(links) == 4 * torus.k * torus.k
        for node, port, neighbor in links:
            assert (neighbor, OPPOSITE[port], node) in links

    def test_ring_hop_distance(self):
        assert t8.hop_distance(t8.node_at(0, 0), t8.node_at(7, 0)) == 1
        assert t8.hop_distance(t8.node_at(0, 0), t8.node_at(4, 0)) == 4
        assert t8.hop_distance(t8.node_at(1, 1), t8.node_at(6, 6)) == 6

    @given(st.integers(min_value=2, max_value=8).map(Torus))
    def test_average_matches_exhaustive(self, torus):
        n = torus.num_nodes
        total = sum(
            torus.hop_distance(s, d)
            for s in torus.nodes() for d in torus.nodes() if s != d
        )
        assert torus.average_hop_distance() == pytest.approx(
            total / (n * (n - 1))
        )

    def test_torus_shorter_than_mesh(self):
        assert t8.average_hop_distance() < Mesh(8).average_hop_distance()

    def test_capacity_doubled(self):
        assert t8.capacity_flits_per_node_cycle() == 1.0
        assert Mesh(8).capacity_flits_per_node_cycle() == 0.5

    def test_factory(self):
        assert isinstance(make_topology("torus", 4), Torus)
        assert type(make_topology("mesh", 4)) is Mesh
        with pytest.raises(ValueError):
            make_topology("hypercube", 4)

    def test_port_dimension(self):
        assert port_dimension(EAST) == port_dimension(WEST) == 0
        assert port_dimension(NORTH) == port_dimension(SOUTH) == 1
        assert port_dimension(LOCAL) is None
        with pytest.raises(ValueError):
            port_dimension(9)


class TestTorusRouting:
    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_paths_are_minimal(self, src, dst):
        path = route_path(t8, src, dst)
        assert len(path) - 1 == t8.hop_distance(src, dst)

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_paths_reach_destination(self, src, dst):
        node = src
        for port in route_path(t8, src, dst):
            if port == LOCAL:
                break
            node = t8.neighbor(node, port)
        assert node == dst

    def test_takes_short_way_around(self):
        # (0,0) -> (7,0): one hop WEST via the wrap link, not 7 east.
        assert dimension_order_route(t8, t8.node_at(0, 0), t8.node_at(7, 0)) == WEST

    def test_tie_breaks_east(self):
        # distance 4 both ways on a ring of 8.
        assert dimension_order_route(t8, t8.node_at(0, 0), t8.node_at(4, 0)) == EAST

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=0, max_value=63))
    def test_wraps_at_most_once_per_dimension(self, src, dst):
        node = src
        wraps = {0: 0, 1: 0}
        for port in route_path(t8, src, dst):
            if port == LOCAL:
                break
            if t8.is_wrap_link(node, port):
                wraps[port_dimension(port)] += 1
            node = t8.neighbor(node, port)
        assert wraps[0] <= 1 and wraps[1] <= 1


class TestVCClassPartition:
    def test_partition_two(self):
        assert class_partition(2) == ((0,), (1,))

    def test_partition_odd(self):
        assert class_partition(3) == ((0, 1), (2,))

    def test_partition_four(self):
        assert class_partition(4) == ((0, 1), (2, 3))

    def test_vc_class(self):
        assert vc_class(0, 2) == 0
        assert vc_class(1, 2) == 1
        assert vc_class(1, 4) == 0
        assert vc_class(2, 4) == 1

    def test_rejects_single_vc(self):
        with pytest.raises(ValueError):
            class_partition(1)


def head_flit():
    return Packet(source=0, destination=1, length=1, creation_cycle=0).make_flits()[0]


class TestDatelinePolicy:
    policy = DatelineVCs(2)

    def allowed(self, node, arrival, in_vc, route):
        return self.policy.allowed_vcs(t4, node, arrival, in_vc, route, head_flit())

    def test_fresh_dimension_class0(self):
        # injected (LOCAL) heading EAST over a normal link
        assert self.allowed(t4.node_at(1, 1), LOCAL, 0, EAST) == (0,)

    def test_crossing_dateline_gives_class1(self):
        assert self.allowed(t4.node_at(3, 1), LOCAL, 0, EAST) == (1,)

    def test_stays_class1_after_crossing(self):
        # arrived in class-1 VC, continuing EAST over a normal link
        assert self.allowed(t4.node_at(0, 1), WEST, 1, EAST) == (1,)

    def test_dimension_change_resets_class(self):
        # arrived in class-1 VC on X, turning SOUTH over a normal link
        assert self.allowed(t4.node_at(0, 1), WEST, 1, SOUTH) == (0,)

    def test_ejection_unrestricted(self):
        assert set(self.allowed(t4.node_at(0, 1), WEST, 1, LOCAL)) == {0, 1}

    def test_class0_continues_class0(self):
        assert self.allowed(t4.node_at(1, 1), WEST, 0, EAST) == (0,)


class TestO1TurnPolicy:
    def test_choice_deterministic(self):
        packet = Packet(source=0, destination=1, length=1, creation_cycle=0)
        assert o1turn_choice(packet) == o1turn_choice(packet)

    def test_choice_roughly_balanced(self):
        packets = [
            Packet(source=0, destination=1, length=1, creation_cycle=0)
            for _ in range(400)
        ]
        yx = sum(o1turn_choice(p) == "yx" for p in packets)
        assert 120 < yx < 280

    def test_classes_follow_choice(self):
        policy = O1TurnVCs(2)
        flit = head_flit()
        allowed = policy.allowed_vcs(Mesh(4), 5, LOCAL, 0, EAST, flit)
        expected = (1,) if o1turn_choice(flit.packet) == "yx" else (0,)
        assert allowed == expected

    def test_ejection_unrestricted(self):
        policy = O1TurnVCs(2)
        assert set(policy.allowed_vcs(Mesh(4), 5, EAST, 0, LOCAL, head_flit())) == {0, 1}


class TestPolicyFactory:
    def test_mesh_default_unrestricted(self):
        assert isinstance(make_vc_policy("xy", Mesh(4), 2), AllVCs)

    def test_torus_gets_dateline(self):
        assert isinstance(make_vc_policy("xy", t4, 2), DatelineVCs)

    def test_o1turn_on_mesh(self):
        assert isinstance(make_vc_policy("o1turn", Mesh(4), 2), O1TurnVCs)

    def test_o1turn_on_torus_rejected(self):
        with pytest.raises(ValueError):
            make_vc_policy("o1turn", t4, 4)

    def test_all_vcs_policy(self):
        policy = AllVCs(3)
        assert policy.allowed_vcs(Mesh(4), 0, LOCAL, 0, EAST, head_flit()) == (0, 1, 2)
