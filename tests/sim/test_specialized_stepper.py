"""Specialization-cache and fallback correctness.

The fast stepper compiles one step closure per router at wiring time,
keyed on :func:`specialization_key`.  These tests pin the cache's
contract -- same key, same interned plan; different key, different
plan -- and every guard that must force the generic path: unsupported
configs, the reference stepper, probes/telemetry/tracers attached
after wiring, monkeypatched step methods, and swapped allocator types.
"""

from dataclasses import replace

import pytest

from repro.sim.allocators import SeparableAllocator
from repro.sim.config import RouterKind, SimConfig
from repro.sim.network import Network
from repro.sim.routers.spec_vc import SpeculativeVCRouter
from repro.sim.routers.specialized import (
    compile_step,
    plan_for,
    specialization_key,
)
from repro.sim.trace import Tracer
from repro.sim.validation import ValidationSuite
from repro.telemetry import TelemetrySession


def spec_config(**overrides):
    defaults = dict(
        router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4, num_vcs=2,
        buffers_per_vc=5, injection_fraction=0.3, seed=3,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestPlanCache:
    def test_same_key_interns_one_plan(self):
        # Fields outside the specialization key (seed, load) must not
        # split the cache.
        a = spec_config(seed=1, injection_fraction=0.1)
        b = spec_config(seed=99, injection_fraction=0.5)
        assert specialization_key(a) == specialization_key(b)
        assert plan_for(a) is plan_for(b)

    @pytest.mark.parametrize(
        "override",
        [
            dict(num_vcs=3),
            dict(buffers_per_vc=8),
            dict(mesh_radix=6),
            dict(router_kind=RouterKind.VIRTUAL_CHANNEL),
            dict(routing_function="yx"),
            dict(topology="torus"),
            dict(packet_length=8),
        ],
        ids=lambda o: next(iter(o)),
    )
    def test_differing_configs_get_distinct_plans(self, override):
        base = spec_config()
        varied = spec_config(**override)
        assert specialization_key(base) != specialization_key(varied)
        plan = plan_for(base)
        other = plan_for(varied)
        assert plan is not None and other is not None
        assert plan is not other

    @pytest.mark.parametrize(
        "override",
        [
            dict(allocator_kind="maximum"),
            dict(routing_function="o1turn"),
            dict(routing_function="adaptive"),
            dict(speculation_priority="equal"),
        ],
        ids=lambda o: next(iter(o.values())),
    )
    def test_envelope_dimensions_have_distinct_plans(self, override):
        # Every built-in config dimension compiles; each gets its own
        # interned plan (the closures differ per dimension).
        base = spec_config()
        varied = spec_config(**override)
        assert specialization_key(base) != specialization_key(varied)
        plan = plan_for(varied)
        assert plan is not None
        assert plan is not plan_for(base)
        assert plan is plan_for(replace(varied, seed=41))

    def test_plan_lookup_is_repeatable(self):
        config = spec_config()
        assert plan_for(config) is plan_for(replace(config, seed=7))
        maximum = spec_config(allocator_kind="maximum")
        assert plan_for(maximum) is plan_for(replace(maximum, seed=7))

    @pytest.mark.parametrize("routing", ["o1turn", "adaptive"])
    def test_route_memos_intern_on_the_plan(self, routing):
        # The packet-dependent route memos are computed lazily per node
        # and interned on the plan cache: two networks with the same
        # config share the same table objects.
        config = spec_config(routing_function=routing)
        plan = plan_for(config)
        assert plan is not None
        first = Network(config)
        cache_size = len(plan.cache)
        assert cache_size == len(first.routers)
        second = Network(replace(config, seed=23))
        assert len(plan.cache) == cache_size  # no recompute
        for a, b in zip(first.routers, second.routers):
            if routing == "o1turn":
                assert a._ensure_o1turn_tables() is b._ensure_o1turn_tables()
            else:
                assert a._ensure_adaptive_table() is b._ensure_adaptive_table()


class TestNetworkBinding:
    @pytest.mark.parametrize(
        "override",
        [
            dict(),
            dict(allocator_kind="maximum"),
            dict(routing_function="o1turn"),
            dict(routing_function="adaptive"),
            dict(speculation_priority="equal"),
        ],
        ids=lambda o: next(iter(o.values()), "default"),
    )
    def test_fast_stepper_compiles_every_router(self, override):
        network = Network(spec_config(**override))
        assert network.generic_step_reason is None
        assert all(r._step_fn is not None for r in network.routers)
        assert network.routers_specialized == len(network.routers)
        # Each router gets its own closure over its own state arrays.
        fns = {id(r._step_fn) for r in network.routers}
        assert len(fns) == len(network.routers)

    def test_reference_stepper_never_compiles(self):
        network = Network(spec_config(stepper="reference"))
        assert network.generic_step_reason == "reference-stepper"
        assert all(r._step_fn is None for r in network.routers)
        assert network.routers_specialized == 0

    def test_unsupported_config_falls_back(self, monkeypatch):
        # No built-in config is outside the envelope any more; emulate
        # an out-of-tree config dimension by blanking the plan lookup.
        from repro.sim.routers import specialized

        monkeypatch.setattr(specialized, "plan_for", lambda config: None)
        network = Network(spec_config())
        assert network.generic_step_reason == "unsupported-config"
        assert all(r._step_fn is None for r in network.routers)
        assert network.routers_specialized == 0

    def test_checked_attach_drops_compiled_steps(self):
        network = Network(spec_config())
        assert network.generic_step_reason is None
        suite = ValidationSuite.default(network.config)
        suite.attach(network)
        assert network.generic_step_reason == "checked"
        assert all(r._step_fn is None for r in network.routers)

    def test_telemetry_attach_drops_compiled_steps(self):
        network = Network(spec_config())
        session = TelemetrySession()
        session.attach(network)
        assert network.generic_step_reason == "telemetry"
        assert all(r._step_fn is None for r in network.routers)

    def test_tracer_attach_drops_compiled_steps(self):
        network = Network(spec_config())
        Tracer.attach(network)
        assert network.generic_step_reason == "trace"
        assert all(r._step_fn is None for r in network.routers)


class TestCompileGuards:
    @staticmethod
    def _fresh_router():
        network = Network(spec_config())
        router = network.routers[5]
        assert compile_step(router) is not None
        return router

    def test_instance_monkeypatch_refuses_compile(self):
        router = self._fresh_router()
        router._traverse = lambda *a, **k: None
        assert compile_step(router) is None

    def test_class_monkeypatch_refuses_compile(self, monkeypatch):
        router = self._fresh_router()
        monkeypatch.setattr(
            SpeculativeVCRouter, "_st_phase", lambda self, cycle: None
        )
        assert compile_step(router) is None

    def test_tracer_refuses_compile(self):
        router = self._fresh_router()
        router.tracer = object()
        assert compile_step(router) is None

    def test_vc_allocator_subclass_refuses_compile(self):
        # The fused stages evolve SeparableAllocator state directly; a
        # subclass (e.g. a recording proxy) may override behaviour the
        # closure bypasses, so exact-type matching is required.
        router = self._fresh_router()

        class RecordingAllocator(SeparableAllocator):
            pass

        original = router._vc_allocator
        router._vc_allocator = RecordingAllocator(
            original.num_groups, original.members_per_group,
            original.num_resources,
        )
        assert compile_step(router) is None

    def test_spec_suballocator_swap_refuses_compile(self):
        router = self._fresh_router()

        class RecordingAllocator(SeparableAllocator):
            pass

        nonspec = router._spec_switch_allocator._nonspec
        router._spec_switch_allocator._nonspec = RecordingAllocator(
            nonspec.num_groups, nonspec.members_per_group,
            nonspec.num_resources,
        )
        assert compile_step(router) is None

    def test_maximum_allocator_subclass_refuses_compile(self):
        # Same exact-type discipline for the batched bitmask matcher:
        # a proxy subclass must push the router onto the generic path.
        from repro.sim.matching import MaximumMatchingAllocator

        network = Network(spec_config(allocator_kind="maximum"))
        router = network.routers[5]
        assert compile_step(router) is not None

        class RecordingMatcher(MaximumMatchingAllocator):
            pass

        original = router._vc_allocator
        router._vc_allocator = RecordingMatcher(
            original.num_groups, original.members_per_group,
            original.num_resources,
        )
        assert compile_step(router) is None
