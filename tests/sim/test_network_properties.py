"""Property-based network tests: random configurations, hard invariants.

Hypothesis drives random (router kind, VCs, buffers, radix, routing,
topology, load, seed) combinations through short simulations, asserting
the invariants no configuration may break: flit conservation, credit
bounds, per-packet in-order delivery, correct destinations, and drain
after the sources stop.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.config import RouterKind, SimConfig
from repro.sim.network import Network

VC_KINDS = [
    RouterKind.VIRTUAL_CHANNEL,
    RouterKind.SPECULATIVE_VC,
    RouterKind.SINGLE_CYCLE_VC,
]
ALL_KINDS = VC_KINDS + [
    RouterKind.WORMHOLE,
    RouterKind.SINGLE_CYCLE_WORMHOLE,
]


def valid_configs():
    """Strategy over structurally valid SimConfigs (small, fast ones)."""

    def build(kind, vcs, bufs, radix, load, routing, topology, seed, length):
        if not kind.uses_vcs:
            vcs = 1
            routing = "xy" if routing in ("o1turn", "adaptive") else routing
            topology = "mesh"
        if topology == "torus" and routing in ("o1turn", "adaptive"):
            routing = "xy"
        # keep the packet rate within the 1-flit/cycle injection channel
        capacity = (8.0 if topology == "torus" else 4.0) / radix
        load = min(load, 0.9 * length / capacity)
        return SimConfig(
            router_kind=kind,
            num_vcs=vcs,
            buffers_per_vc=bufs,
            mesh_radix=radix,
            injection_fraction=load,
            routing_function=routing,
            topology=topology,
            packet_length=length,
            seed=seed,
        )

    return st.builds(
        build,
        kind=st.sampled_from(ALL_KINDS),
        vcs=st.sampled_from([2, 3, 4]),
        bufs=st.integers(min_value=1, max_value=6),
        radix=st.sampled_from([2, 3, 4]),
        load=st.floats(min_value=0.05, max_value=0.7),
        routing=st.sampled_from(["xy", "yx", "o1turn", "adaptive"]),
        topology=st.sampled_from(["mesh", "mesh", "torus"]),
        seed=st.integers(min_value=0, max_value=10_000),
        length=st.sampled_from([1, 2, 5, 8]),
    )


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(valid_configs())
def test_invariants_under_random_configs(config):
    network = Network(config)
    for _ in range(6):
        network.run(40)
        network.check_conservation()
        network.check_credit_invariants()

    # Destination correctness is asserted inside Sink.accept; here we
    # check in-order, complete delivery per packet.
    for sink in network.sinks:
        for packet in sink.delivered:
            assert packet.ejection_cycle is not None
            assert packet.destination == sink.node

    # Stop the sources; everything in flight must drain (no deadlock).
    for generator in network.generators:
        generator.rate_packets_per_cycle = 0.0
    for _ in range(5_000):
        network.step()
        if network.drained():
            break
    assert network.drained(), f"undrained: {config}"
    assert network.total_flits_injected() == network.total_flits_ejected()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    load=st.floats(min_value=0.1, max_value=0.5),
)
def test_same_seed_same_result(seed, load):
    """Bit-for-bit determinism of the whole network."""
    def run():
        network = Network(SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=3, mesh_radix=3, injection_fraction=load,
            seed=seed,
        ))
        network.run(300)
        return (
            network.total_flits_injected(),
            network.total_flits_ejected(),
            sum(r.stats.spec_wasted for r in network.routers),
        )

    assert run() == run()


@settings(max_examples=8, deadline=None)
@given(st.integers(min_value=0, max_value=500))
def test_latency_never_below_minimum(seed):
    """No packet beats the pipeline's physical minimum latency."""
    network = Network(SimConfig(
        router_kind=RouterKind.WORMHOLE, buffers_per_vc=8, mesh_radix=4,
        injection_fraction=0.3, seed=seed,
    ))
    network.run(400)
    mesh = network.mesh
    checked = 0
    for sink in network.sinks:
        for packet in sink.delivered:
            hops = mesh.hop_distance(packet.source, packet.destination)
            minimum = 4 * hops + 3 + packet.length
            assert packet.latency >= minimum
            checked += 1
    assert checked > 0
