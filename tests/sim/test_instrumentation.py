"""Counter correctness on tiny meshes, and the RunCounters contract."""

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate
from repro.sim.instrumentation import RunCounters

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=4_000, drain_cycles=1_500
)


def run(kind=RouterKind.WORMHOLE, **overrides):
    defaults = dict(
        router_kind=kind, mesh_radix=2, buffers_per_vc=8,
        injection_fraction=0.2, seed=5,
    )
    defaults.update(overrides)
    return simulate(SimConfig(**defaults), FAST)


class TestCounters:
    def test_phase_cycles_sum_to_total(self):
        result = run()
        counters = result.counters
        assert counters is not None
        assert counters.total_cycles == result.cycles_simulated
        assert counters.warmup_cycles == FAST.warmup_cycles
        assert counters.sample_cycles > 0

    def test_flit_conservation_on_2x2(self):
        result = run()
        counters = result.counters
        # Everything injected was ejected (the run drained) and every
        # ejected flit crossed at least one router's crossbar.
        assert not result.saturated
        assert counters.flits_injected > 0
        assert counters.flits_ejected <= counters.flits_injected
        assert counters.flits_forwarded >= counters.flits_ejected

    def test_switch_grants_cover_forwarded_flits(self):
        counters = run().counters
        # Every forwarded flit needed a switch grant (grants can exceed
        # flits when a granted VC had nothing to send by ST time).
        assert counters.sa_grants >= counters.flits_forwarded

    def test_speculation_counters_on_spec_router(self):
        result = run(kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                     buffers_per_vc=4)
        counters = result.counters
        assert counters.spec_grants == result.spec_grants
        assert counters.spec_wasted == result.spec_wasted
        assert counters.spec_grants > 0
        assert 0.0 <= counters.misspeculation_rate <= 1.0

    def test_wormhole_never_speculates(self):
        counters = run().counters
        assert counters.spec_grants == 0
        assert counters.misspeculation_rate == 0.0

    def test_wall_times_recorded_but_not_compared(self):
        a = run()
        b = run()
        assert a.counters.wall_seconds["total"] > 0
        assert set(a.counters.wall_seconds) == {
            "warmup", "sample", "drain", "total"
        }
        # Timing differs between runs, yet counters compare equal.
        assert a.counters == b.counters
        assert a == b

    def test_cycles_per_second_positive(self):
        counters = run().counters
        assert counters.cycles_per_second > 0

    def test_dict_round_trip(self):
        counters = run().counters
        restored = RunCounters.from_dict(counters.to_dict())
        assert restored == counters
        assert restored.wall_seconds == counters.wall_seconds

    def test_describe_mentions_phases(self):
        text = run().counters.describe()
        assert "warmup" in text
        assert "flits forwarded" in text

    def test_specialization_envelope_counters(self):
        fast = run(kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                   buffers_per_vc=4).counters
        assert fast.routers_specialized == 4  # 2x2 mesh
        assert fast.routers_generic == 0
        assert fast.generic_step_reason is None
        generic = run(kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                      buffers_per_vc=4, stepper="reference").counters
        assert generic.routers_specialized == 0
        assert generic.routers_generic == 4
        assert generic.generic_step_reason == "reference-stepper"
        # compare=False: the envelope never splits result equality.
        assert fast == generic
        assert RunCounters.from_dict(generic.to_dict()) == generic

    def test_from_dict_tolerates_pre_envelope_dicts(self):
        # Cached results written before the envelope fields existed
        # must still load; the fields fall back to their defaults.
        data = run().counters.to_dict()
        for legacy_missing in (
            "routers_specialized", "routers_generic", "generic_step_reason"
        ):
            del data[legacy_missing]
        restored = RunCounters.from_dict(data)
        assert restored.routers_specialized == 0
        assert restored.generic_step_reason is None
