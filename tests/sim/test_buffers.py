"""Tests for the input-queue flit buffers."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.buffers import FlitBuffer
from repro.sim.flit import Packet


def flits(n):
    return Packet(source=0, destination=1, length=n, creation_cycle=0).make_flits()


class TestFlitBuffer:
    def test_fifo_order(self):
        buffer = FlitBuffer(8)
        sequence = flits(5)
        for flit in sequence:
            buffer.push(flit)
        assert [buffer.pop() for _ in range(5)] == sequence

    def test_front_does_not_pop(self):
        buffer = FlitBuffer(4)
        (flit,) = flits(1)
        buffer.push(flit)
        assert buffer.front() is flit
        assert len(buffer) == 1

    def test_front_of_empty_is_none(self):
        assert FlitBuffer(2).front() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            FlitBuffer(2).pop()

    def test_overflow_raises(self):
        buffer = FlitBuffer(2)
        f = flits(3)
        buffer.push(f[0])
        buffer.push(f[1])
        with pytest.raises(OverflowError):
            buffer.push(f[2])

    def test_free_slots(self):
        buffer = FlitBuffer(3)
        assert buffer.free_slots == 3
        buffer.push(flits(1)[0])
        assert buffer.free_slots == 2
        assert not buffer.is_full

    def test_bool_and_len(self):
        buffer = FlitBuffer(2)
        assert not buffer
        buffer.push(flits(1)[0])
        assert buffer
        assert len(buffer) == 1

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlitBuffer(0)

    def test_iteration_preserves_order(self):
        buffer = FlitBuffer(8)
        sequence = flits(4)
        for flit in sequence:
            buffer.push(flit)
        assert list(buffer) == sequence

    @given(st.lists(st.sampled_from(["push", "pop"]), max_size=60))
    def test_occupancy_invariant_under_random_ops(self, ops):
        buffer = FlitBuffer(4)
        supply = iter(flits(60))
        model = []
        for op in ops:
            if op == "push" and not buffer.is_full:
                flit = next(supply)
                buffer.push(flit)
                model.append(flit)
            elif op == "pop" and buffer:
                assert buffer.pop() is model.pop(0)
            assert 0 <= len(buffer) <= 4
            assert len(buffer) == len(model)
            assert buffer.front() is (model[0] if model else None)
