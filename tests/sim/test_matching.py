"""Tests for the maximum-matching allocator (the efficiency upper bound)."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.allocators import Request, SeparableAllocator
from repro.sim.matching import MaximumMatchingAllocator, make_allocator

request_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=1),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=20,
)


class TestMaximumMatchingAllocator:
    def test_single_request(self):
        allocator = MaximumMatchingAllocator(2, 2, 3)
        grants = allocator.allocate([Request(0, 1, 2)])
        assert len(grants) == 1
        assert grants[0].resource == 2

    def test_finds_perfect_matching_where_separable_fails(self):
        """The defining case: group 0 can use resources {0, 1}, group 1
        only {0}.  A maximum matching serves both; a separable allocator
        can give resource 0 to group 0 and strand group 1."""
        requests = [
            Request(0, 0, 0), Request(0, 1, 1),   # group 0 -> {0, 1}
            Request(1, 0, 0),                     # group 1 -> {0}
        ]
        maximum = MaximumMatchingAllocator(2, 2, 2)
        assert len(maximum.allocate(requests)) == 2

    def test_busy_resources_masked(self):
        allocator = MaximumMatchingAllocator(2, 1, 2)
        grants = allocator.allocate(
            [Request(0, 0, 0), Request(1, 0, 1)], busy_resources=[1]
        )
        assert [g.resource for g in grants] == [0]

    def test_rotating_fairness_under_contention(self):
        allocator = MaximumMatchingAllocator(2, 1, 1)
        requests = [Request(0, 0, 0), Request(1, 0, 0)]
        winners = [allocator.allocate(requests)[0].group for _ in range(10)]
        assert set(winners) == {0, 1}

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MaximumMatchingAllocator(2, 2, 2).allocate([Request(3, 0, 0)])

    @given(request_lists)
    def test_matching_constraints(self, triples):
        allocator = MaximumMatchingAllocator(5, 2, 5)
        requests = [Request(*t) for t in triples]
        grants = allocator.allocate(requests)
        groups = [g.group for g in grants]
        resources = [g.resource for g in grants]
        assert len(set(groups)) == len(groups)
        assert len(set(resources)) == len(resources)
        request_set = {(r.group, r.member, r.resource) for r in requests}
        assert all((g.group, g.member, g.resource) in request_set for g in grants)

    @given(request_lists)
    def test_never_fewer_grants_than_separable(self, triples):
        """Maximum matching dominates the separable allocator -- the
        'allocation efficiency' the paper says separable designs give up."""
        requests = [Request(*t) for t in triples]
        separable = SeparableAllocator(5, 2, 5)
        maximum = MaximumMatchingAllocator(5, 2, 5)
        assert len(maximum.allocate(requests)) >= len(separable.allocate(requests))

    @given(request_lists)
    @settings(deadline=None)
    def test_maximum_cardinality(self, triples):
        """Cross-check the matching size with networkx's matcher."""
        requests = [Request(*t) for t in triples]
        grants = MaximumMatchingAllocator(5, 2, 5).allocate(requests)

        graph = nx.Graph()
        for r in requests:
            graph.add_edge(("g", r.group), ("r", r.resource))
        if graph.number_of_edges():
            expected = len(nx.algorithms.matching.max_weight_matching(
                graph, maxcardinality=True
            ))
        else:
            expected = 0
        assert len(grants) == expected


class TestFactory:
    def test_kinds(self):
        assert isinstance(
            make_allocator("separable", 2, 2, 2), SeparableAllocator
        )
        assert isinstance(
            make_allocator("maximum", 2, 2, 2), MaximumMatchingAllocator
        )

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_allocator("magic", 2, 2, 2)
