"""Tests for the ablation studies (small-scale runs)."""

import pytest

from repro.experiments.ablations import (
    allocator_ablation,
    arbiter_ablation,
    buffer_depth_sweep,
    traffic_pattern_study,
)
from repro.sim.config import MeasurementConfig

pytestmark = pytest.mark.sim

FAST = MeasurementConfig(
    warmup_cycles=150, sample_packets=200, max_cycles=8_000,
    drain_cycles=2_500,
)


class TestAllocatorAblation:
    def test_structure_and_render(self):
        result = allocator_ablation(loads=(0.3,), measurement=FAST)
        assert set(result.runs) == {"separable (paper)", "maximum matching"}
        assert "separable" in result.render()

    def test_maximum_never_much_worse(self):
        """The paper's 'small amount of allocation efficiency': exact
        matching should be at least as good (within noise) as separable."""
        result = allocator_ablation(loads=(0.5,), measurement=FAST)
        separable = result.runs["separable (paper)"][0].average_latency
        maximum = result.runs["maximum matching"][0].average_latency
        assert maximum <= separable * 1.10


class TestArbiterAblation:
    def test_both_policies_work(self):
        result = arbiter_ablation(loads=(0.3,), measurement=FAST)
        for runs in result.runs.values():
            assert not runs[0].saturated

    def test_policies_comparable_at_moderate_load(self):
        result = arbiter_ablation(loads=(0.4,), measurement=FAST)
        matrix = result.runs["matrix (paper)"][0].average_latency
        round_robin = result.runs["round-robin"][0].average_latency
        assert matrix == pytest.approx(round_robin, rel=0.25)


class TestBufferSweep:
    def test_latency_improves_up_to_credit_loop(self):
        result = buffer_depth_sweep(
            buffers=(2, 3, 5, 8), load=0.45, measurement=FAST
        )
        latency = {
            label: runs[0].average_latency
            for label, runs in result.runs.items()
        }
        # scarce buffering hurts badly; at/beyond the 5-cycle loop the
        # returns flatten out.
        assert latency["2 buffers/VC"] > latency["5 buffers/VC"]
        assert latency["5 buffers/VC"] == pytest.approx(
            latency["8 buffers/VC"], rel=0.15
        )


class TestTrafficPatterns:
    def test_flow_control_ranking_invariant(self):
        """Footnote 13: the flow-control comparison holds across traffic
        patterns -- speculative VC at least matches wormhole everywhere."""
        studies = traffic_pattern_study(
            patterns=("uniform", "transpose"), load=0.3, measurement=FAST
        )
        for pattern, result in studies.items():
            wormhole = result.runs["wormhole (8 bufs)"][0].average_latency
            spec = result.runs["specVC (2vcsX4bufs)"][0].average_latency
            assert spec <= wormhole * 1.05, pattern
