"""Tests for the figure-reproduction drivers.

The delay-model figures (Table 1, Fig 11, Fig 12, Fig 16) run in full;
the simulation figures run at miniature scale here (their full paper-
shape assertions live in tests/experiments/test_shape.py, marked slow).
"""

import pytest

from repro.delaymodel.modules import RoutingRange
from repro.experiments import figures
from repro.sim.config import MeasurementConfig


TINY = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=4_000, drain_cycles=2_000
)


class TestTable1Driver:
    def test_rows_present(self):
        assert len(figures.table1()) == 11

    def test_render(self):
        assert "switch arbiter" in figures.render_table1_report()


class TestFig11:
    def test_structure(self):
        result = figures.fig11()
        assert len(result.nonspeculative) == 10  # 2 p values x 5 v values
        assert len(result.speculative) == 10
        assert result.wormhole.stages == 3

    def test_paper_claims(self):
        result = figures.fig11()
        nonspec = {(b.p, b.v): b.stages for b in result.nonspeculative}
        spec = {(b.p, b.v): b.stages for b in result.speculative}
        for p in (5, 7):
            for v in (2, 4, 8):
                assert nonspec[(p, v)] == 4
            assert nonspec[(p, 16)] == 5
            for v in (2, 4, 8, 16):
                assert spec[(p, v)] == 3
            assert spec[(p, 32)] == 4

    def test_render(self):
        text = figures.fig11().render()
        assert "wormhole reference: 3 stages" in text
        assert "2vcs,5pcs" in text


class TestFig12:
    def test_all_series_present(self):
        result = figures.fig12()
        for rng in RoutingRange:
            series = result.series(rng)
            assert len(series) == 10
            assert all(d > 0 for d in series)

    def test_reference_value(self):
        result = figures.fig12()
        assert result.delays_tau4[("Rv", 5, 2)] == pytest.approx(14.7, abs=0.1)

    def test_rpv_dominates(self):
        result = figures.fig12()
        rv = result.series(RoutingRange.RV)
        rpv = result.series(RoutingRange.RPV)
        assert all(a <= b + 1e-9 for a, b in zip(rv, rpv))

    def test_within_figure_axis(self):
        # Figure 12's y axis tops out at 40 tau4.
        result = figures.fig12()
        assert max(result.series(RoutingRange.RPV)) < 40.0

    def test_render(self):
        assert "R:pv" in figures.fig12().render()


class TestFig16:
    def test_turnarounds_in_text(self):
        text = figures.fig16()
        assert "turnaround 4 cycles" in text
        assert "turnaround 5 cycles" in text
        assert "turnaround 2 cycles" in text
        assert "turnaround 7 cycles" in text


class TestSimFiguresSmoke:
    """Miniature-scale smoke runs of the simulation figures."""

    def test_fig13_runs_and_orders_zero_load(self):
        result = figures.fig13(measurement=TINY, loads=(0.05,))
        rendered = result.render()
        assert "WH (8 bufs)" in rendered
        by_label = {spec.label: curve for spec, curve in result.curves}
        wh = by_label["WH (8 bufs)"].zero_load_latency()
        vc = by_label["VC (2vcsX4bufs)"].zero_load_latency()
        spec_vc = by_label["specVC (2vcsX4bufs)"].zero_load_latency()
        assert wh < vc
        assert abs(spec_vc - wh) < 2.0

    def test_fig17_unit_latency_faster(self):
        result = figures.fig17(measurement=TINY, loads=(0.05,))
        by_label = {spec.label: curve for spec, curve in result.curves}
        single = by_label["VC single-cycle (2vcsX4bufs)"].zero_load_latency()
        pipelined = by_label["VC (2vcsX4bufs)"].zero_load_latency()
        assert single < 0.6 * pipelined

    def test_fig18_runs(self):
        result = figures.fig18(measurement=TINY, loads=(0.05,))
        assert len(result.curves) == 2
        assert "credit" in result.render()

    def test_paper_references_attached(self):
        result = figures.fig14(measurement=TINY, loads=(0.05,))
        references = [spec.paper_saturation for spec, _ in result.curves]
        assert references == [0.50, 0.65, 0.70]
