"""Tests for the capacity analysis."""

import pytest

from repro.experiments.capacity import (
    analyze_uniform_capacity,
    theoretical_capacity,
)
from repro.sim.routing import yx_route
from repro.sim.topology import Mesh


class TestUniformCapacity:
    def test_8x8_matches_bisection_bound(self):
        """Channel-load analysis reproduces the 4/k = 0.5 flits/node/cycle
        capacity the paper's traffic axis normalises by."""
        mesh = Mesh(8)
        analysis = analyze_uniform_capacity(mesh)
        assert analysis.capacity_flits_per_node == pytest.approx(
            theoretical_capacity(mesh), rel=0.02
        )

    @pytest.mark.parametrize("k", [2, 4, 6, 8])
    def test_even_radices_match_formula(self, k):
        """Exact channel loads equal the bisection bound corrected by the
        self-exclusion factor (n-1)/n (uniform destinations != source)."""
        mesh = Mesh(k)
        n = mesh.num_nodes
        analysis = analyze_uniform_capacity(mesh)
        expected = (4.0 / k) * (n - 1) / n
        assert analysis.capacity_flits_per_node == pytest.approx(expected, rel=1e-6)

    def test_bottleneck_on_bisection(self):
        """The busiest channel under DOR+uniform crosses the central cut."""
        mesh = Mesh(8)
        analysis = analyze_uniform_capacity(mesh)
        node, port = analysis.bottleneck
        x, y = mesh.coordinates(node)
        assert x in (3, 4)  # horizontal bisection columns

    def test_yx_routing_same_capacity_by_symmetry(self):
        mesh = Mesh(6)
        xy = analyze_uniform_capacity(mesh)
        yx = analyze_uniform_capacity(mesh, yx_route)
        assert xy.max_channel_load == pytest.approx(yx.max_channel_load)

    def test_max_load_positive(self):
        analysis = analyze_uniform_capacity(Mesh(4))
        assert analysis.max_channel_load > 0
