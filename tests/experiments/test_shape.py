"""Paper shape claims on the 8x8 mesh (slow: full-network simulations).

These pin the *shape* of Figures 13-15, 17 and 18 -- who wins, in what
order, and roughly by how much -- using single-load latency comparisons
that bracket the paper's saturation points.
"""

import math

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

pytestmark = [pytest.mark.slow, pytest.mark.sim]

MEAS = MeasurementConfig(
    warmup_cycles=600, sample_packets=1200, max_cycles=25_000,
    drain_cycles=6_000,
)


def latency_at(kind, vcs, bufs, load, **kw):
    config = SimConfig(
        router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
        injection_fraction=load, seed=5, **kw,
    )
    return simulate(config, MEAS).average_latency


class TestFig13Shape:
    """8 buffers per input port: WH saturates ~40%, VC ~50%, specVC ~55%."""

    def test_wormhole_saturated_at_half_capacity(self):
        # Past its ~40% saturation point the wormhole latency blows up...
        assert latency_at(RouterKind.WORMHOLE, 1, 8, 0.52) > 90

    def test_vc_routers_fine_at_half_capacity(self):
        # ...while both VC routers are still on the flat part of the curve.
        assert latency_at(RouterKind.VIRTUAL_CHANNEL, 2, 4, 0.52) < 90
        assert latency_at(RouterKind.SPECULATIVE_VC, 2, 4, 0.52) < 70

    def test_spec_beats_nonspec_near_vc_saturation(self):
        vc = latency_at(RouterKind.VIRTUAL_CHANNEL, 2, 4, 0.58)
        spec = latency_at(RouterKind.SPECULATIVE_VC, 2, 4, 0.58)
        assert spec < vc


class TestFig14Shape:
    """16 buffers, 2 VCs: WH ~50%, VC ~65%, specVC ~70% (the 40% gain)."""

    def test_ordering_beyond_wormhole_saturation(self):
        wormhole = latency_at(RouterKind.WORMHOLE, 1, 16, 0.60)
        vc = latency_at(RouterKind.VIRTUAL_CHANNEL, 2, 8, 0.60)
        spec = latency_at(RouterKind.SPECULATIVE_VC, 2, 8, 0.60)
        assert spec <= vc < wormhole
        assert wormhole > 100
        assert vc < 80

    def test_substantial_vc_gain_over_wormhole(self):
        """The headline 40%: with 16 buffers the speculative VC router is
        comfortable at loads ~1.3x the wormhole saturation point."""
        assert latency_at(RouterKind.WORMHOLE, 1, 16, 0.62) > 100
        assert latency_at(RouterKind.SPECULATIVE_VC, 2, 8, 0.62) < 80


class TestFig15Shape:
    """4 VCs x 4 buffers: buffering covers the credit loop, so the
    speculative advantage over non-speculative VC disappears."""

    def test_spec_and_nonspec_converge(self):
        vc = latency_at(RouterKind.VIRTUAL_CHANNEL, 4, 4, 0.60)
        spec = latency_at(RouterKind.SPECULATIVE_VC, 4, 4, 0.60)
        assert math.isfinite(vc) and math.isfinite(spec)
        # throughput parity: neither saturates and latencies are close
        # (zero-load pipeline difference remains).
        assert abs(vc - spec) < 15

    def test_four_vcs_beat_two_vcs_for_nonspec(self):
        two = latency_at(RouterKind.VIRTUAL_CHANNEL, 2, 8, 0.62)
        four = latency_at(RouterKind.VIRTUAL_CHANNEL, 4, 4, 0.62)
        assert four <= two * 1.05


class TestFig17Shape:
    """Unit-latency models overestimate throughput (faster turnaround)."""

    def test_single_cycle_vc_outlasts_pipelined_vc(self):
        pipelined = latency_at(RouterKind.VIRTUAL_CHANNEL, 2, 4, 0.58)
        single = latency_at(RouterKind.SINGLE_CYCLE_VC, 2, 4, 0.58)
        assert single < pipelined

    def test_single_cycle_wormhole_outlasts_pipelined_wormhole(self):
        pipelined = latency_at(RouterKind.WORMHOLE, 1, 8, 0.50)
        single = latency_at(RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 8, 0.50)
        assert single < pipelined


class TestFig18Shape:
    """4-cycle credit propagation costs ~18% of saturation throughput."""

    def test_slow_credits_saturate_earlier(self):
        # At 56% load (past the slow-credit saturation knee, below the
        # fast-credit one) the latency gap is dramatic.
        fast = latency_at(RouterKind.SPECULATIVE_VC, 2, 4, 0.56,
                          credit_propagation=1)
        slow = latency_at(RouterKind.SPECULATIVE_VC, 2, 4, 0.56,
                          credit_propagation=4)
        assert slow > 1.8 * fast

    def test_slow_credits_fine_at_low_load(self):
        slow = latency_at(RouterKind.SPECULATIVE_VC, 2, 4, 0.20,
                          credit_propagation=4)
        assert slow < 45
