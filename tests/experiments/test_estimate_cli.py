"""The ``estimate`` subcommand: batch answers, JSON, serve loop."""

import json
import subprocess
import sys

import pytest


def run_estimate(*args, stdin=None, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", "estimate", *args],
        capture_output=True, text=True, timeout=timeout, input=stdin,
    )


class TestBatch:
    def test_help(self):
        result = run_estimate("--help")
        assert result.returncode == 0
        assert "--serve" in result.stdout
        assert "--calibrate" in result.stdout
        assert "--no-refine" in result.stdout

    def test_surrogate_answers_without_simulating(self, tmp_path):
        # The acceptance-criteria path: a design-space query answered
        # from the surrogate with the cycle kernel never invoked.
        result = run_estimate(
            "--router", "wormhole", "--vcs", "1",
            "--loads", "0.05,0.15,0.25", "--no-refine",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert result.returncode == 0, result.stderr
        lines = [l for l in result.stdout.splitlines() if l.strip()]
        assert len(lines) == 3
        assert all("[surrogate" in line for line in lines)
        assert "3 surrogate" in result.stderr
        assert "100% surrogate hit rate" in result.stderr

    def test_json_output(self, tmp_path):
        result = run_estimate(
            "--router", "speculative_vc", "--load", "0.2",
            "--no-refine", "--json",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout.splitlines()[0])
        assert payload["source"] == "surrogate"
        assert payload["latency_cycles"] > 0
        assert payload["estimate"]["breakdown"]["router_cycles"] > 0

    @pytest.mark.sim
    def test_refinement_lands_in_cache(self, tmp_path):
        # First invocation answers from the surrogate and refines in
        # the background; --drain waits for the simulated result to
        # land, so the second invocation answers from the cache.
        cache = str(tmp_path / "cache")
        args = (
            "--router", "wormhole", "--vcs", "1", "--radix", "4",
            "--load", "0.1", "--sample-packets", "60",
            "--cache-dir", cache,
        )
        first = run_estimate(*args, "--drain")
        assert first.returncode == 0, first.stderr
        assert "[surrogate" in first.stdout
        second = run_estimate(*args)
        assert second.returncode == 0, second.stderr
        assert "[cached" in second.stdout

    @pytest.mark.sim
    def test_wait_answers_simulated(self, tmp_path):
        result = run_estimate(
            "--router", "wormhole", "--vcs", "1", "--radix", "4",
            "--load", "0.1", "--sample-packets", "60", "--wait",
            "--cache-dir", str(tmp_path / "cache"),
        )
        assert result.returncode == 0, result.stderr
        assert "[simulated" in result.stdout


class TestServe:
    def test_serve_loop_answers_stdin_queries(self, tmp_path):
        result = run_estimate(
            "--router", "speculative_vc", "--radix", "4",
            "--serve", "--no-refine",
            "--cache-dir", str(tmp_path / "cache"),
            stdin="load=0.2\nrouter=wormhole load=0.1\nquit\n",
        )
        assert result.returncode == 0, result.stderr
        lines = [l for l in result.stdout.splitlines() if l.strip()]
        assert len(lines) == 2
        assert all("[surrogate" in line for line in lines)
        assert "2 queries" in result.stderr

    def test_serve_reports_bad_input_and_continues(self, tmp_path):
        result = run_estimate(
            "--serve", "--no-refine",
            "--cache-dir", str(tmp_path / "cache"),
            stdin="nonsense=1\nload=0.2\nquit\n",
        )
        assert result.returncode == 0
        assert "error" in result.stderr
        assert "[surrogate" in result.stdout
