"""Tests for the sweep driver."""

import pytest

from repro.experiments.sweep import compare_curves, find_saturation, sweep
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

pytestmark = pytest.mark.sim

FAST = MeasurementConfig(
    warmup_cycles=100, sample_packets=120, max_cycles=4_000, drain_cycles=1_500
)


def base_config():
    return SimConfig(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        seed=2,
    )


class TestSweep:
    def test_points_cover_loads(self):
        curve = sweep(base_config(), "wh", loads=(0.05, 0.2), measurement=FAST)
        assert [p.injection_fraction for p in curve.points] == [0.05, 0.2]
        assert curve.label == "wh"

    def test_latency_monotone_in_load(self):
        curve = sweep(
            base_config(), "wh", loads=(0.05, 0.3, 0.5), measurement=FAST
        )
        latencies = [p.average_latency for p in curve.points]
        assert latencies == sorted(latencies)

    def test_stops_after_saturation(self):
        saturating = MeasurementConfig(
            warmup_cycles=200, sample_packets=2_000, max_cycles=1_500,
            drain_cycles=100,
        )
        curve = sweep(
            base_config(), "wh", loads=(0.9, 0.95, 1.0),
            measurement=saturating,
        )
        # the first saturated point ends the sweep
        assert len(curve.points) == 1
        assert curve.points[0].saturated

    def test_find_saturation_bounds(self):
        curve = sweep(
            base_config(), "wh", loads=(0.05, 0.3), measurement=FAST
        )
        saturation = find_saturation(curve)
        assert saturation >= 0.3  # both points well below saturation

    def test_compare_curves_renders(self):
        curve = sweep(base_config(), "wh", loads=(0.05,), measurement=FAST)
        text = compare_curves([curve])
        assert "zero-load latency" in text
        assert "saturation" in text


class TestRunWithSeeds:
    def test_aggregates_across_seeds(self):
        from repro.experiments.sweep import run_with_seeds

        aggregate = run_with_seeds(
            base_config(), load=0.2, seeds=(1, 2, 3), measurement=FAST
        )
        assert len(aggregate.runs) == 3
        assert aggregate.latency_ci95 >= 0.0
        assert aggregate.mean_latency > 0
        assert "seeds" in aggregate.describe()

    def test_seed_variation_is_small_below_saturation(self):
        from repro.experiments.sweep import run_with_seeds

        aggregate = run_with_seeds(
            base_config(), load=0.1, seeds=(1, 2, 3, 4), measurement=FAST
        )
        assert aggregate.latency_std < 0.05 * aggregate.mean_latency

    def test_empty_seeds_rejected(self):
        from repro.experiments.sweep import run_with_seeds

        with pytest.raises(ValueError):
            run_with_seeds(base_config(), load=0.2, seeds=())


class TestFindSaturationDegenerate:
    """find_saturation must tolerate curves with no usable zero load."""

    def saturated_point(self):
        from repro.sim.metrics import RunResult

        return RunResult(
            injection_fraction=0.9, latency=None, accepted_fraction=0.4,
            saturated=True, cycles_simulated=1_500, sample_packets=10,
        )

    def test_empty_sweep_reports_zero(self):
        from repro.sim.metrics import SweepResult

        assert find_saturation(SweepResult(label="empty")) == 0.0

    def test_first_point_already_saturated(self):
        from repro.sim.metrics import SweepResult

        curve = SweepResult(label="sat", points=[self.saturated_point()])
        assert find_saturation(curve) == 0.0

    def test_real_sweep_starting_saturated(self):
        saturating = MeasurementConfig(
            warmup_cycles=200, sample_packets=2_000, max_cycles=1_500,
            drain_cycles=100,
        )
        curve = sweep(
            base_config(), "wh", loads=(0.9, 1.0), measurement=saturating
        )
        assert curve.points[0].saturated
        assert find_saturation(curve) == 0.0
        # compare_curves must render, not raise, on such a curve
        assert "saturation ~0%" in compare_curves([curve])


class TestFindSaturationSurrogateSeeded:
    """The surrogate-seeded fallback for degenerate measured curves."""

    def saturated_point(self):
        from repro.sim.metrics import RunResult

        return RunResult(
            injection_fraction=0.9, latency=None, accepted_fraction=0.4,
            saturated=True, cycles_simulated=1_500, sample_packets=10,
        )

    def test_degenerate_curve_falls_back_to_surrogate(self):
        from repro.sim.metrics import SweepResult
        from repro.surrogate import predicted_saturation

        curve = SweepResult(label="sat", points=[self.saturated_point()])
        seeded = find_saturation(curve, config=base_config())
        assert seeded == pytest.approx(
            predicted_saturation(base_config())
        )
        assert seeded > 0.0

    def test_empty_curve_falls_back_too(self):
        from repro.sim.metrics import SweepResult

        seeded = find_saturation(
            SweepResult(label="empty"), config=base_config()
        )
        assert seeded > 0.0

    def test_measured_curve_wins_over_surrogate(self):
        # A usable measured curve is never overridden by the model.
        curve = sweep(
            base_config(), "wh", loads=(0.05, 0.3), measurement=FAST
        )
        assert find_saturation(curve, config=base_config()) == \
            find_saturation(curve)

    def test_default_path_bit_identical(self):
        # Without config= the fallback never engages: same answer as
        # before the flag existed.
        from repro.sim.metrics import SweepResult

        assert find_saturation(SweepResult(label="empty")) == 0.0
        curve = SweepResult(label="sat", points=[self.saturated_point()])
        assert find_saturation(curve) == 0.0

    def test_calibrated_coefficients_steer_the_fallback(self):
        from repro.sim.metrics import SweepResult
        from repro.surrogate import (
            Observation, SurrogateCoefficients, calibrate, estimate,
        )

        truth = SurrogateCoefficients(
            contention_scale=1.2, saturation_load=0.3
        )
        observations = [
            Observation(
                config=base_config(), load=load,
                latency_cycles=estimate(
                    base_config(), load, truth
                ).latency_cycles,
            )
            for load in (0.05, 0.12, 0.2)
        ]
        calibration = calibrate(observations)
        seeded = find_saturation(
            SweepResult(label="empty"), config=base_config(),
            calibration=calibration,
        )
        uncalibrated = find_saturation(
            SweepResult(label="empty"), config=base_config()
        )
        assert seeded != uncalibrated
        assert seeded < 0.3  # knee sits below the hard saturation bound


class TestSurrogatePrunedSweeps:
    """Experiment.sweeps(surrogate_prune=True) drops deep-saturation loads."""

    def test_off_is_bit_identical(self):
        from repro.runtime import Experiment

        loads = (0.05, 0.2, 0.35)
        plain = Experiment(FAST).sweep(
            base_config(), label="wh", loads=loads
        )
        unpruned = Experiment(FAST).sweep(
            base_config(), label="wh", loads=loads, surrogate_prune=False
        )
        assert [p.injection_fraction for p in plain.points] == \
            [p.injection_fraction for p in unpruned.points]
        assert plain.points == unpruned.points

    def test_prune_drops_loads_past_predicted_saturation(self):
        from repro.runtime import Experiment
        from repro.surrogate import predicted_saturation

        knee = predicted_saturation(base_config())
        loads = (0.05, 0.2, knee + 0.05, knee + 0.2, knee + 0.4)
        experiment = Experiment(FAST)
        curve = experiment.sweep(
            base_config(), label="wh", loads=loads, surrogate_prune=True,
            stop_after_saturation=False,
        )
        swept = [p.injection_fraction for p in curve.points]
        # Keeps everything through the first load past the knee, drops
        # the deep-saturation tail.
        assert swept == sorted(loads)[:3]
        assert experiment.stats.points_requested == 3

    def test_prune_keeps_whole_grid_below_knee(self):
        from repro.runtime import Experiment

        loads = (0.05, 0.15, 0.25)
        pruned = Experiment(FAST).sweep(
            base_config(), label="wh", loads=loads, surrogate_prune=True
        )
        plain = Experiment(FAST).sweep(
            base_config(), label="wh", loads=loads
        )
        assert pruned.points == plain.points
