"""Tests for CSV/JSON export of experiment results."""

import csv
import json

import pytest

from repro.experiments import figures
from repro.experiments.export import (
    fig11_to_csv,
    fig12_to_csv,
    figure_to_csv,
    results_to_json,
    sweep_to_csv,
)
from repro.sim.config import MeasurementConfig
from repro.sim.flit import Packet
from repro.sim.metrics import LatencyStats, RunResult, SweepResult

TINY = MeasurementConfig(
    warmup_cycles=50, sample_packets=50, max_cycles=3_000, drain_cycles=1_500
)


def make_run(load, latency, saturated=False):
    stats = None
    if latency is not None:
        packet = Packet(source=0, destination=1, length=5, creation_cycle=0)
        packet.ejection_cycle = latency
        stats = LatencyStats.from_packets([packet])
    return RunResult(
        injection_fraction=load, latency=stats, accepted_fraction=load,
        saturated=saturated, cycles_simulated=100, sample_packets=10,
    )


def make_sweep():
    return SweepResult("demo", [make_run(0.1, 30), make_run(0.5, None, True)])


class TestSweepCSV:
    def test_rows_and_header(self, tmp_path):
        path = sweep_to_csv([make_sweep()], tmp_path / "curve.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["curve"] == "demo"
        assert rows[0]["avg_latency_cycles"] == "30.0"
        assert rows[1]["saturated"] == "True"
        assert rows[1]["avg_latency_cycles"] == ""  # inf -> blank

    def test_rows_sorted_by_load(self, tmp_path):
        sweep = SweepResult("s", [make_run(0.5, 50), make_run(0.1, 30)])
        path = sweep_to_csv([sweep], tmp_path / "curve.csv")
        with path.open() as handle:
            loads = [float(r["offered_fraction"]) for r in csv.DictReader(handle)]
        assert loads == sorted(loads)


class TestFigureExports:
    def test_fig11_csv(self, tmp_path):
        path = fig11_to_csv(figures.fig11(), tmp_path / "fig11.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["router", "p", "v", "stages", "stage_occupancies"]
        assert len(rows) == 1 + 1 + 10 + 10  # header + wormhole + 2x10 bars

    def test_fig12_csv(self, tmp_path):
        path = fig12_to_csv(figures.fig12(), tmp_path / "fig12.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 30  # 3 ranges x 2 p x 5 v
        assert {r["routing_range"] for r in rows} == {"Rv", "Rp", "Rpv"}

    def test_sim_figure_csv(self, tmp_path):
        figure = figures.fig13(measurement=TINY, loads=(0.05,))
        path = figure_to_csv(figure, tmp_path / "fig13.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3  # three curves, one load each


class TestJSON:
    def test_sweep_json(self, tmp_path):
        path = results_to_json(make_sweep(), tmp_path / "sweep.json")
        data = json.loads(path.read_text())
        assert data["label"] == "demo"
        assert len(data["points"]) == 2

    def test_fig11_json(self, tmp_path):
        data = json.loads(
            results_to_json(figures.fig11(), tmp_path / "f.json").read_text()
        )
        assert data["wormhole_stages"] == 3
        assert data["speculative"]["2vcs,5pcs"] == 3

    def test_fig12_json(self, tmp_path):
        data = json.loads(
            results_to_json(figures.fig12(), tmp_path / "f.json").read_text()
        )
        assert data["Rv,p=5,v=2"] == pytest.approx(14.7, abs=0.05)

    def test_sim_figure_json(self, tmp_path):
        figure = figures.fig18(measurement=TINY, loads=(0.05,))
        data = json.loads(
            results_to_json(figure, tmp_path / "f.json").read_text()
        )
        assert len(data["curves"]) == 2
        assert data["curves"][0]["paper_saturation"] == 0.55

    def test_unknown_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            results_to_json(object(), tmp_path / "x.json")
