"""Tests for the topology and routing extension studies."""

import math

import pytest

from repro.experiments.ablations import o1turn_study, topology_study
from repro.sim.config import MeasurementConfig

pytestmark = pytest.mark.sim

FAST = MeasurementConfig(
    warmup_cycles=150, sample_packets=250, max_cycles=9_000,
    drain_cycles=3_000,
)


class TestTopologyStudy:
    def test_torus_cuts_zero_load_latency(self):
        result = topology_study(loads=(0.05,), measurement=FAST)
        mesh = result.runs["8x8 mesh (paper)"][0].average_latency
        torus = result.runs["8x8 torus (dateline VCs)"][0].average_latency
        # 5.33 -> 4.06 average hops at 4 cycles/hop: ~5 cycles saved.
        assert 3.0 < mesh - torus < 7.0

    def test_predictions_match_analysis(self):
        from repro.experiments.analysis import predicted_zero_load_latency
        from repro.sim.topology import Torus

        result = topology_study(loads=(0.05,), measurement=FAST)
        torus = result.runs["8x8 torus (dateline VCs)"][0].average_latency
        predicted = predicted_zero_load_latency(Torus(8), 3, 5)
        assert abs(torus - predicted) < 1.0


class TestO1TurnStudy:
    def test_o1turn_beats_xy_on_transpose(self):
        result = o1turn_study(load=0.40, measurement=FAST)
        xy = result.runs["xy (paper)"][0].average_latency
        o1turn = result.runs["o1turn"][0].average_latency
        assert math.isfinite(o1turn)
        assert o1turn < xy
