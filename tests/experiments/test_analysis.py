"""Tests for the closed-form analysis, cross-validated against simulation."""

import pytest

from repro.experiments.analysis import (
    ROUTER_DEPTHS,
    paper_zero_load_predictions,
    predicted_zero_load_latency,
    sustainable_vc_rate,
    zero_load_latency_for_path,
)
from repro.sim.config import RouterKind, SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.topology import Mesh


class TestClosedForms:
    def test_path_formula_wormhole(self):
        # (D+1)*H + D + L: the DESIGN.md section 4 accounting.
        assert zero_load_latency_for_path(3, 3, 5) == 4 * 3 + 3 + 5

    def test_mesh_prediction_8x8(self):
        mesh = Mesh(8)
        assert predicted_zero_load_latency(mesh, 3, 5) == pytest.approx(29.3, abs=0.1)
        assert predicted_zero_load_latency(mesh, 4, 5) == pytest.approx(35.7, abs=0.1)
        assert predicted_zero_load_latency(mesh, 1, 5) == pytest.approx(16.7, abs=0.1)

    def test_paper_predictions_close_to_quotes(self):
        for prediction in paper_zero_load_predictions():
            assert prediction.predicted == pytest.approx(
                prediction.paper_value, abs=1.5
            ), prediction

    def test_rate_capped_at_one(self):
        assert sustainable_vc_rate(100, 3) == 1.0

    def test_rate_below_loop(self):
        assert sustainable_vc_rate(4, 3) == pytest.approx(4 / 5)
        assert sustainable_vc_rate(4, 4) == pytest.approx(4 / 6)
        assert sustainable_vc_rate(4, 3, credit_propagation=4) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zero_load_latency_for_path(0, 3, 5)
        with pytest.raises(ValueError):
            zero_load_latency_for_path(3, 0, 5)

    def test_depth_table_matches_router_kinds(self):
        assert set(ROUTER_DEPTHS) == {k.value for k in RouterKind}


class TestFormulaVsSimulator:
    """The closed form must track the actual simulator exactly on
    deterministic single-packet paths."""

    @pytest.mark.parametrize("kind,vcs,depth", [
        (RouterKind.WORMHOLE, 1, 3),
        (RouterKind.VIRTUAL_CHANNEL, 2, 4),
        (RouterKind.SPECULATIVE_VC, 2, 3),
        (RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 1),
    ])
    @pytest.mark.parametrize("hops", [1, 3, 6])
    def test_exact_agreement(self, kind, vcs, depth, hops):
        network = Network(SimConfig(
            router_kind=kind, num_vcs=vcs, mesh_radix=4, buffers_per_vc=8,
            injection_fraction=0.0,
        ))
        src = 0
        destinations = {1: 1, 3: 3, 6: 15}  # east, then east+south corner
        dst = destinations[hops]
        packet = Packet(source=src, destination=dst, length=5,
                        creation_cycle=0)
        network.sources[src].enqueue(packet)
        network.run(40 + 8 * hops)
        assert packet.latency == zero_load_latency_for_path(hops, depth, 5)
