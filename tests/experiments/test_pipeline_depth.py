"""Tests for the pipeline-depth and many-VCs studies (va_extra_cycles)."""

import pytest

from repro.experiments.ablations import many_vcs_study, pipeline_depth_study
from repro.sim.config import MeasurementConfig

pytestmark = pytest.mark.sim

FAST = MeasurementConfig(
    warmup_cycles=200, sample_packets=300, max_cycles=10_000,
    drain_cycles=3_000,
)


class TestPipelineDepthStudy:
    def test_each_stage_costs_one_cycle_per_hop(self):
        result = pipeline_depth_study(
            extras=(0, 1, 2), loads=(0.05,), measurement=FAST
        )
        zero_loads = {
            label: runs[0].average_latency
            for label, runs in result.runs.items()
        }
        base = zero_loads["+0 allocation stage(s)"]
        one = zero_loads["+1 allocation stage(s)"]
        two = zero_loads["+2 allocation stage(s)"]
        # ~6.3 average hops on the 8x8 mesh -> ~6.3 cycles per stage.
        assert one - base == pytest.approx(6.3, abs=1.0)
        assert two - one == pytest.approx(6.3, abs=1.0)

    def test_deepened_spec_matches_nonspec_zero_load(self):
        """A speculative router with one artificial extra allocation
        stage is, at zero load, exactly the non-speculative 4-stage
        router -- the two descriptions of 'one more stage' agree."""
        from repro.sim.config import RouterKind, SimConfig
        from repro.sim.engine import simulate

        deep_spec = simulate(SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=4, injection_fraction=0.05,
            va_extra_cycles=1, seed=9,
        ), FAST).average_latency
        nonspec = simulate(SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2,
            buffers_per_vc=4, injection_fraction=0.05, seed=9,
        ), FAST).average_latency
        assert deep_spec == pytest.approx(nonspec, abs=1.0)


class TestManyVCsStudy:
    def test_sixteen_vcs_do_not_beat_two(self):
        """Figure 11 -> Section 5 closed loop: the 5th pipeline stage a
        16-VC allocator costs is not bought back by throughput at these
        loads, vindicating the paper's small-VC focus."""
        result = many_vcs_study(load=0.60, measurement=FAST)
        two = result.runs["2 VCs x 8 bufs (4-stage)"]
        sixteen = result.runs["16 VCs x 4 bufs (5-stage)"]
        # worse at zero load (extra stage)...
        assert sixteen[0].average_latency > two[0].average_latency + 4.0
        # ...and no better under load.
        assert sixteen[1].average_latency > two[1].average_latency * 0.95

    def test_starved_vcs_worst_of_all(self):
        result = many_vcs_study(load=0.60, measurement=FAST)
        starved = result.runs["16 VCs x 1 buf (5-stage)"]
        plump = result.runs["16 VCs x 4 bufs (5-stage)"]
        assert starved[0].average_latency > plump[0].average_latency
