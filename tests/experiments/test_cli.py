"""Smoke tests for the python -m repro.experiments command line."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestCLI:
    def test_default_prints_delay_model(self):
        result = run_cli()
        assert result.returncode == 0
        assert "Table 1" in result.stdout
        assert "Figure 11" in result.stdout
        assert "Figure 12" in result.stdout
        assert "turnaround" in result.stdout

    def test_help(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "--simulate" in result.stdout
        assert "--paper-scale" in result.stdout
        assert "--ablations" in result.stdout

    @pytest.mark.slow
    def test_simulate_tiny_sample(self):
        result = run_cli("--simulate", "--sample-packets", "60", timeout=590)
        assert result.returncode == 0
        assert "Figure 13" in result.stdout
        assert "zero-load" in result.stdout
