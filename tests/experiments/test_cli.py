"""Smoke tests for the python -m repro.experiments command line."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True, text=True, timeout=timeout,
    )


class TestCLI:
    def test_default_prints_delay_model(self):
        result = run_cli()
        assert result.returncode == 0
        assert "Table 1" in result.stdout
        assert "Figure 11" in result.stdout
        assert "Figure 12" in result.stdout
        assert "turnaround" in result.stdout

    def test_help(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "--simulate" in result.stdout
        assert "--paper-scale" in result.stdout
        assert "--ablations" in result.stdout

    @pytest.mark.slow
    def test_simulate_tiny_sample(self):
        result = run_cli("--simulate", "--sample-packets", "60", timeout=590)
        assert result.returncode == 0
        assert "Figure 13" in result.stdout
        assert "zero-load" in result.stdout

    @pytest.mark.sim
    def test_checked_smoke(self):
        """--checked alone runs the validation suite and exits clean."""
        result = run_cli("--checked", timeout=590)
        assert result.returncode == 0
        assert "probe run: ok" in result.stdout
        assert "oracle spec_vs_nonspec" in result.stdout
        assert "oracle serial_vs_parallel" in result.stdout
        assert "oracle cached_vs_uncached" in result.stdout
        assert "property cases: 4/4 passed" in result.stdout
        assert "validation PASSED" in result.stdout

    def test_help_mentions_checked(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "--checked" in result.stdout


class TestReportSubcommand:
    def test_report_alone_prints_delay_model(self):
        result = run_cli("report")
        assert result.returncode == 0
        assert "Table 1" in result.stdout

    def test_report_help(self):
        result = run_cli("report", "--help")
        assert result.returncode == 0
        assert "--telemetry" in result.stdout
        assert "--export-dir" in result.stdout

    @pytest.mark.sim
    def test_report_telemetry_exports(self, tmp_path):
        import json

        result = run_cli(
            "report", "--telemetry", "--sample-packets", "150",
            "--export-dir", str(tmp_path), timeout=590,
        )
        assert result.returncode == 0
        assert "speculation win rate" in result.stdout
        assert "channel utilization" in result.stdout
        for name in ("telemetry.jsonl", "telemetry.csv", "windows.csv",
                     "trace.json"):
            assert (tmp_path / name).exists(), name
        header = json.loads(
            (tmp_path / "telemetry.jsonl").read_text().splitlines()[0]
        )
        assert header["type"] == "summary"
        assert header["cycles_observed"] > 0

    @pytest.mark.sim
    def test_report_telemetry_wormhole_router(self):
        """Non-speculative routers report an honest 0% win rate."""
        result = run_cli(
            "report", "--telemetry", "--router", "wormhole",
            "--load", "0.2", "--sample-packets", "100", timeout=590,
        )
        assert result.returncode == 0
        assert "wormhole 8x8" in result.stdout
        assert "speculation win rate  0.0% (0 of 0 attempts)" in result.stdout
