"""Golden regression tests: exact outputs pinned to committed fixtures.

The approximate anchor tests (``tests/delaymodel/test_table1.py``,
``tests/sim/test_zero_load.py``) assert we stay near the *paper's*
numbers; these goldens additionally pin our *own* exact outputs, so an
unintended change that stays inside the paper-tolerance window still
fails loudly.  Both the delay model and the simulator are deterministic,
so exact equality is the right bar.  Regeneration workflow: see
``tests/conftest.py``.
"""

import json

import pytest

from repro.delaymodel.table1 import generate_table1
from repro.experiments.report import telemetry_report, telemetry_snapshot_config
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

#: Same scale as the zero-load anchor tests.
MEAS = MeasurementConfig(
    warmup_cycles=200, sample_packets=300, max_cycles=30_000
)

ZERO_LOAD_CONFIGS = [
    ("wormhole_1vc_8buf", RouterKind.WORMHOLE, 1, 8),
    ("virtual_channel_2vc_4buf", RouterKind.VIRTUAL_CHANNEL, 2, 4),
    ("speculative_vc_2vc_4buf", RouterKind.SPECULATIVE_VC, 2, 4),
    ("single_cycle_wormhole_1vc_8buf", RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 8),
    ("single_cycle_vc_2vc_4buf", RouterKind.SINGLE_CYCLE_VC, 2, 4),
]


def test_table1_delay_model_golden(golden):
    rows = [
        {
            "section": row.section,
            "module": row.module,
            "model_tau4": row.model_tau4,
        }
        for row in generate_table1()
    ]
    assert rows, "Table 1 produced no rows"
    golden.check("table1", rows)


@pytest.mark.sim
def test_telemetry_snapshot_golden(golden, tmp_path):
    """The canonical instrumented run (8x8 spec-VC at 0.42 load): the
    speculation win rate and channel utilization in the rendered report
    must match the exported JSONL exactly, and both are pinned."""
    report = telemetry_report(
        telemetry_snapshot_config(), MEAS, export_dir=tmp_path
    )

    header = json.loads((tmp_path / "telemetry.jsonl").read_text()
                        .splitlines()[0])
    assert header["type"] == "summary"
    win_rate = header["speculation_win_rate"]
    utilization = header["channel_utilization"]
    # The human-readable report reproduces the exported numbers.
    assert f"speculation win rate  {win_rate:.1%}" in report
    assert f"channel utilization   {utilization:.1%}" in report

    trace = json.loads((tmp_path / "trace.json").read_text())
    kinds = {e["name"] for e in trace["traceEvents"] if e["ph"] == "i"}
    assert {"route_computed", "vc_grant", "switch_grant",
            "traversal"} <= kinds

    # Deterministic simulator + fixed seed: pin the exact values.
    golden.check("telemetry_snapshot", {
        "cycles_observed": header["cycles_observed"],
        "speculation_win_rate": win_rate,
        "channel_utilization": utilization,
    })


@pytest.mark.sim
def test_zero_load_latency_golden(golden):
    latencies = {}
    for label, kind, vcs, bufs in ZERO_LOAD_CONFIGS:
        config = SimConfig(
            router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
            injection_fraction=0.05, seed=42,
        )
        latencies[label] = simulate(config, MEAS).average_latency
    golden.check("zero_load", latencies)
