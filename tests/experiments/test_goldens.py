"""Golden regression tests: exact outputs pinned to committed fixtures.

The approximate anchor tests (``tests/delaymodel/test_table1.py``,
``tests/sim/test_zero_load.py``) assert we stay near the *paper's*
numbers; these goldens additionally pin our *own* exact outputs, so an
unintended change that stays inside the paper-tolerance window still
fails loudly.  Both the delay model and the simulator are deterministic,
so exact equality is the right bar.  Regeneration workflow: see
``tests/conftest.py``.
"""

import pytest

from repro.delaymodel.table1 import generate_table1
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

#: Same scale as the zero-load anchor tests.
MEAS = MeasurementConfig(
    warmup_cycles=200, sample_packets=300, max_cycles=30_000
)

ZERO_LOAD_CONFIGS = [
    ("wormhole_1vc_8buf", RouterKind.WORMHOLE, 1, 8),
    ("virtual_channel_2vc_4buf", RouterKind.VIRTUAL_CHANNEL, 2, 4),
    ("speculative_vc_2vc_4buf", RouterKind.SPECULATIVE_VC, 2, 4),
    ("single_cycle_wormhole_1vc_8buf", RouterKind.SINGLE_CYCLE_WORMHOLE, 1, 8),
    ("single_cycle_vc_2vc_4buf", RouterKind.SINGLE_CYCLE_VC, 2, 4),
]


def test_table1_delay_model_golden(golden):
    rows = [
        {
            "section": row.section,
            "module": row.module,
            "model_tau4": row.model_tau4,
        }
        for row in generate_table1()
    ]
    assert rows, "Table 1 produced no rows"
    golden.check("table1", rows)


@pytest.mark.sim
def test_zero_load_latency_golden(golden):
    latencies = {}
    for label, kind, vcs, bufs in ZERO_LOAD_CONFIGS:
        config = SimConfig(
            router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
            injection_fraction=0.05, seed=42,
        )
        latencies[label] = simulate(config, MEAS).average_latency
    golden.check("zero_load", latencies)
