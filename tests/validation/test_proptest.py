"""The seeded property-test generator: reproducible, valid, checked."""

import pytest

from repro.sim.validation import proptest
from repro.sim.validation.proptest import (
    generate_cases,
    run_case,
    run_property_suite,
)

pytestmark = pytest.mark.sim


class TestGeneration:
    def test_same_seed_same_cases(self):
        assert generate_cases(7, 12) == generate_cases(7, 12)

    def test_different_seeds_differ(self):
        lhs = [c.config for c in generate_cases(1, 8)]
        rhs = [c.config for c in generate_cases(2, 8)]
        assert lhs != rhs

    def test_generated_configs_are_valid(self):
        for case in generate_cases(99, 40):
            case.config.validate()

    def test_generator_covers_router_kinds(self):
        kinds = {c.config.router_kind for c in generate_cases(0, 60)}
        assert len(kinds) == 6

    def test_describe_names_the_case(self):
        case = generate_cases(3, 1)[0]
        assert "case 0" in case.describe()
        assert case.config.router_kind.value in case.describe()

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            generate_cases(0, 0)


class TestExecution:
    def test_cases_run_clean_under_probes(self):
        summary = run_property_suite(seed=5, count=4)
        assert summary["ok"]
        assert summary["passed"] == summary["cases"] == 4

    def test_single_case_returns_checked_result(self):
        result = run_case(generate_cases(5, 1)[0])
        assert result.validation is not None
        assert result.validation["ok"]

    def test_failures_collected_without_fail_fast(self, monkeypatch):
        monkeypatch.setattr(
            proptest, "run_case",
            lambda case: (_ for _ in ()).throw(AssertionError("injected")),
        )
        summary = run_property_suite(seed=5, count=3, fail_fast=False)
        assert not summary["ok"]
        assert summary["passed"] == 0
        assert len(summary["failures"]) == 3
        assert "injected" in summary["failures"][0]["error"]

    def test_failures_raise_with_fail_fast(self, monkeypatch):
        monkeypatch.setattr(
            proptest, "run_case",
            lambda case: (_ for _ in ()).throw(AssertionError("injected")),
        )
        with pytest.raises(AssertionError, match="injected"):
            run_property_suite(seed=5, count=2, fail_fast=True)
