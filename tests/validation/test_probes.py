"""Checked mode: every probe passes on correct simulations."""

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate
from repro.sim.validation import (
    InvariantViolation,
    ValidationSuite,
    Violation,
    WatchdogProbe,
)
from repro.sim.validation.probes import default_probes
from repro.sim.validation.suite import resolve_checked

pytestmark = pytest.mark.sim

MEAS = MeasurementConfig(
    warmup_cycles=100, sample_packets=80, max_cycles=12_000,
    drain_cycles=6_000,
)


def tiny_config(kind, **overrides):
    defaults = dict(
        router_kind=kind, mesh_radix=4,
        num_vcs=2 if kind.uses_vcs else 1,
        buffers_per_vc=5, injection_fraction=0.25, seed=5,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestCheckedRuns:
    @pytest.mark.parametrize("kind", list(RouterKind), ids=lambda k: k.value)
    def test_every_router_kind_passes_all_probes(self, kind):
        result = simulate(tiny_config(kind), MEAS, checked=True)
        summary = result.validation
        assert summary is not None
        assert summary["ok"]
        assert summary["violations"] == []
        assert summary["cycles_checked"] > 0
        assert all(count > 0 for count in summary["probes"].values())

    def test_checked_equals_unchecked(self):
        config = tiny_config(RouterKind.SPECULATIVE_VC)
        unchecked = simulate(config, MEAS)
        checked = simulate(config, MEAS, checked=True)
        assert unchecked.validation is None
        assert checked.validation is not None
        assert unchecked == checked

    def test_spec_router_runs_speculation_probe(self):
        result = simulate(
            tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=True
        )
        assert "speculation_legality" in result.validation["probes"]

    def test_nonspec_router_skips_speculation_probe(self):
        result = simulate(
            tiny_config(RouterKind.VIRTUAL_CHANNEL), MEAS, checked=True
        )
        assert "speculation_legality" not in result.validation["probes"]

    def test_equal_priority_ablation_passes(self):
        """displacement is legal under the "equal" ablation, so the
        priority check is disabled and the run stays clean."""
        config = tiny_config(
            RouterKind.SPECULATIVE_VC, speculation_priority="equal"
        )
        result = simulate(config, MEAS, checked=True)
        assert result.validation["ok"]


class TestSuiteMechanics:
    def test_interval_reduces_cycle_checks(self):
        config = tiny_config(RouterKind.WORMHOLE)
        every = simulate(config, MEAS, checked=True)
        sparse = simulate(
            config, MEAS,
            checked=ValidationSuite(default_probes(config), interval=10),
        )
        assert every == sparse
        assert sparse.validation["interval"] == 10
        assert (
            sparse.validation["cycles_checked"]
            < every.validation["cycles_checked"] / 5
        )

    def test_fail_fast_false_accumulates(self):
        suite = ValidationSuite([], fail_fast=False)
        suite.report(Violation("p", 1, "first"))
        suite.report(Violation("p", 2, "second"))
        assert not suite.ok
        assert [v.cycle for v in suite.violations] == [1, 2]

    def test_fail_fast_raises_with_violation_attached(self):
        suite = ValidationSuite([])
        with pytest.raises(InvariantViolation) as excinfo:
            suite.report(Violation("watchdog", 7, "stuck"))
        assert excinfo.value.violation.probe == "watchdog"
        assert excinfo.value.violation.cycle == 7

    def test_snapshot_dir_writes_violation_file(self, tmp_path):
        suite = ValidationSuite(
            [], fail_fast=False, snapshot_dir=tmp_path / "snaps"
        )
        suite.report(Violation("watchdog", 42, "deadlock", snapshot="MAP"))
        path = tmp_path / "snaps" / "violation-cycle42.txt"
        assert path.exists()
        assert "MAP" in path.read_text()

    def test_resolve_checked(self):
        config = tiny_config(RouterKind.WORMHOLE)
        assert resolve_checked(None, config) is None
        assert resolve_checked(False, config) is None
        assert isinstance(resolve_checked(True, config), ValidationSuite)
        suite = ValidationSuite([])
        assert resolve_checked(suite, config) is suite
        with pytest.raises(TypeError):
            resolve_checked("yes", config)

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ValidationSuite([], interval=0)

    def test_watchdog_rejects_zero_horizon(self):
        with pytest.raises(ValueError):
            WatchdogProbe(stall_horizon=0)

    def test_violation_round_trips_to_dict(self):
        violation = Violation("credit_consistency", 9, "leak", snapshot="S")
        data = violation.to_dict()
        assert data == {
            "probe": "credit_consistency", "cycle": 9,
            "message": "leak", "snapshot": "S",
        }
        assert "credit_consistency" in str(violation)
