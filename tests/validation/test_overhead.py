"""Checked-mode and telemetry cost: zero when off, bounded when on.

The acceptance bar for checked mode is a full default-scale
speculative-VC run with zero violations at bounded overhead over the
unchecked wall time; and strictly zero overhead when disabled (the
engine's per-step hook is a single attribute test).

The bound is 4x (measured ~2.5-3x).  It was 2x (measured ~1.4x) before
the hot-loop rework: the probes' absolute cost is unchanged, but the
unchecked baseline they are measured against got faster, so the
*relative* overhead grew.  The struct-of-arrays rework then added a
real probe cost -- the exclusivity probe re-derives all three state
bitmasks from the per-VC states every checked cycle -- nudging the
measured ratio up again.

Telemetry at the default sampling rate is held to 1.3x (measured
~1.05x): its per-step hook is the same single attribute test, the
crossbar wrapper is two list increments per forwarded flit, and the
occupancy scan runs only every ``sample_period`` cycles.
"""

import time

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator, simulate
from repro.telemetry import TelemetryConfig

pytestmark = pytest.mark.sim


class TestCheckedOverhead:
    @pytest.mark.slow
    @pytest.mark.perf
    def test_default_spec_vc_run_within_4x(self):
        """Default 8x8 speculative-VC config, default measurement scale:
        checked completes clean, bit-equal to unchecked, within 4x.

        Pinned to the reference stepper: the bound characterises the
        probes' cost relative to a full-scan baseline.  The fast stepper
        skips idle work that probes still have to scan, so its ratio is
        load-dependent and not what this bound is about.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            stepper="reference",
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        unchecked = simulate(config, measurement)
        t1 = time.perf_counter()
        checked = simulate(config, measurement, checked=True)
        t2 = time.perf_counter()

        assert checked.validation is not None
        assert checked.validation["ok"]
        assert checked.validation["violations"] == []
        assert checked == unchecked
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 4.0, f"checked/unchecked wall-time ratio {ratio:.2f}"

    @pytest.mark.slow
    @pytest.mark.perf
    def test_fast_stepper_checked_overhead_at_high_load(self):
        """Companion bound against the *fast* stepper near saturation.

        Checked mode drops every compiled step function, so its cost
        relative to the specialized fast path compounds two ratios: the
        probes' own overhead and the specialization speedup the checked
        run gives up.  At load 0.42 that lands ~3.5x (probes ~2.3x times
        the ~1.5x+ specialization floor); the bound is 5x.  The
        bit-equality assertion is the differential payoff: the checked
        run executes the generic phase methods, so equality here means
        the compiled closures and the generic path agree at high load
        even at full measurement scale.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            injection_fraction=0.42,
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        unchecked = simulate(config, measurement)
        t1 = time.perf_counter()
        checked = simulate(config, measurement, checked=True)
        t2 = time.perf_counter()

        assert checked.validation is not None
        assert checked.validation["ok"]
        assert checked == unchecked
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 5.0, f"checked/fast wall-time ratio {ratio:.2f}"

    def test_disabled_probes_leave_no_machinery_attached(self):
        sim = Simulator(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4,
            injection_fraction=0.1, seed=1,
        ))
        assert sim.validation is None
        # No wrappers: sink.accept and the allocators are untouched
        # bound methods/instances, not probe proxies.
        for sink in sim.network.sinks:
            assert sink.accept.__qualname__.startswith("Sink.")


class TestTelemetryOverhead:
    @pytest.mark.slow
    @pytest.mark.perf
    def test_default_spec_vc_run_within_1_3x(self):
        """Default 8x8 speculative-VC config at default sampling:
        telemetry-on is bit-equal to telemetry-off and within 1.3x.

        Pinned to the reference stepper for the same reason as the
        checked bound above: it characterises the collectors' cost
        against a stable full-scan baseline.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            stepper="reference",
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        plain = simulate(config, measurement)
        t1 = time.perf_counter()
        observed = simulate(config, measurement, telemetry=TelemetryConfig())
        t2 = time.perf_counter()

        assert observed.telemetry is not None
        assert observed.telemetry.cycles_observed == observed.cycles_simulated
        assert observed == plain  # observing never changes the run
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 1.3, f"telemetry/plain wall-time ratio {ratio:.2f}"

    def test_disabled_telemetry_leaves_no_machinery_attached(self):
        sim = Simulator(SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, mesh_radix=4,
            injection_fraction=0.1, seed=1,
        ))
        assert sim.telemetry is None
        for router in sim.network.routers:
            # The crossbar hook would shadow the class's _traverse.
            assert "_traverse" not in router.__dict__
            assert router.tracer is None
        for sink in sim.network.sinks:
            assert sink.accept.__qualname__.startswith("Sink.")
