"""Checked-mode cost: zero when off, bounded when on.

The acceptance bar for checked mode is a full default-scale
speculative-VC run with zero violations at bounded overhead over the
unchecked wall time; and strictly zero overhead when disabled (the
engine's per-step hook is a single attribute test).

The bound is 3x (measured ~2.3x).  It was 2x (measured ~1.4x) before
the hot-loop rework: the probes' absolute cost is unchanged, but the
unchecked baseline they are measured against got faster, so the
*relative* overhead grew.
"""

import time

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator, simulate

pytestmark = pytest.mark.sim


class TestCheckedOverhead:
    @pytest.mark.slow
    @pytest.mark.perf
    def test_default_spec_vc_run_within_3x(self):
        """Default 8x8 speculative-VC config, default measurement scale:
        checked completes clean, bit-equal to unchecked, within 3x.

        Pinned to the reference stepper: the bound characterises the
        probes' cost relative to a full-scan baseline.  The fast stepper
        skips idle work that probes still have to scan, so its ratio is
        load-dependent and not what this bound is about.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            stepper="reference",
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        unchecked = simulate(config, measurement)
        t1 = time.perf_counter()
        checked = simulate(config, measurement, checked=True)
        t2 = time.perf_counter()

        assert checked.validation is not None
        assert checked.validation["ok"]
        assert checked.validation["violations"] == []
        assert checked == unchecked
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 3.0, f"checked/unchecked wall-time ratio {ratio:.2f}"

    def test_disabled_probes_leave_no_machinery_attached(self):
        sim = Simulator(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4,
            injection_fraction=0.1, seed=1,
        ))
        assert sim.validation is None
        # No wrappers: sink.accept and the allocators are untouched
        # bound methods/instances, not probe proxies.
        for sink in sim.network.sinks:
            assert sink.accept.__qualname__.startswith("Sink.")
