"""Checked-mode and telemetry cost: zero when off, bounded when on.

The acceptance bar for checked mode is a full default-scale
speculative-VC run with zero violations at bounded overhead over the
unchecked wall time; and strictly zero overhead when disabled (the
engine's per-step hook is a single attribute test).

The bound is 3x (measured ~2.3x).  It was 2x (measured ~1.4x) before
the hot-loop rework: the probes' absolute cost is unchanged, but the
unchecked baseline they are measured against got faster, so the
*relative* overhead grew.

Telemetry at the default sampling rate is held to 1.3x (measured
~1.05x): its per-step hook is the same single attribute test, the
crossbar wrapper is two list increments per forwarded flit, and the
occupancy scan runs only every ``sample_period`` cycles.
"""

import time

import pytest

from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import Simulator, simulate
from repro.telemetry import TelemetryConfig

pytestmark = pytest.mark.sim


class TestCheckedOverhead:
    @pytest.mark.slow
    @pytest.mark.perf
    def test_default_spec_vc_run_within_3x(self):
        """Default 8x8 speculative-VC config, default measurement scale:
        checked completes clean, bit-equal to unchecked, within 3x.

        Pinned to the reference stepper: the bound characterises the
        probes' cost relative to a full-scan baseline.  The fast stepper
        skips idle work that probes still have to scan, so its ratio is
        load-dependent and not what this bound is about.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            stepper="reference",
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        unchecked = simulate(config, measurement)
        t1 = time.perf_counter()
        checked = simulate(config, measurement, checked=True)
        t2 = time.perf_counter()

        assert checked.validation is not None
        assert checked.validation["ok"]
        assert checked.validation["violations"] == []
        assert checked == unchecked
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 3.0, f"checked/unchecked wall-time ratio {ratio:.2f}"

    def test_disabled_probes_leave_no_machinery_attached(self):
        sim = Simulator(SimConfig(
            router_kind=RouterKind.WORMHOLE, mesh_radix=4,
            injection_fraction=0.1, seed=1,
        ))
        assert sim.validation is None
        # No wrappers: sink.accept and the allocators are untouched
        # bound methods/instances, not probe proxies.
        for sink in sim.network.sinks:
            assert sink.accept.__qualname__.startswith("Sink.")


class TestTelemetryOverhead:
    @pytest.mark.slow
    @pytest.mark.perf
    def test_default_spec_vc_run_within_1_3x(self):
        """Default 8x8 speculative-VC config at default sampling:
        telemetry-on is bit-equal to telemetry-off and within 1.3x.

        Pinned to the reference stepper for the same reason as the
        checked bound above: it characterises the collectors' cost
        against a stable full-scan baseline.
        """
        config = SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, seed=1,
            stepper="reference",
        )
        measurement = MeasurementConfig()

        t0 = time.perf_counter()
        plain = simulate(config, measurement)
        t1 = time.perf_counter()
        observed = simulate(config, measurement, telemetry=TelemetryConfig())
        t2 = time.perf_counter()

        assert observed.telemetry is not None
        assert observed.telemetry.cycles_observed == observed.cycles_simulated
        assert observed == plain  # observing never changes the run
        ratio = (t2 - t1) / (t1 - t0)
        assert ratio <= 1.3, f"telemetry/plain wall-time ratio {ratio:.2f}"

    def test_disabled_telemetry_leaves_no_machinery_attached(self):
        sim = Simulator(SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, mesh_radix=4,
            injection_fraction=0.1, seed=1,
        ))
        assert sim.telemetry is None
        for router in sim.network.routers:
            # The crossbar hook would shadow the class's _traverse.
            assert "_traverse" not in router.__dict__
            assert router.tracer is None
        for sink in sim.network.sinks:
            assert sink.accept.__qualname__.startswith("Sink.")
