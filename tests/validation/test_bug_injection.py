"""Deliberately injected bugs must trip the matching probe.

These are the teeth of checked mode: each test monkeypatches a real bug
into the simulator (a credit leak, a speculation-priority inversion, a
stalled allocator) and asserts the corresponding probe catches it --
with the right probe name, before the corrupted state can masquerade as
a mere performance difference.
"""

from types import SimpleNamespace

import pytest

from repro.sim.allocators import SpeculativeSwitchAllocator
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.credit import CreditCounter
from repro.sim.engine import simulate
from repro.sim.routers.base import BaseRouter, VCState
from repro.sim.routers.wormhole import WormholeRouter
from repro.sim.topology import NUM_PORTS
from repro.sim.validation import (
    FlitConservationProbe,
    InOrderDeliveryProbe,
    InvariantViolation,
    ValidationSuite,
    VCExclusivityProbe,
    WatchdogProbe,
)

pytestmark = pytest.mark.sim

MEAS = MeasurementConfig(
    warmup_cycles=300, sample_packets=100, max_cycles=12_000,
    drain_cycles=6_000,
)


def tiny_config(kind, **overrides):
    defaults = dict(
        router_kind=kind, mesh_radix=4,
        num_vcs=2 if kind.uses_vcs else 1,
        buffers_per_vc=5, injection_fraction=0.3, seed=5,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestCreditLeak:
    def test_dropped_credit_trips_consistency_probe(self, monkeypatch):
        """A single silently dropped credit breaks the per-link credit
        identity the same cycle it is dropped."""
        real = BaseRouter.receive_credit
        dropped = []

        def leaky(self, port, vc):
            if not dropped:
                dropped.append((self.node, port, vc))
                return  # the leak: credit arrives but is never restored
            real(self, port, vc)

        monkeypatch.setattr(BaseRouter, "receive_credit", leaky)
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(tiny_config(RouterKind.WORMHOLE), MEAS, checked=True)
        assert dropped, "the injected leak never fired"
        assert excinfo.value.violation.probe == "credit_consistency"

    def test_duplicated_credit_trips_consistency_probe(self, monkeypatch):
        """The mirror bug -- a credit restored twice -- overshoots the
        identity (and would eventually overflow the CreditCounter)."""
        real = BaseRouter.receive_credit
        duplicated = []

        def doubling(self, port, vc):
            real(self, port, vc)
            if not duplicated and self.output_vcs[port][vc].credits.in_use:
                duplicated.append((self.node, port, vc))
                real(self, port, vc)

        monkeypatch.setattr(BaseRouter, "receive_credit", doubling)
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(tiny_config(RouterKind.WORMHOLE), MEAS, checked=True)
        assert duplicated, "the injected duplication never fired"
        assert excinfo.value.violation.probe == "credit_consistency"


class TestSpeculationInversion:
    def test_unfiltered_speculative_grants_trip_legality_probe(
        self, monkeypatch
    ):
        """Remove the combiner's priority filtering: speculative grants
        no longer yield to non-speculative ones, so the first contended
        cycle produces an inversion (or a double-granted port) and the
        legality probe fires at allocation time -- before the router
        could act on the illegal grants."""

        def unfiltered(self, nonspec_requests, spec_requests):
            nonspec_grants = self._nonspec.allocate(nonspec_requests)
            spec_grants = self._spec.allocate(spec_requests)
            return nonspec_grants, spec_grants

        monkeypatch.setattr(
            SpeculativeSwitchAllocator, "allocate", unfiltered
        )
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC, injection_fraction=0.5),
                MEAS, checked=True,
            )
        assert excinfo.value.violation.probe == "speculation_legality"

    def test_fabricated_grant_trips_legality_probe(self, monkeypatch):
        """A grant answering no submitted request is flagged even when
        it collides with nothing."""
        from repro.sim.allocators import Grant

        real = SpeculativeSwitchAllocator.allocate

        def fabricating(self, nonspec_requests, spec_requests):
            nonspec_grants, spec_grants = real(
                self, nonspec_requests, spec_requests
            )
            if not nonspec_grants and not spec_grants:
                return nonspec_grants, spec_grants
            return nonspec_grants, list(spec_grants) + [Grant(4, 0, 4)]

        monkeypatch.setattr(
            SpeculativeSwitchAllocator, "allocate", fabricating
        )
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=True
            )
        assert excinfo.value.violation.probe == "speculation_legality"
        assert "answers no submitted request" in str(excinfo.value)


class TestWatchdog:
    def test_stalled_allocator_trips_deadlock_watchdog(self, monkeypatch):
        """Disable switch allocation entirely: injected flits sit in the
        buffers forever and the watchdog trips with a snapshot."""
        monkeypatch.setattr(
            WormholeRouter, "_allocation_phase", lambda self, cycle: None
        )
        config = tiny_config(RouterKind.WORMHOLE)
        suite = ValidationSuite([WatchdogProbe(stall_horizon=50)])
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(config, MEAS, checked=suite)
        violation = excinfo.value.violation
        assert violation.probe == "watchdog"
        assert "deadlock" in violation.message
        assert violation.snapshot is not None
        assert "reproduce" in violation.snapshot

    def test_quiescent_network_never_trips(self):
        """Zero traffic: the watchdog's idle test keeps it silent for
        arbitrarily many cycles."""
        config = tiny_config(RouterKind.WORMHOLE, injection_fraction=0.0)
        suite = ValidationSuite([WatchdogProbe(stall_horizon=10)])
        meas = MeasurementConfig(
            warmup_cycles=200, sample_packets=1, max_cycles=300,
            drain_cycles=50,
        )
        result = simulate(config, meas, checked=suite)
        assert result.validation["ok"]


class TestPackedStateCorruption:
    """Corrupting the packed struct-of-arrays state mid-run must trip
    the matching probe the same cycle.

    The router state lives in flat parallel arrays (``_ovc_credits``,
    the three state bitmasks, ``_ivc_queues``) that the specialized
    steppers index directly.  A stray write to any of them is exactly
    the failure mode a fast-path bug would produce, so each test
    reaches into one packed structure after a router's phases run and
    asserts checked mode catches the drift before it can masquerade as
    ordinary backpressure.
    """

    #: Cycle after which the one-shot corruption arms -- past warmup,
    #: so traffic is flowing and the corrupted state is live.
    CORRUPT_AFTER = 400

    #: Center node of the 4x4 mesh (x=1, y=1): every port has a real
    #: neighbor, so corrupted state is on links the probes watch.
    CENTER = 5

    @classmethod
    def _corrupt_once_after(cls, monkeypatch, corrupt):
        """Wrap ``BaseRouter.cycle`` to apply ``corrupt`` exactly once.

        ``corrupt(router, cycle)`` runs after the router's phases and
        returns True once it found a victim and mutated it; the probe
        sweep at the end of that same network cycle then sees the
        corruption.  Returns the ``fired`` list for asserting the
        injection actually happened.
        """
        real = BaseRouter.cycle
        fired = []

        def wrapped(self, cycle):
            real(self, cycle)
            if not fired and cycle >= cls.CORRUPT_AFTER \
                    and corrupt(self, cycle):
                fired.append((self.node, cycle))

        monkeypatch.setattr(BaseRouter, "cycle", wrapped)
        return fired

    def test_packed_credit_decrement_trips_consistency_probe(
        self, monkeypatch
    ):
        """Stealing one credit from the flat ``_ovc_credits`` array
        breaks the per-link credit identity."""

        def steal_credit(router, cycle):
            if router.node != self.CENTER:
                return False
            # Flat index num_vcs == (EAST, vc 0); a real CreditCounter,
            # unlike the LOCAL port's InfiniteCredits at 0..v-1.
            counter = router._ovc_credits[router.num_vcs]
            assert isinstance(counter, CreditCounter)
            if counter._credits <= 0:
                return False
            counter._credits -= 1
            return True

        fired = self._corrupt_once_after(monkeypatch, steal_credit)
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=True
            )
        assert fired, "the injected credit theft never fired"
        assert excinfo.value.violation.probe == "credit_consistency"

    def test_flipped_state_bitmask_bit_trips_exclusivity_probe(
        self, monkeypatch
    ):
        """Toggling one ``_active_mask`` bit desynchronises the packed
        masks from the per-VC states, whichever way it flips."""

        def flip_bit(router, cycle):
            if router.node != self.CENTER:
                return False
            router._active_mask ^= 1  # LOCAL port, vc 0
            return True

        fired = self._corrupt_once_after(monkeypatch, flip_bit)
        suite = ValidationSuite([VCExclusivityProbe()])
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=suite
            )
        assert fired, "the injected mask flip never fired"
        violation = excinfo.value.violation
        assert violation.probe == "vc_exclusivity"
        assert "bitmasks out of sync" in violation.message

    def test_corrupted_route_entry_trips_exclusivity_probe(
        self, monkeypatch
    ):
        """Rewriting an active input VC's route orphans the output VC
        it holds: the holder no longer points back at it."""

        def rewrite_route(router, cycle):
            for ivc in router._all_ivcs:
                if ivc.state is VCState.ACTIVE and ivc.out_vc is not None:
                    ivc.route = (ivc.route + 1) % NUM_PORTS
                    return True
            return False

        fired = self._corrupt_once_after(monkeypatch, rewrite_route)
        suite = ValidationSuite([VCExclusivityProbe()])
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=suite
            )
        assert fired, "the injected route rewrite never fired"
        assert excinfo.value.violation.probe == "vc_exclusivity"

    def test_silently_dropped_flit_trips_conservation_probe(
        self, monkeypatch
    ):
        """Popping a flit out of a flat buffer queue without forwarding
        it breaks the router's received/forwarded/buffered ledger."""

        def drop_flit(router, cycle):
            for queue in router._ivc_queues:
                if queue:
                    queue.popleft()
                    return True
            return False

        fired = self._corrupt_once_after(monkeypatch, drop_flit)
        suite = ValidationSuite([FlitConservationProbe()])
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(RouterKind.SPECULATIVE_VC), MEAS, checked=suite
            )
        assert fired, "the injected flit drop never fired"
        assert excinfo.value.violation.probe == "flit_conservation"


class TestRouteMemoCorruption:
    """Corrupting a packet-dependent route memo must be observable.

    The o1turn/adaptive route tables are computed lazily, interned on
    the step plan, and -- critically -- consulted by the *generic* route
    methods too.  Checked mode forces the generic path, so a corrupted
    memo steers real packets: the first head it misroutes ejects at the
    wrong sink and the delivery probe flags it the cycle it arrives.
    If the generic path ever stopped reading the shared memo, the
    injected corruption would become invisible and these tests would
    fail on ``fired``/``raises`` -- guarding the bit-identity coupling
    between the specialized and generic paths.
    """

    CORRUPT_AFTER = TestPackedStateCorruption.CORRUPT_AFTER
    CENTER = TestPackedStateCorruption.CENTER

    def test_corrupted_o1turn_memo_trips_delivery_probe(self, monkeypatch):
        from repro.sim.topology import LOCAL

        def corrupt(router, cycle):
            if router.node != self.CENTER:
                return False
            tables = router._o1turn_route_tables
            if tables is None:
                return False  # not consulted yet; try again next cycle
            everything_local = tuple(LOCAL for _ in tables[0])
            router._o1turn_route_tables = (
                everything_local, everything_local,
            )
            return True

        fired = TestPackedStateCorruption._corrupt_once_after(
            monkeypatch, corrupt
        )
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(
                    RouterKind.SPECULATIVE_VC, routing_function="o1turn"
                ),
                MEAS, checked=True,
            )
        assert fired, "the injected memo corruption never fired"
        violation = excinfo.value.violation
        assert violation.probe == "in_order_delivery"
        assert f"ejected at node {self.CENTER}" in violation.message

    def test_corrupted_adaptive_memo_trips_delivery_probe(self, monkeypatch):
        from repro.sim.topology import LOCAL

        def corrupt(router, cycle):
            if router.node != self.CENTER:
                return False
            table = router._adaptive_route_table
            if table is None:
                return False
            router._adaptive_route_table = tuple(
                ((LOCAL,), LOCAL) for _ in table
            )
            return True

        fired = TestPackedStateCorruption._corrupt_once_after(
            monkeypatch, corrupt
        )
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(
                    RouterKind.SPECULATIVE_VC, routing_function="adaptive"
                ),
                MEAS, checked=True,
            )
        assert fired, "the injected memo corruption never fired"
        violation = excinfo.value.violation
        assert violation.probe == "in_order_delivery"
        assert f"ejected at node {self.CENTER}" in violation.message


class TestMatchingAdjacencyCorruption:
    def test_flipped_adjacency_bit_trips_legality_probe(self, monkeypatch):
        """Pointing one group's adjacency bitmask at a resource nobody
        requested makes the maximum matcher emit a grant answering no
        request; the legality probe flags it the same cycle, at the
        allocate() boundary -- before the router can act on it."""
        from repro.sim.matching import MaximumMatchingAllocator

        real = MaximumMatchingAllocator._match
        fired = []

        def corrupting(self, adjacency, chooser):
            # Target the speculative switch sub-allocators (p resources);
            # leave the (p*v)-resource VC allocator alone.
            if self.num_resources == NUM_PORTS and adjacency:
                requested = 0
                for mask in adjacency.values():
                    requested |= mask
                group = sorted(adjacency)[0]
                for resource in range(self.num_resources):
                    if not requested >> resource & 1:
                        adjacency[group] = 1 << resource
                        chooser[group * self.num_resources + resource] = 0
                        fired.append((group, resource))
                        break
            return real(self, adjacency, chooser)

        monkeypatch.setattr(MaximumMatchingAllocator, "_match", corrupting)
        with pytest.raises(InvariantViolation) as excinfo:
            simulate(
                tiny_config(
                    RouterKind.SPECULATIVE_VC, allocator_kind="maximum",
                    injection_fraction=0.4,
                ),
                MEAS, checked=True,
            )
        assert fired, "the injected adjacency flip never fired"
        violation = excinfo.value.violation
        assert violation.probe == "speculation_legality"
        assert "answers no submitted request" in violation.message


class TestInOrderDelivery:
    @staticmethod
    def _bound_probe():
        probe = InOrderDeliveryProbe()
        suite = ValidationSuite([probe], fail_fast=False)
        probe.bind(suite)
        return probe, suite

    @staticmethod
    def _flit(pid, index, length, destination=3):
        packet = SimpleNamespace(
            packet_id=pid, length=length, destination=destination
        )
        return SimpleNamespace(
            packet=packet, index=index, is_tail=index == length - 1
        )

    def test_wrong_destination_is_flagged(self):
        probe, suite = self._bound_probe()
        sink = SimpleNamespace(node=9)
        probe._observe(sink, self._flit(7, 0, 3, destination=3), cycle=10)
        assert not suite.ok
        assert "destination 3" in suite.violations[0].message

    def test_out_of_order_flit_is_flagged(self):
        probe, suite = self._bound_probe()
        sink = SimpleNamespace(node=3)
        probe._observe(sink, self._flit(7, 0, 3), cycle=10)
        probe._observe(sink, self._flit(7, 2, 3), cycle=11)  # skipped 1
        assert not suite.ok
        assert "expected index 1" in suite.violations[0].message

    def test_split_across_sinks_is_flagged(self):
        probe, suite = self._bound_probe()
        probe._observe(SimpleNamespace(node=3), self._flit(7, 0, 3), 10)
        probe._observe(SimpleNamespace(node=9), self._flit(7, 1, 3), 11)
        assert any(
            "ejected at node 9" in v.message for v in suite.violations
        )

    def test_in_order_packet_is_clean(self):
        probe, suite = self._bound_probe()
        sink = SimpleNamespace(node=3)
        for index in range(3):
            probe._observe(sink, self._flit(7, index, 3), 10 + index)
        assert suite.ok
        assert probe._expected == {}  # tail retired the tracking entry
