"""Checked mode through the Experiment runtime and its environment."""

import pytest

from repro.runtime.experiment import Experiment
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

pytestmark = pytest.mark.sim

MEAS = MeasurementConfig(
    warmup_cycles=80, sample_packets=60, max_cycles=10_000,
    drain_cycles=5_000,
)
CONFIG = SimConfig(
    router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4, num_vcs=2,
    buffers_per_vc=4, injection_fraction=0.2, seed=3,
)


class TestExperimentChecked:
    def test_run_one_carries_validation_summary(self):
        result = Experiment(MEAS, checked=True).run_one(CONFIG)
        assert result.validation is not None
        assert result.validation["ok"]

    def test_unchecked_by_default(self):
        assert Experiment(MEAS).run_one(CONFIG).validation is None

    def test_parallel_checked_matches_serial(self):
        serial = Experiment(MEAS, workers=0, checked=True).run_sweep(
            CONFIG, "serial", loads=(0.1, 0.2)
        )
        parallel = Experiment(MEAS, workers=2, checked=True).run_sweep(
            CONFIG, "parallel", loads=(0.1, 0.2)
        )
        assert serial.points == parallel.points
        assert all(p.validation["ok"] for p in parallel.points)

    def test_checked_runs_bypass_the_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        checked = Experiment(MEAS, cache=cache_dir, checked=True)
        checked.run_one(CONFIG)
        checked.run_one(CONFIG)
        # Neither read nor wrote: the next unchecked experiment misses.
        assert checked.stats.cache_hits == 0
        unchecked = Experiment(MEAS, cache=cache_dir)
        unchecked.run_one(CONFIG)
        assert unchecked.stats.cache_hits == 0
        again = Experiment(MEAS, cache=cache_dir)
        result = again.run_one(CONFIG)
        assert again.stats.cache_hits == 1
        assert result.validation is None

    def test_env_var_enables_checked(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKED", "1")
        assert Experiment(MEAS).checked
        monkeypatch.setenv("REPRO_CHECKED", "0")
        assert not Experiment(MEAS).checked
        monkeypatch.delenv("REPRO_CHECKED")
        assert not Experiment(MEAS).checked

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKED", "1")
        assert not Experiment(MEAS, checked=False).checked
