"""Differential oracles: two execution paths, diffed."""

import pytest

from repro.sim.metrics import RunResult
from repro.sim.validation.oracle import (
    Mismatch,
    OracleReport,
    diff_run_results,
    oracle_cached_vs_uncached,
    oracle_fast_vs_reference,
    oracle_serial_vs_parallel,
    oracle_spec_vs_nonspec,
    oracle_telemetry_on_vs_off,
)

pytestmark = pytest.mark.sim


def run_result(**overrides):
    defaults = dict(
        injection_fraction=0.1, latency=None, accepted_fraction=0.09,
        saturated=False, cycles_simulated=500, sample_packets=100,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestReportMechanics:
    def test_compare_records_mismatch(self):
        report = OracleReport("t", "a", "b")
        assert report.compare("same", 1, 1)
        assert not report.compare("diff", 1, 2)
        assert report.checks == 2
        assert not report.ok
        assert "diff" in str(report.mismatches[0])

    def test_expect_records_failed_condition(self):
        report = OracleReport("t", "a", "b")
        report.expect(False, "never holds", 3, 4)
        assert report.mismatches == [Mismatch("never holds", 3, 4)]

    def test_to_dict_and_describe(self):
        report = OracleReport("t", "a", "b")
        report.compare("x", 1, 2)
        data = report.to_dict()
        assert data["ok"] is False
        assert data["checks"] == 1
        assert "FAILED" in report.describe()

    def test_diff_equal_results_is_one_check(self):
        report = OracleReport("t", "a", "b")
        diff_run_results(report, run_result(), run_result())
        assert report.ok
        assert report.checks == 1

    def test_diff_unequal_results_names_the_field(self):
        report = OracleReport("t", "a", "b")
        diff_run_results(
            report, run_result(), run_result(cycles_simulated=501)
        )
        assert not report.ok
        assert any(
            m.what == "point.cycles_simulated" for m in report.mismatches
        )
        # The fields that do match are not reported as mismatches.
        assert all(
            "sample_packets" not in m.what for m in report.mismatches
        )


class TestOracles:
    def test_spec_vs_nonspec(self):
        report = oracle_spec_vs_nonspec()
        assert report.ok, report.describe()
        assert report.checks >= 7

    def test_serial_vs_parallel(self):
        report = oracle_serial_vs_parallel(loads=(0.1, 0.2))
        assert report.ok, report.describe()

    def test_cached_vs_uncached(self, tmp_path):
        report = oracle_cached_vs_uncached(tmp_path / "cache")
        assert report.ok, report.describe()
        # One fresh-then-cached round trip per load per backend
        # (serial, process, ssh loopback).
        assert report.checks == 9

    def test_fast_vs_reference(self):
        report = oracle_fast_vs_reference(seed=3, cases=4)
        assert report.ok, report.describe()
        # One RunResult diff plus one delivery-history diff per case.
        assert report.checks == 8

    def test_telemetry_on_vs_off(self):
        report = oracle_telemetry_on_vs_off()
        assert report.ok, report.describe()
        # Result diff + delivery diff + 2 structural checks per config.
        assert report.checks == 16
