"""Tests for the tau/tau4 unit system and technology grounding."""

import math

import pytest

from repro.delaymodel.tau import (
    CMOS_018UM,
    CMOS_08UM,
    DEFAULT_CLOCK_TAU4,
    TAU4_IN_TAU,
    Technology,
    tau4_to_tau,
    tau_to_tau4,
)


class TestUnitConversions:
    def test_tau4_is_five_tau(self):
        # EQ 3: an inverter driving four inverters has delay g*h + p = 5 tau.
        assert TAU4_IN_TAU == 5.0

    def test_tau4_to_tau(self):
        assert tau4_to_tau(20.0) == 100.0

    def test_tau_to_tau4(self):
        assert tau_to_tau4(100.0) == 20.0

    def test_roundtrip(self):
        for value in (0.0, 1.0, 3.7, 123.456):
            assert math.isclose(tau_to_tau4(tau4_to_tau(value)), value)

    def test_default_clock_is_20_tau4(self):
        assert DEFAULT_CLOCK_TAU4 == 20.0


class TestTechnology:
    def test_018um_tau4_is_90ps(self):
        assert CMOS_018UM.tau4_ps == 90.0

    def test_018um_20tau4_cycle_is_about_2ns(self):
        # Paper footnote 12: a 20-tau4 cycle is approximately 2 ns.
        assert CMOS_018UM.tau4_to_ps(20.0) == pytest.approx(1800.0)
        assert 1500.0 < CMOS_018UM.tau4_to_ps(20.0) < 2100.0

    def test_018um_clock_near_500mhz(self):
        # "corresponding to a 500 MHz clock"
        assert CMOS_018UM.clock_frequency_mhz(20.0) == pytest.approx(555.6, abs=1.0)

    def test_tau_ps_derived_from_tau4(self):
        assert CMOS_018UM.tau_ps == pytest.approx(18.0)

    def test_tau_to_ps(self):
        assert CMOS_018UM.tau_to_ps(10.0) == pytest.approx(180.0)

    def test_08um_slower_than_018um(self):
        assert CMOS_08UM.tau4_ps > CMOS_018UM.tau4_ps

    def test_invalid_tau4_rejected(self):
        with pytest.raises(ValueError):
            Technology("bad", 0.0)
        with pytest.raises(ValueError):
            Technology("bad", -1.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CMOS_018UM.tau4_ps = 50.0
