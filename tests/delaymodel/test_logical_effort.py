"""Tests for the logical-effort engine (EQ 2 / EQ 3) and the gate library."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.delaymodel import gates
from repro.delaymodel.logical_effort import (
    Path,
    Stage,
    buffer_chain_delay,
    inverter_delay,
    log2,
    log4,
    log8,
    optimal_stage_count,
    path_from_efforts,
)


class TestStage:
    def test_effort_delay_is_g_times_h(self):
        stage = Stage("x", logical_effort=2.0, electrical_effort=3.0, parasitic=1.0)
        assert stage.effort_delay == 6.0

    def test_delay_adds_parasitic(self):
        stage = Stage("x", 2.0, 3.0, 1.5)
        assert stage.delay == 7.5

    @pytest.mark.parametrize("g,h,p", [(0.0, 1.0, 1.0), (1.0, 0.0, 1.0), (1.0, 1.0, -0.1)])
    def test_invalid_stage_rejected(self, g, h, p):
        with pytest.raises(ValueError):
            Stage("bad", g, h, p)


class TestInverterDelay:
    def test_eq3_tau4_definition(self):
        # EQ 3 worked example: inverter driving 4 inverters = 5 tau.
        assert inverter_delay(4) == 5.0

    def test_unit_fanout(self):
        # Definition of tau itself: inverter driving one copy = 2 tau
        # (1 effort + 1 parasitic).
        assert inverter_delay(1) == 2.0

    def test_rejects_nonpositive_fanout(self):
        with pytest.raises(ValueError):
            inverter_delay(0)


class TestPath:
    def test_eq2_sums_effort_and_parasitic(self):
        path = Path("p")
        path.add(Stage("a", 1.0, 4.0, 1.0))
        path.add(Stage("b", 4.0 / 3.0, 3.0, 2.0))
        assert path.effort_delay == pytest.approx(4.0 + 4.0)
        assert path.parasitic_delay == pytest.approx(3.0)
        assert path.delay == pytest.approx(11.0)

    def test_empty_path_has_zero_delay(self):
        assert Path("empty").delay == 0.0

    def test_path_effort_is_product(self):
        path = path_from_efforts("p", [("a", 1.0, 4.0, 1.0), ("b", 2.0, 3.0, 0.0)])
        assert path.path_effort == pytest.approx(24.0)

    def test_extend_and_len(self):
        path = Path("p").extend([Stage("a", 1, 1, 1), Stage("b", 1, 1, 1)])
        assert len(path) == 2

    def test_describe_mentions_stages(self):
        path = path_from_efforts("demo", [("nand2", 4 / 3, 2.0, 2.0)])
        text = path.describe()
        assert "demo" in text
        assert "nand2" in text

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10),
                st.floats(min_value=0.1, max_value=10),
                st.floats(min_value=0.0, max_value=10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_delay_equals_sum_of_stage_delays(self, triples):
        path = Path("prop")
        for i, (g, h, p) in enumerate(triples):
            path.add(Stage(f"s{i}", g, h, p))
        assert path.delay == pytest.approx(sum(g * h + p for g, h, p in triples))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=10),
                st.floats(min_value=0.1, max_value=10),
                st.floats(min_value=0.0, max_value=10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_delay_monotone_under_stage_addition(self, triples):
        path = Path("prop")
        last = 0.0
        for i, (g, h, p) in enumerate(triples):
            path.add(Stage(f"s{i}", g, h, p))
            assert path.delay >= last
            last = path.delay


class TestHelpers:
    def test_log_bases(self):
        assert log2(8) == pytest.approx(3.0)
        assert log4(16) == pytest.approx(2.0)
        assert log8(64) == pytest.approx(2.0)

    @pytest.mark.parametrize("fn", [log2, log4, log8])
    def test_log_domain_errors(self, fn):
        with pytest.raises(ValueError):
            fn(0)

    def test_optimal_stage_count_unity(self):
        assert optimal_stage_count(1.0) == 1
        assert optimal_stage_count(0.5) == 1

    def test_optimal_stage_count_grows(self):
        assert optimal_stage_count(4.0) == 1
        assert optimal_stage_count(64.0) == 3
        assert optimal_stage_count(4.0 ** 6) == 6

    def test_buffer_chain_delay_zero_for_unit_fanout(self):
        assert buffer_chain_delay(1.0) == 0.0

    def test_buffer_chain_delay_matches_table1_term(self):
        # The crossbar's "9 log8(x)" term: stage effort 8 -> 9 tau per stage.
        assert buffer_chain_delay(8.0) == pytest.approx(9.0)
        assert buffer_chain_delay(64.0) == pytest.approx(18.0)

    def test_buffer_chain_rejects_below_one(self):
        with pytest.raises(ValueError):
            buffer_chain_delay(0.5)

    @given(st.floats(min_value=1.0, max_value=1e6))
    def test_buffer_chain_monotone(self, fanout):
        assert buffer_chain_delay(fanout * 2) > buffer_chain_delay(fanout)


class TestGateLibrary:
    def test_inverter_reference_values(self):
        inv = gates.inverter()
        assert inv.logical_effort == 1.0
        assert inv.parasitic == 1.0

    def test_nand_efforts(self):
        assert gates.nand(2).logical_effort == pytest.approx(4.0 / 3.0)
        assert gates.nand(3).logical_effort == pytest.approx(5.0 / 3.0)
        assert gates.nand(2).parasitic == 2.0

    def test_nor_efforts(self):
        assert gates.nor(2).logical_effort == pytest.approx(5.0 / 3.0)
        assert gates.nor(3).logical_effort == pytest.approx(7.0 / 3.0)
        assert gates.nor(3).parasitic == 3.0

    def test_nor_worse_than_nand(self):
        # PMOS stacks make NOR slower than NAND at equal width.
        for n in (2, 3, 4):
            assert gates.nor(n).logical_effort > gates.nand(n).logical_effort

    def test_eq6_update_path_efforts(self):
        # EQ 6: h_eff = nor2 + nor3 = 5/3 + 7/3 = 4; h_par = 2 + 3 = 5.
        nor2, nor3 = gates.nor(2), gates.nor(3)
        assert nor2.logical_effort + nor3.logical_effort == pytest.approx(4.0)
        assert nor2.parasitic + nor3.parasitic == pytest.approx(5.0)

    def test_mux_effort(self):
        assert gates.mux(2).logical_effort == 2.0

    def test_aoi_effort(self):
        aoi22 = gates.aoi(2, 2)
        assert aoi22.logical_effort == pytest.approx(2.0)
        assert aoi22.parasitic == 4.0

    def test_stage_factory(self):
        stage = gates.nand(2).stage(3.0, "labelled")
        assert stage.name == "labelled"
        assert stage.delay == pytest.approx(4.0 / 3.0 * 3.0 + 2.0)

    @pytest.mark.parametrize("factory", [gates.nand, gates.nor, gates.mux])
    def test_zero_width_rejected(self, factory):
        with pytest.raises(ValueError):
            factory(0)
