"""Tests for the Chien-model comparison (Section 2's critique)."""

import pytest

from repro.delaymodel.chien import (
    chien_router_delay,
    compare_architectures,
    comparison_table,
    render_comparison,
)


class TestChienDelay:
    def test_breakdown_sums(self):
        breakdown = chien_router_delay(5, 2, 32)
        assert breakdown.total_tau == pytest.approx(
            breakdown.address_decode_tau
            + breakdown.routing_tau
            + breakdown.crossbar_arbitration_tau
            + breakdown.crossbar_traversal_tau
            + breakdown.vc_controller_tau
        )

    def test_no_vc_controller_at_v1(self):
        assert chien_router_delay(5, 1, 32).vc_controller_tau == 0.0
        assert chien_router_delay(5, 2, 32).vc_controller_tau > 0.0

    def test_grows_rapidly_with_vcs(self):
        """The Section 2 complaint: per-VC crossbar ports make delay grow
        'very rapidly with the number of virtual channels'."""
        v2 = chien_router_delay(5, 2, 32).total_tau
        v8 = chien_router_delay(5, 8, 32).total_tau
        assert v8 > v2 + 50.0  # tens of tau of growth

    def test_crossbar_dominates_growth(self):
        v2 = chien_router_delay(5, 2, 32)
        v8 = chien_router_delay(5, 8, 32)
        crossbar_growth = (
            v8.crossbar_traversal_tau + v8.crossbar_arbitration_tau
            - v2.crossbar_traversal_tau - v2.crossbar_arbitration_tau
        )
        total_growth = v8.total_tau - v2.total_tau
        # the p*v-port crossbar and its arbitration account for most of
        # the growth (the rest is the v:1 VC controller).
        assert crossbar_growth > 0.6 * total_growth

    def test_invalid_v(self):
        with pytest.raises(ValueError):
            chien_router_delay(5, 0, 32)


class TestComparison:
    def test_chien_clock_stretches_with_v(self):
        v2 = compare_architectures(5, 2, 32)
        v8 = compare_architectures(5, 8, 32)
        assert v8.chien_clock_tau4 > v2.chien_clock_tau4

    def test_pipelined_clock_fixed(self):
        for v in (1, 2, 4, 8):
            assert compare_architectures(5, v, 32).pipelined_clock_tau4 == 20.0

    def test_chien_slower_than_pipelined_clock(self):
        comparison = compare_architectures(5, 4, 32)
        assert comparison.chien_frequency_penalty > 1.5

    def test_table_covers_requested_vs(self):
        table = comparison_table(v_values=(1, 2, 4))
        assert [c.v for c in table] == [1, 2, 4]

    def test_wormhole_case_uses_wormhole_pipeline(self):
        comparison = compare_architectures(5, 1, 32)
        assert comparison.pipelined_stages == 3

    def test_render(self):
        text = render_comparison(comparison_table())
        assert "Chien" in text
        assert "stages" in text
