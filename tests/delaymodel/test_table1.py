"""Tests for the Table 1 generator."""

import pytest

from repro.delaymodel.table1 import (
    REFERENCE_P,
    REFERENCE_V,
    REFERENCE_W,
    Table1Row,
    generate_table1,
    render_table1,
)


class TestGenerateTable1:
    def test_row_count(self):
        assert len(generate_table1()) == 11

    def test_all_sections_present(self):
        sections = {row.section for row in generate_table1()}
        assert sections == {"wormhole", "virtual-channel", "speculative"}

    def test_reference_rows_carry_paper_columns(self):
        rows = generate_table1()
        published = [r for r in rows if r.paper_model_tau4 is not None]
        assert len(published) == 9

    def test_model_matches_paper_within_tolerance(self):
        # Every published row reproduces within 0.7 tau4 (the crossbar's
        # documented deviation); all but the crossbar within 0.15.
        for row in generate_table1():
            if row.paper_model_tau4 is None:
                continue
            tolerance = 0.7 if "crossbar" in row.module else 0.15
            assert abs(row.deviation_tau4) <= tolerance, row

    def test_non_reference_config_drops_paper_columns(self):
        rows = generate_table1(p=7, w=32, v=4)
        assert all(row.paper_model_tau4 is None for row in rows)
        assert all(row.deviation_tau4 is None for row in rows)

    def test_non_reference_config_changes_values(self):
        reference = {r.module: r.model_tau4 for r in generate_table1()}
        other = {r.module: r.model_tau4 for r in generate_table1(p=7, w=64, v=4)}
        assert all(other[m] > reference[m] for m in reference)

    def test_reference_constants(self):
        assert (REFERENCE_P, REFERENCE_W, REFERENCE_V) == (5, 32, 2)


class TestRenderTable1:
    def test_render_contains_all_modules(self):
        text = render_table1()
        for row in generate_table1():
            assert row.module in text

    def test_render_shows_units(self):
        assert "tau4" in render_table1()

    def test_render_accepts_explicit_rows(self):
        rows = [Table1Row("wormhole", "only", 1.0, None, None)]
        text = render_table1(rows)
        assert "only" in text
        assert "switch arbiter" not in text
