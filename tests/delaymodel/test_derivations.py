"""Tests for the constructive gate-level derivations of Table 1 modules.

The constructive paths are structural reconstructions, not fits: they
must track the closed forms' values (within ~1-2 tau4) and, more
importantly, their *scaling* in p, v and w.
"""

import pytest

from repro.delaymodel.arbiter import matrix_arbiter_core_path, matrix_arbiter_path
from repro.delaymodel.derivations import (
    combiner_path,
    crossbar_path,
    separable_allocator_path,
)
from repro.delaymodel.modules import (
    RoutingRange,
    combiner_delay,
    crossbar_delay,
    switch_allocator_delay,
    vc_allocator_delay,
)

PS = (5, 7)
VS = (2, 4, 8, 16)


class TestCrossbarPath:
    @pytest.mark.parametrize("p,w", [(5, 32), (7, 32), (5, 64), (10, 32)])
    def test_tracks_closed_form(self, p, w):
        constructed = crossbar_path(p, w).delay
        closed = crossbar_delay(p, w)
        assert constructed == pytest.approx(closed, abs=7.0)  # ~1.4 tau4

    def test_scaling_in_width_and_ports(self):
        assert crossbar_path(5, 64).delay > crossbar_path(5, 32).delay
        assert crossbar_path(10, 32).delay > crossbar_path(5, 32).delay

    def test_invalid(self):
        with pytest.raises(ValueError):
            crossbar_path(1, 32)
        with pytest.raises(ValueError):
            crossbar_path(5, 0)


class TestSeparableAllocatorPath:
    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("v", VS)
    def test_switch_allocator_figure_7b(self, p, v):
        constructed = separable_allocator_path(v, p, fanout_between=p).delay
        closed = switch_allocator_delay(p, v)
        assert constructed == pytest.approx(closed, abs=10.0)  # ~2 tau4

    @pytest.mark.parametrize("p", PS)
    @pytest.mark.parametrize("v", VS)
    def test_vc_allocator_figure_8b(self, p, v):
        constructed = separable_allocator_path(
            v, p * v, fanout_between=p * v
        ).delay
        closed = vc_allocator_delay(p, v, RoutingRange.RP)
        assert constructed == pytest.approx(closed, abs=10.0)

    def test_degenerate_first_stage_skipped(self):
        single = separable_allocator_path(1, 5)
        full = separable_allocator_path(4, 5)
        assert single.delay < full.delay

    def test_invalid(self):
        with pytest.raises(ValueError):
            separable_allocator_path(0, 5)
        with pytest.raises(ValueError):
            separable_allocator_path(2, 1)


class TestCombinerPath:
    @pytest.mark.parametrize("p,v", [(5, 2), (5, 8), (7, 16)])
    def test_tracks_closed_form(self, p, v):
        constructed = combiner_path(p, v).delay
        closed = combiner_delay(p, v)
        assert constructed == pytest.approx(closed, abs=5.0)  # 1 tau4

    def test_shallow(self):
        # the combiner must comfortably fold into the crossbar stage.
        assert combiner_path(7, 32).delay < 40.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            combiner_path(1, 2)


class TestCorePath:
    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_core_lighter_than_full_arbiter(self, n):
        assert matrix_arbiter_core_path(n).delay < matrix_arbiter_path(n).delay

    def test_core_monotone(self):
        assert (
            matrix_arbiter_core_path(16).delay > matrix_arbiter_core_path(4).delay
        )
