"""Tests for the clock/design-space optimizer."""

import pytest
from hypothesis import given, strategies as st

from repro.delaymodel.optimizer import (
    credit_loop_cycles,
    min_buffers_for_full_throughput,
    optimal_clock,
    render_clock_sweep,
    sweep_clock,
)
from repro.delaymodel.pipeline import FlowControl


class TestSweepClock:
    def test_points_for_each_clock(self):
        points = sweep_clock(
            FlowControl.WORMHOLE, 5, 32, clocks_tau4=(15, 20, 30)
        )
        assert [p.clock_tau4 for p in points] == [15, 20, 30]

    def test_stages_nonincreasing_in_clock(self):
        points = sweep_clock(
            FlowControl.VIRTUAL_CHANNEL, 5, 32, v=4,
            clocks_tau4=tuple(range(10, 41, 2)),
        )
        stages = [p.stages for p in points]
        assert all(a >= b for a, b in zip(stages, stages[1:]))

    def test_per_hop_is_product(self):
        for point in sweep_clock(FlowControl.WORMHOLE, 5, 32):
            assert point.per_hop_tau4 == point.stages * point.clock_tau4


class TestOptimalClock:
    def test_optimum_is_minimal(self):
        clocks = tuple(range(10, 41, 1))
        best = optimal_clock(FlowControl.WORMHOLE, 5, 32, clocks_tau4=clocks)
        points = sweep_clock(FlowControl.WORMHOLE, 5, 32, clocks_tau4=clocks)
        assert best.per_hop_tau4 == min(p.per_hop_tau4 for p in points)

    def test_vc_router_optimum_below_60_tau4(self):
        best = optimal_clock(FlowControl.VIRTUAL_CHANNEL, 5, 32, v=2)
        # The 4-stage pipe at clk=20 costs 80 tau4/hop; a slower clock
        # with fewer stages does better in absolute latency.
        assert best.per_hop_tau4 < 80.0

    def test_render(self):
        points = sweep_clock(FlowControl.WORMHOLE, 5, 32, clocks_tau4=(20, 30))
        assert "<- min" in render_clock_sweep(points)


class TestCreditLoop:
    """The loop lengths the simulator realises (DESIGN.md section 4)."""

    def test_depth3_loop_is_5(self):
        assert credit_loop_cycles(3) == 5

    def test_depth4_loop_is_6(self):
        assert credit_loop_cycles(4) == 6

    def test_depth1_loop_is_3(self):
        assert credit_loop_cycles(1) == 3

    def test_fig18_slow_credits_loop_is_8(self):
        assert credit_loop_cycles(3, credit_propagation=4) == 8

    def test_min_buffers(self):
        # Figures 14/15: 8 buffers/VC cover the loops, 4 do not.
        assert min_buffers_for_full_throughput(3) == 5
        assert min_buffers_for_full_throughput(4) == 6

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            credit_loop_cycles(0)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_loop_monotone(self, depth, prop):
        assert credit_loop_cycles(depth + 1, prop) > credit_loop_cycles(depth, prop)
        assert credit_loop_cycles(depth, prop + 1) > credit_loop_cycles(depth, prop)
