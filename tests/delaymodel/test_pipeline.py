"""Tests for the EQ 1 pipeline designer and the canonical pipelines."""

import pytest
from hypothesis import given, strategies as st

from repro.delaymodel.modules import AtomicModule, RoutingRange
from repro.delaymodel.pipeline import (
    EQ1_TOLERANCE_TAU,
    FlowControl,
    check_combiner_fits_crossbar_stage,
    design_pipeline,
    pipeline_for,
    speculative_vc_pipeline,
    virtual_channel_pipeline,
    wormhole_pipeline,
)


def module(name, t, h=0.0, own_stage=False):
    return AtomicModule(name, t, h, force_own_stage=own_stage)


class TestDesignPipelineMechanics:
    def test_single_small_module(self):
        design = design_pipeline([module("a", 50.0)], clock_tau4=20.0)
        assert design.depth == 1

    def test_modules_pack_when_they_fit(self):
        design = design_pipeline(
            [module("a", 40.0), module("b", 40.0, h=10.0)], clock_tau4=20.0
        )
        assert design.depth == 1
        assert design.stages[0].module_names() == ["a", "b"]

    def test_overhead_of_last_module_counts(self):
        # 40 + 55 = 95 fits, but h_b = 10 pushes it to 105 > 100 -> 2 stages.
        design = design_pipeline(
            [module("a", 40.0), module("b", 55.0, h=10.0)], clock_tau4=20.0
        )
        assert design.depth == 2

    def test_overhead_of_earlier_module_does_not_count(self):
        # EQ 1 charges only h_b: a's overhead overlaps with b's latency.
        design = design_pipeline(
            [module("a", 40.0, h=50.0), module("b", 55.0)], clock_tau4=20.0
        )
        assert design.depth == 1

    def test_force_own_stage(self):
        design = design_pipeline(
            [module("a", 10.0), module("xb", 10.0, own_stage=True), module("c", 10.0)],
            clock_tau4=20.0,
        )
        assert design.depth == 3
        assert design.stages[1].module_names() == ["xb"]

    def test_oversized_module_straddles(self):
        design = design_pipeline([module("big", 250.0)], clock_tau4=20.0)
        assert design.depth == 3
        assert design.straddling_modules() == ["big"]

    def test_straddle_tail_shares_stage_with_next_module(self):
        # big spills 20 tau into stage 2, where small (60 + h 10) joins.
        design = design_pipeline(
            [module("big", 120.0, h=5.0), module("small", 60.0, h=10.0)],
            clock_tau4=20.0,
        )
        assert design.depth == 2
        assert design.stages[1].module_names() == ["big", "small"]

    def test_straddle_starts_at_fresh_boundary(self):
        design = design_pipeline(
            [module("a", 30.0), module("big", 150.0)], clock_tau4=20.0
        )
        # 'a' alone in stage 1; 'big' occupies stages 2-3.
        assert design.depth == 3
        assert design.stages[0].module_names() == ["a"]

    def test_tolerance_admits_borderline_fit(self):
        borderline = module("b", 100.5, h=0.0)
        design = design_pipeline([borderline], clock_tau4=20.0)
        assert design.depth == 1
        strict = design_pipeline([borderline], clock_tau4=20.0, tolerance_tau=0.0)
        assert strict.depth == 2

    def test_rejects_empty_module_list(self):
        with pytest.raises(ValueError):
            design_pipeline([], clock_tau4=20.0)

    def test_rejects_bad_clock(self):
        with pytest.raises(ValueError):
            design_pipeline([module("a", 1.0)], clock_tau4=0.0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError):
            design_pipeline([module("a", 1.0)], clock_tau4=20.0, tolerance_tau=-1.0)

    def test_stage_occupancies_bounded(self):
        design = design_pipeline(
            [module("a", 95.0, h=5.0), module("b", 170.0, h=9.0), module("c", 20.0)],
            clock_tau4=20.0,
        )
        for occupancy in design.stage_occupancies():
            assert occupancy <= 1.0 + EQ1_TOLERANCE_TAU / 100.0 + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=400.0),
                st.floats(min_value=0.0, max_value=20.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=5.0, max_value=40.0),
    )
    def test_eq1_invariants_hold_for_random_modules(self, specs, clock_tau4):
        modules = [module(f"m{i}", t, h) for i, (t, h) in enumerate(specs)]
        design = design_pipeline(modules, clock_tau4=clock_tau4)
        clk = clock_tau4 * 5.0
        budget = clk + EQ1_TOLERANCE_TAU
        # 1. No stage exceeds the budget.
        for stage in design.stages:
            assert stage.occupancy_tau <= budget + 1e-9
        # 2. Total latency placed equals total module latency.
        placed = sum(sl.latency_tau for s in design.stages for sl in s.slices)
        assert placed == pytest.approx(sum(t for t, _ in specs))
        # 3. Module order is preserved across stages.
        order = [sl.module.name for s in design.stages for sl in s.slices]
        deduped = [order[0]]
        for name in order[1:]:
            if name != deduped[-1]:
                deduped.append(name)
        assert deduped == [m.name for m in modules]
        # 4. Depth is at least the trivial lower bound.
        total = sum(t for t, _ in specs)
        assert design.depth >= max(1, int(total // (budget + 1e-9)))


class TestCanonicalPipelines:
    """Figure 11's headline stage counts at the 20-tau4 clock."""

    def test_wormhole_is_three_stages(self):
        assert wormhole_pipeline(5, 32).depth == 3
        assert wormhole_pipeline(7, 32).depth == 3

    @pytest.mark.parametrize("p", [5, 7])
    @pytest.mark.parametrize("v", [2, 4, 8])
    def test_nonspec_vc_four_stages_up_to_8vcs(self, p, v):
        assert virtual_channel_pipeline(p, v, 32).depth == 4

    @pytest.mark.parametrize("p", [5, 7])
    def test_nonspec_vc_five_stages_at_16vcs(self, p):
        assert virtual_channel_pipeline(p, 16, 32).depth == 5

    @pytest.mark.parametrize("p", [5, 7])
    @pytest.mark.parametrize("v", [2, 4, 8, 16])
    def test_spec_vc_three_stages_up_to_16vcs(self, p, v):
        assert speculative_vc_pipeline(p, v, 32).depth == 3

    @pytest.mark.parametrize("p", [5, 7])
    def test_spec_vc_four_stages_at_32vcs(self, p):
        assert speculative_vc_pipeline(p, 32, 32).depth == 4

    def test_spec_matches_wormhole_latency(self):
        # The paper's core claim: same per-hop latency as wormhole.
        assert (
            speculative_vc_pipeline(5, 2, 32).depth == wormhole_pipeline(5, 32).depth
        )

    def test_nonspec_vc_one_stage_deeper_than_wormhole(self):
        assert (
            virtual_channel_pipeline(5, 2, 32).depth
            == wormhole_pipeline(5, 32).depth + 1
        )

    def test_first_stage_is_routing(self):
        for design in (
            wormhole_pipeline(5, 32),
            virtual_channel_pipeline(5, 2, 32),
            speculative_vc_pipeline(5, 2, 32),
        ):
            assert design.stages[0].module_names() == ["route+decode"]

    def test_last_stage_is_crossbar(self):
        for design in (
            wormhole_pipeline(5, 32),
            virtual_channel_pipeline(5, 2, 32),
            speculative_vc_pipeline(5, 2, 32),
        ):
            assert design.stages[-1].module_names() == ["crossbar"]

    def test_slow_clock_shrinks_pipeline(self):
        # With a very long cycle everything but the crossbar packs together.
        design = virtual_channel_pipeline(5, 2, 32, clock_tau4=100.0)
        assert design.depth < virtual_channel_pipeline(5, 2, 32).depth

    def test_routing_range_affects_vc_pipeline(self):
        rv = virtual_channel_pipeline(5, 16, 32, RoutingRange.RV)
        rpv = virtual_channel_pipeline(5, 16, 32, RoutingRange.RPV)
        assert rv.depth <= rpv.depth

    def test_pipeline_for_dispatch(self):
        assert pipeline_for(FlowControl.WORMHOLE, 5, 32).depth == 3
        assert pipeline_for(FlowControl.VIRTUAL_CHANNEL, 5, 32, v=2).depth == 4
        assert (
            pipeline_for(FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, 5, 32, v=2).depth
            == 3
        )

    def test_describe_output(self):
        text = wormhole_pipeline(5, 32).describe()
        assert "3 stages" in text
        assert "crossbar" in text

    def test_combiner_slack_positive_for_paper_configs(self):
        for p in (5, 7):
            for v in (2, 4, 8, 16, 32):
                assert check_combiner_fits_crossbar_stage(p, v, 32) > 0.0

    def test_combiner_slack_violation_raises(self):
        with pytest.raises(ValueError):
            check_combiner_fits_crossbar_stage(5, 2, 32, clock_tau4=8.0)

    def test_per_hop_latency_tau(self):
        design = wormhole_pipeline(5, 32)
        assert design.latency_tau == pytest.approx(3 * 100.0)
