"""Tests for the Table 1 atomic-module delay equations."""

import pytest
from hypothesis import given, strategies as st

from repro.delaymodel.modules import (
    ALLOCATOR_OVERHEAD_TAU,
    AtomicModule,
    RoutingRange,
    combiner_delay,
    crossbar_delay,
    crossbar_module,
    routing_module,
    spec_switch_allocator_delay,
    speculative_allocation_delay,
    speculative_allocation_module,
    switch_allocator_delay,
    switch_allocator_module,
    switch_arbiter_delay,
    switch_arbiter_module,
    vc_allocator_delay,
    vc_allocator_module,
)
from repro.delaymodel.arbiter import (
    matrix_arbiter_path,
    matrix_arbiter_update_path,
    switch_arbiter_latency,
    switch_arbiter_overhead,
)
from repro.delaymodel.tau import tau_to_tau4

# The paper's Table 1 reference configuration.
P, W, V = 5, 32, 2

ports = st.integers(min_value=2, max_value=32)
vcs = st.integers(min_value=1, max_value=64)
widths = st.integers(min_value=1, max_value=256)


class TestTable1ReferenceValues:
    """Each Table 1 'Model' column entry at p=5, w=32, v=2 (in tau4)."""

    def test_switch_arbiter_9_6(self):
        total = switch_arbiter_delay(P) + switch_arbiter_overhead(P)
        assert tau_to_tau4(total) == pytest.approx(9.6, abs=0.05)

    def test_crossbar_near_8_4(self):
        # Known deviation: literal evaluation of the printed equation
        # gives 7.8 tau4 vs the paper's 8.4 (documented in DESIGN.md).
        assert tau_to_tau4(crossbar_delay(P, W)) == pytest.approx(8.4, abs=0.7)

    def test_vc_allocator_rv_11_8(self):
        total = vc_allocator_delay(P, V, RoutingRange.RV) + ALLOCATOR_OVERHEAD_TAU
        assert tau_to_tau4(total) == pytest.approx(11.8, abs=0.05)

    def test_vc_allocator_rp_13_1(self):
        total = vc_allocator_delay(P, V, RoutingRange.RP) + ALLOCATOR_OVERHEAD_TAU
        assert tau_to_tau4(total) == pytest.approx(13.1, abs=0.05)

    def test_vc_allocator_rpv_16_9(self):
        total = vc_allocator_delay(P, V, RoutingRange.RPV) + ALLOCATOR_OVERHEAD_TAU
        assert tau_to_tau4(total) == pytest.approx(16.9, abs=0.05)

    def test_switch_allocator_10_9(self):
        total = switch_allocator_delay(P, V) + ALLOCATOR_OVERHEAD_TAU
        assert tau_to_tau4(total) == pytest.approx(10.9, abs=0.05)

    def test_speculative_combined_rv_14_6(self):
        total = speculative_allocation_delay(P, V, RoutingRange.RV)
        assert tau_to_tau4(total) == pytest.approx(14.6, abs=0.1)

    def test_speculative_combined_rp_14_6(self):
        total = speculative_allocation_delay(P, V, RoutingRange.RP)
        assert tau_to_tau4(total) == pytest.approx(14.6, abs=0.1)

    def test_speculative_combined_rpv_18_3(self):
        total = speculative_allocation_delay(P, V, RoutingRange.RPV)
        assert tau_to_tau4(total) == pytest.approx(18.3, abs=0.1)


class TestEquationStructure:
    @given(ports)
    def test_switch_arbiter_grows_with_ports(self, p):
        assert switch_arbiter_delay(2 * p) > switch_arbiter_delay(p)

    def test_switch_arbiter_overhead_constant(self):
        # EQ 6: priority update is local, so h_SB is 9 tau for any p.
        assert all(switch_arbiter_overhead(p) == 9.0 for p in (2, 5, 7, 16, 32))

    @given(ports, widths)
    def test_crossbar_grows_with_width(self, p, w):
        assert crossbar_delay(p, 2 * w) > crossbar_delay(p, w)

    @given(ports, widths)
    def test_crossbar_grows_with_ports(self, p, w):
        assert crossbar_delay(2 * p, w) > crossbar_delay(p, w)

    @given(ports, st.integers(min_value=2, max_value=64))
    def test_vc_allocator_ranges_ordered(self, p, v):
        """Rv <= Rp <= Rpv: more general routing -> bigger allocator.

        Holds for v >= 2; at the degenerate v=1 the published Rp fit dips
        marginally below Rv (the v:1 first stage vanishes).
        """
        rv = vc_allocator_delay(p, v, RoutingRange.RV)
        rp = vc_allocator_delay(p, v, RoutingRange.RP)
        rpv = vc_allocator_delay(p, v, RoutingRange.RPV)
        assert rv <= rp + 1e-9
        assert rp <= rpv + 1e-9

    @given(ports, vcs)
    def test_vc_allocator_grows_with_vcs(self, p, v):
        for rng in RoutingRange:
            assert vc_allocator_delay(p, 2 * v, rng) > vc_allocator_delay(p, v, rng)

    @given(ports, vcs)
    def test_switch_allocator_grows(self, p, v):
        assert switch_allocator_delay(2 * p, v) > switch_allocator_delay(p, v)
        assert switch_allocator_delay(p, 2 * v) > switch_allocator_delay(p, v)

    @given(ports, vcs)
    def test_spec_allocator_slower_than_nonspec(self, p, v):
        # The speculative allocator adds the priority muxing between the
        # two separable allocators, so t_SS > t_SL for all configurations.
        assert spec_switch_allocator_delay(p, v) > switch_allocator_delay(p, v)

    @given(ports, vcs)
    def test_combined_at_least_each_component(self, p, v):
        for rng in RoutingRange:
            combined = speculative_allocation_delay(p, v, rng)
            assert combined >= vc_allocator_delay(p, v, rng)
            assert combined >= spec_switch_allocator_delay(p, v)
            without_cb = speculative_allocation_delay(p, v, rng, include_combiner=False)
            assert combined == pytest.approx(without_cb + combiner_delay(p, v))

    @given(ports, vcs)
    def test_speculative_stage_saves_over_serial(self, p, v):
        """Core motivation: parallel VC+SS beats serial VC then SL."""
        for rng in RoutingRange:
            serial = (
                vc_allocator_delay(p, v, rng)
                + ALLOCATOR_OVERHEAD_TAU
                + switch_allocator_delay(p, v)
            )
            parallel = speculative_allocation_delay(p, v, rng)
            assert parallel < serial

    @pytest.mark.parametrize("bad_p", [0, 1, -3])
    def test_invalid_ports_rejected(self, bad_p):
        with pytest.raises(ValueError):
            switch_arbiter_delay(bad_p)
        with pytest.raises(ValueError):
            crossbar_delay(bad_p, 32)

    def test_invalid_vcs_rejected(self):
        with pytest.raises(ValueError):
            vc_allocator_delay(5, 0, RoutingRange.RV)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            crossbar_delay(5, 0)


class TestAtomicModuleFactories:
    def test_routing_module_occupies_full_cycle(self):
        module = routing_module(20.0)
        assert module.latency_tau == 100.0
        assert module.overhead_tau == 0.0

    def test_crossbar_forces_own_stage(self):
        assert crossbar_module(P, W).force_own_stage
        assert not switch_arbiter_module(P).force_own_stage

    def test_allocator_modules_carry_overhead(self):
        assert vc_allocator_module(P, V, RoutingRange.RV).overhead_tau == 9.0
        assert switch_allocator_module(P, V).overhead_tau == 9.0

    def test_speculative_module_absorbs_overheads(self):
        module = speculative_allocation_module(P, V, RoutingRange.RV)
        assert module.overhead_tau == 0.0
        expected = max(
            vc_allocator_delay(P, V, RoutingRange.RV) + ALLOCATOR_OVERHEAD_TAU,
            spec_switch_allocator_delay(P, V),
        )
        assert module.latency_tau == pytest.approx(expected)

    def test_total_tau(self):
        module = AtomicModule("m", 10.0, 2.0)
        assert module.total_tau == 12.0

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            AtomicModule("m", -1.0, 0.0)
        with pytest.raises(ValueError):
            AtomicModule("m", 1.0, -0.5)


class TestConstructiveArbiterDerivation:
    """The gate-level Figure 10 reconstruction tracks the EQ 5 closed form."""

    @pytest.mark.parametrize("n", [2, 3, 5, 7, 16, 32])
    def test_constructive_path_close_to_closed_form(self, n):
        constructed = matrix_arbiter_path(n).delay
        closed = switch_arbiter_latency(n)
        assert constructed == pytest.approx(closed, abs=6.0)  # within ~1.2 tau4

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_constructive_path_monotone(self, n):
        assert matrix_arbiter_path(2 * n).delay > matrix_arbiter_path(n).delay

    def test_update_path_matches_eq6(self):
        assert matrix_arbiter_update_path().delay == pytest.approx(9.0)

    def test_rejects_single_input(self):
        with pytest.raises(ValueError):
            matrix_arbiter_path(1)

    def test_closed_form_eq5_decomposition(self):
        from repro.delaymodel.arbiter import (
            switch_arbiter_effort_delay,
            switch_arbiter_parasitic_delay,
        )
        for p in (2, 5, 7, 32):
            assert switch_arbiter_effort_delay(p) + switch_arbiter_parasitic_delay(
                p
            ) == pytest.approx(switch_arbiter_latency(p))
