"""Cross-layer consistency tests: delay model <-> simulator <-> analysis.

The repository's three layers describe the same machine from different
angles; these tests assert they stay mutually consistent as the code
evolves.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FlowControl, RouterDesign
from repro.delaymodel.optimizer import credit_loop_cycles
from repro.delaymodel.pipeline import pipeline_for
from repro.experiments.analysis import ROUTER_DEPTHS
from repro.sim.config import RouterKind


class TestDepthConsistency:
    """The analysis table's depths equal the model's prescribed pipelines
    at the paper's reference configuration."""

    def test_wormhole(self):
        design = pipeline_for(FlowControl.WORMHOLE, 5, 32)
        assert design.depth == ROUTER_DEPTHS["wormhole"]

    def test_virtual_channel(self):
        design = pipeline_for(FlowControl.VIRTUAL_CHANNEL, 5, 32, v=2)
        assert design.depth == ROUTER_DEPTHS["virtual_channel"]

    def test_speculative(self):
        design = pipeline_for(
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL, 5, 32, v=2
        )
        assert design.depth == ROUTER_DEPTHS["speculative_vc"]

    def test_vct_shares_wormhole_depth(self):
        assert ROUTER_DEPTHS["virtual_cut_through"] == ROUTER_DEPTHS["wormhole"]


class TestRouterDesignGuards:
    """RouterDesign refuses model/simulator depth mismatches for every
    configuration, not just the reference one."""

    @settings(max_examples=30, deadline=None)
    @given(
        flow=st.sampled_from(list(FlowControl)),
        v=st.sampled_from([2, 4, 8, 16, 32]),
    )
    def test_sim_config_realises_model_depth(self, flow, v):
        design = RouterDesign(flow, num_vcs=v)
        base = {
            FlowControl.WORMHOLE: 3,
            FlowControl.VIRTUAL_CHANNEL: 4,
            FlowControl.SPECULATIVE_VIRTUAL_CHANNEL: 3,
        }[flow]
        config = design.sim_config()
        assert config.num_vcs == design.num_vcs
        # base depth + mapped extra allocation stages = model depth.
        assert base + config.va_extra_cycles == design.per_hop_cycles


class TestCreditLoopConsistency:
    """The optimizer's loop formula matches each simulated router's
    measured streaming behaviour (pinned in tests/sim/test_trace.py)."""

    @pytest.mark.parametrize(
        "name,depth", sorted(ROUTER_DEPTHS.items()),
    )
    def test_loop_formula_defined_for_every_kind(self, name, depth):
        loop = credit_loop_cycles(depth)
        assert loop == depth + 2  # depth-1 + flit prop + write + credit prop

    def test_every_router_kind_has_a_depth(self):
        assert {k.value for k in RouterKind} == set(ROUTER_DEPTHS)
