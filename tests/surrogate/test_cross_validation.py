"""Cross-validation battery: the surrogate against real simulations.

Gathers the calibration corpus -- every router kind on the mesh, the
VC kinds on the torus too -- over load grids that cross saturation,
fits the surrogate, and holds it to the subsystem's contract:

* relative latency error <= 15% on every pre-saturation point, and
* predicted saturation within one load-grid step of the measured
  knee ``find_saturation`` reads off the simulated curve.

Everything runs at a reduced 4x4 measurement scale (a few seconds of
simulation for the whole battery); the corpus points double as the
calibration's training set, which is exactly how the serving path uses
them (the fit is never evaluated on loads it cannot see at query
time -- queries interpolate the same pre-saturation regime).
"""

from dataclasses import replace

import pytest

from repro.experiments.sweep import find_saturation
from repro.runtime.experiment import Experiment
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.metrics import SweepResult
from repro.surrogate import (
    calibrate,
    class_key,
    corpus_configs,
    cross_validate,
    default_saturation,
    estimate,
    observations_from_results,
    predicted_saturation,
)

pytestmark = pytest.mark.sim

#: The error bound the subsystem promises pre-saturation.
ERROR_BOUND = 0.15

#: Reduced measurement scale: enough fidelity for the bound with a
#: few-second battery.
MEASUREMENT = MeasurementConfig(
    warmup_cycles=300, sample_packets=200,
    max_cycles=12_000, drain_cycles=4_000,
)

#: Load grid as fractions of each class's default saturation guess:
#: the corpus fractions below the knee, extended past it so the
#: measured curve shows its saturation turn.
FRACTIONS = (0.1, 0.3, 0.5, 0.65, 0.8, 0.9, 1.0, 1.15, 1.3)


def _grid(config):
    saturation = default_saturation(config)
    return [round(saturation * f, 4) for f in FRACTIONS]


@pytest.fixture(scope="module")
def corpus():
    """(calibration, pairs grouped per class) over the full corpus."""
    experiment = Experiment(MEASUREMENT)
    by_class = {}
    pairs = []
    for config in corpus_configs():
        points = [
            replace(config, injection_fraction=load)
            for load in _grid(config)
        ]
        results = experiment.map(points)
        class_pairs = list(zip(points, results))
        by_class[class_key(config)] = class_pairs
        pairs.extend(class_pairs)
    calibration = calibrate(observations_from_results(pairs))
    return calibration, by_class


class TestCoverage:
    def test_every_router_kind_is_in_the_corpus(self):
        kinds = {config.router_kind for config in corpus_configs()}
        assert kinds == set(RouterKind)

    def test_mesh_and_torus_are_both_covered(self):
        topologies = {config.topology for config in corpus_configs()}
        assert topologies == {"mesh", "torus"}

    def test_every_class_calibrated(self, corpus):
        calibration, by_class = corpus
        assert set(calibration.records) == set(by_class)


class TestLatencyError:
    def test_relative_error_within_bound_pre_saturation(self, corpus):
        calibration, by_class = corpus
        report = cross_validate(
            calibration,
            observations_from_results(
                pair for pairs in by_class.values() for pair in pairs
            ),
        )
        assert report["points"] >= 40
        failures = {
            key: stats for key, stats in report["classes"].items()
            if stats["max_rel_error"] > ERROR_BOUND
        }
        assert not failures, failures
        assert report["max_rel_error"] <= ERROR_BOUND

    def test_error_estimate_reflects_residuals(self, corpus):
        calibration, by_class = corpus
        for pairs in by_class.values():
            config = pairs[0][0]
            residual = calibration.error_estimate(config)
            assert residual is not None
            assert 0.0 <= residual <= ERROR_BOUND


class TestSaturationAgreement:
    def test_predicted_knee_within_one_grid_step(self, corpus):
        calibration, by_class = corpus
        for key, pairs in by_class.items():
            config = pairs[0][0]
            grid = sorted(c.injection_fraction for c, _ in pairs)
            curve = SweepResult(
                label=key,
                points=[result for _, result in pairs],
            )
            measured = find_saturation(curve)
            assert measured in grid, (key, measured)
            index = grid.index(measured)
            # One load-grid step around the measured knee: the larger
            # of the adjacent spacings (the grid is knee-scaled, not
            # uniform).
            below = measured - grid[index - 1] if index > 0 else measured
            above = (
                grid[index + 1] - measured
                if index < len(grid) - 1 else below
            )
            step = max(below, above)
            predicted = predicted_saturation(
                config, calibration.for_config(config)
            )
            assert abs(predicted - measured) <= step, (
                key, measured, predicted, step
            )

    def test_curves_actually_cross_saturation(self, corpus):
        # The agreement test is vacuous unless the measured curves
        # turn; every class's top grid loads must exceed its knee.
        _, by_class = corpus
        for key, pairs in by_class.items():
            curve = SweepResult(
                label=key, points=[result for _, result in pairs]
            )
            measured = find_saturation(curve)
            top = max(c.injection_fraction for c, _ in pairs)
            assert measured < top, key


class TestSurrogateIsCheap:
    def test_estimate_never_invokes_the_cycle_kernel(self, corpus):
        # Pure-function check at the serving boundary: estimating over
        # the whole corpus touches no Experiment, no engine, no cache.
        calibration, by_class = corpus
        for pairs in by_class.values():
            config = pairs[0][0]
            coefficients = calibration.for_config(config)
            first = estimate(config, 0.2, coefficients)
            second = estimate(config, 0.2, coefficients)
            assert first == second
