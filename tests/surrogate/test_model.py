"""The analytical estimator: shape, purity, and paper anchors."""

import dataclasses
import math

import pytest

from repro.sim.config import RouterKind, SimConfig
from repro.surrogate import (
    DEFAULT_COEFFICIENTS,
    SurrogateCoefficients,
    class_key,
    default_saturation,
    estimate,
    estimate_curve,
    predicted_saturation,
    service_time,
)


def _config(kind=RouterKind.SPECULATIVE_VC, **overrides):
    overrides.setdefault("num_vcs", 2 if kind.uses_vcs else 1)
    overrides.setdefault("injection_fraction", 0.1)
    overrides.setdefault("seed", 1)
    return SimConfig(router_kind=kind, mesh_radix=4, **overrides)


ALL_KINDS = list(RouterKind)


class TestServiceTime:
    def test_pipeline_depths_match_simulated_routers(self):
        # The per-hop depths EQ 1 prescribes and the simulator
        # implements: 3 for wormhole-datapath routers, 4 for the
        # non-speculative VC router, 1 for the unit-latency baselines.
        depths = {
            kind: service_time(_config(kind)).per_hop_cycles
            for kind in ALL_KINDS
        }
        assert depths[RouterKind.WORMHOLE] == 3
        assert depths[RouterKind.VIRTUAL_CUT_THROUGH] == 3
        assert depths[RouterKind.VIRTUAL_CHANNEL] == 4
        assert depths[RouterKind.SPECULATIVE_VC] == 3
        assert depths[RouterKind.SINGLE_CYCLE_WORMHOLE] == 1
        assert depths[RouterKind.SINGLE_CYCLE_VC] == 1

    def test_va_extra_cycles_deepen_the_hop(self):
        base = service_time(_config())
        deeper = service_time(_config(va_extra_cycles=2))
        assert deeper.per_hop_cycles == base.per_hop_cycles + 2

    def test_credit_loop_matches_config_documentation(self):
        # SimConfig's docstring derives the credit loop per router
        # type: wormhole 5, non-speculative VC 6, single-cycle 3.
        assert service_time(
            _config(RouterKind.WORMHOLE)
        ).credit_loop_cycles == 5
        assert service_time(
            _config(RouterKind.VIRTUAL_CHANNEL)
        ).credit_loop_cycles == 6
        assert service_time(
            _config(RouterKind.SINGLE_CYCLE_WORMHOLE)
        ).credit_loop_cycles == 3

    def test_footnote_15_shallow_buffer_stall(self):
        # The paper's footnote 15: a speculative router with 4-flit
        # buffers cannot cover its 5-cycle credit loop, costing one
        # extra cycle per 5-flit packet; 8-flit buffers cover it.
        deep = service_time(_config(buffers_per_vc=8))
        shallow = service_time(_config(buffers_per_vc=4))
        assert deep.credit_stall_cycles == 0.0
        assert shallow.credit_stall_cycles == pytest.approx(1.0)


class TestEstimateProperties:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_monotone_in_load(self, kind):
        # More offered load never predicts less latency.
        config = _config(kind)
        saturation = default_saturation(config)
        loads = [saturation * f for f in (0.0, 0.2, 0.4, 0.6, 0.8, 0.95)]
        curve = estimate_curve(config, loads)
        latencies = [point.latency_cycles for point in curve]
        assert latencies == sorted(latencies)
        assert all(
            b > a for a, b in zip(latencies, latencies[1:])
        ), latencies

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_pure_function_of_config_and_load(self, kind):
        config = _config(kind)
        before = dataclasses.replace(config)
        first = estimate(config, 0.3)
        second = estimate(config, 0.3)
        assert first == second
        assert config == before  # the config is never mutated

    def test_load_defaults_to_config_injection_fraction(self):
        config = _config(injection_fraction=0.25)
        assert estimate(config) == estimate(config, 0.25)

    def test_breakdown_sums_to_total(self):
        point = estimate(_config(), 0.3)
        assert point.breakdown.total_cycles == pytest.approx(
            point.latency_cycles
        )

    def test_zero_load_has_no_contention(self):
        point = estimate(_config(), 0.0)
        assert point.breakdown.contention_cycles == 0.0
        assert point.latency_cycles == point.zero_load_cycles

    def test_saturated_beyond_saturation_load(self):
        config = _config()
        saturation = default_saturation(config)
        point = estimate(config, saturation * 1.1)
        assert point.saturated
        assert math.isinf(point.latency_cycles)
        # Throughput caps at the saturation load.
        assert point.throughput_fraction == pytest.approx(saturation)

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            estimate(_config(), -0.1)

    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            SurrogateCoefficients(contention_scale=-1.0)
        with pytest.raises(ValueError):
            SurrogateCoefficients(saturation_load=0.0)

    def test_to_dict_is_json_shaped(self):
        payload = estimate(_config(), 0.95).to_dict()
        assert payload["latency_cycles"] is None  # inf -> None
        assert payload["saturated"] is True
        assert set(payload["breakdown"]) == {
            "router_cycles", "link_cycles", "serialization_cycles",
            "credit_cycles", "contention_cycles", "offset_cycles",
        }


class TestPredictedSaturation:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_knee_is_where_latency_triples(self, kind):
        # predicted_saturation solves L(x) = 3 * L(0) in closed form;
        # evaluating the estimate there must reproduce the crossing.
        config = _config(kind)
        knee = predicted_saturation(config)
        zero = estimate(config, 0.0).latency_cycles
        at_knee = estimate(config, knee).latency_cycles
        assert at_knee == pytest.approx(3.0 * zero, rel=1e-9)

    def test_knee_below_hard_saturation(self):
        config = _config()
        assert predicted_saturation(config) < default_saturation(config)

    def test_zero_contention_degenerates_to_saturation_bound(self):
        config = _config()
        flat = SurrogateCoefficients(contention_scale=0.0)
        assert predicted_saturation(config, flat) == pytest.approx(
            default_saturation(config)
        )

    def test_latency_multiple_must_exceed_one(self):
        with pytest.raises(ValueError):
            predicted_saturation(_config(), latency_multiple=1.0)


class TestClassKey:
    def test_load_and_seed_are_not_part_of_the_class(self):
        a = _config(injection_fraction=0.1, seed=1)
        b = _config(injection_fraction=0.7, seed=99)
        assert class_key(a) == class_key(b)

    def test_structural_knobs_are(self):
        base = _config()
        assert class_key(base) != class_key(_config(buffers_per_vc=4))
        assert class_key(base) != class_key(
            _config(RouterKind.VIRTUAL_CHANNEL)
        )

    def test_torus_halves_default_saturation(self):
        mesh = _config(RouterKind.VIRTUAL_CHANNEL)
        torus = _config(RouterKind.VIRTUAL_CHANNEL, topology="torus")
        assert default_saturation(torus) == pytest.approx(
            default_saturation(mesh) / 2
        )

    def test_default_coefficients_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COEFFICIENTS.contention_scale = 2.0
