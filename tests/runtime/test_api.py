"""The redesigned surface: map + wrappers, deprecated shims, stats export."""

import warnings

import pytest

from repro.runtime import Experiment, ExperimentStats, Plan
from repro.runtime.scheduler import SchedulerStats
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)


def config(load=0.1, seed=3, **overrides):
    defaults = dict(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=seed,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestMap:
    def test_returns_results_in_input_order(self):
        configs = [config(0.2), config(0.05), config(0.2)]
        results = Experiment(FAST).map(configs)
        assert len(results) == 3
        assert results[0] == results[2]  # identical configs share a run
        assert results[0] != results[1]

    def test_per_call_plan_overrides_default(self):
        exp = Experiment(FAST, plan=Plan(chunk_size=4))
        exp.map([config(load) for load in (0.05, 0.1, 0.15)],
                plan=Plan(chunk_size=1))
        assert exp.stats.scheduler.chunks_completed == 3

    def test_default_plan_applies(self):
        exp = Experiment(FAST, plan=Plan(chunk_size=3))
        exp.map([config(load) for load in (0.05, 0.1, 0.15)])
        assert exp.stats.scheduler.chunks_completed == 1


class TestKeywordOnlyWrappers:
    def test_sweep_label_is_keyword_only(self):
        with pytest.raises(TypeError):
            Experiment(FAST).sweep(config(), "wh")

    def test_grid_axes_are_keyword_only(self):
        with pytest.raises(TypeError):
            Experiment(FAST).grid(config(), (0.05,))

    def test_aggregate_load_is_keyword_only(self):
        with pytest.raises(TypeError):
            Experiment(FAST).aggregate(config(), 0.1)

    def test_aggregate_needs_seeds(self):
        with pytest.raises(ValueError, match="seed"):
            Experiment(FAST).aggregate(config(), load=0.1, seeds=())


class TestDeprecatedShims:
    def test_run_one_forwards_to_point(self):
        with pytest.warns(DeprecationWarning, match="run_one"):
            old = Experiment(FAST).run_one(config())
        assert old == Experiment(FAST).point(config())

    def test_run_many_forwards_to_map(self):
        configs = [config(0.05), config(0.1)]
        with pytest.warns(DeprecationWarning, match="run_many"):
            old = Experiment(FAST).run_many(configs)
        assert old == Experiment(FAST).map(configs)

    def test_run_sweep_forwards_to_sweep(self):
        with pytest.warns(DeprecationWarning, match="run_sweep"):
            old = Experiment(FAST).run_sweep(config(), "wh", loads=(0.05,))
        new = Experiment(FAST).sweep(config(), label="wh", loads=(0.05,))
        assert old.points == new.points

    def test_run_grid_forwards_to_grid(self):
        with pytest.warns(DeprecationWarning, match="run_grid"):
            old = Experiment(FAST).run_grid(config(), loads=(0.05, 0.1))
        new = Experiment(FAST).grid(config(), loads=(0.05, 0.1))
        assert old.results == new.results

    def test_run_with_seeds_forwards_to_aggregate(self):
        with pytest.warns(DeprecationWarning, match="run_with_seeds"):
            old = Experiment(FAST).run_with_seeds(
                config(), 0.1, seeds=(1, 2)
            )
        new = Experiment(FAST).aggregate(config(), load=0.1, seeds=(1, 2))
        assert old.runs == new.runs

    def test_warning_names_the_migration_table(self):
        with pytest.warns(DeprecationWarning, match="docs/RUNTIME.md"):
            Experiment(FAST).run_one(config())

    def test_new_surface_is_warning_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            exp = Experiment(FAST)
            exp.point(config())
            exp.sweep(config(), label="wh", loads=(0.05,))
            exp.grid(config(), loads=(0.05,))


class TestStatsExport:
    def test_to_registry_exports_counters_and_gauges(self):
        stats = ExperimentStats(
            points_requested=6, points_executed=4, cache_hits=2,
            deduplicated=0,
        )
        stats.scheduler = SchedulerStats(
            chunks_total=2, chunks_completed=2, jobs_completed=4,
            steals=1, splits=1, chunk_seconds_total=3.0,
            chunk_seconds_max=2.0, dispatch_seconds=4.0,
        )
        stats.scheduler.worker_busy_seconds = {0: 4.0, 1: 2.0}
        stats.scheduler.record_stream_lag(0.002)

        registry = stats.to_registry()
        assert registry.value("experiment_points_requested") == 6
        assert registry.value("experiment_points_executed") == 4
        assert registry.value("experiment_cache_hits") == 2
        assert registry.value("scheduler_chunks_completed") == 2
        assert registry.value("scheduler_steals") == 1
        assert registry.value("scheduler_splits") == 1
        assert registry.value("scheduler_worker_utilization", worker=0) == 1.0
        assert registry.value("scheduler_worker_utilization", worker=1) == 0.5
        histogram = registry.get("scheduler_chunk_seconds")
        assert histogram.observations == 2
        assert histogram.total == pytest.approx(3.0)
        lag = registry.get("cache_stream_lag_seconds")
        assert lag.maximum == pytest.approx(0.002)

    def test_real_batch_populates_scheduler_stats(self, tmp_path):
        exp = Experiment(FAST, cache=tmp_path)
        exp.map([config(load) for load in (0.05, 0.1, 0.15)])
        scheduler = exp.stats.scheduler
        assert scheduler.jobs_completed == 3
        assert scheduler.chunks_completed >= 1
        assert scheduler.dispatch_seconds > 0
        # Every streamed point recorded its cache-write lag.
        assert scheduler.stream_lag_count == 3
        assert exp.stats.mean_worker_utilization > 0
        assert len(exp.stats.to_registry()) > 0

    def test_steals_property_mirrors_scheduler(self):
        stats = ExperimentStats()
        stats.scheduler.steals = 7
        assert stats.steals == 7
