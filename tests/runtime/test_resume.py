"""Resumable sweeps: streaming cache writes, manifests, mid-flight kills.

The contract under test: :meth:`Experiment.map` streams every completed
point into the cache *as it lands*, so a batch killed mid-flight keeps
everything already finished, and re-running the same batch executes
only the points still missing -- with the merged result bit-identical
to an uninterrupted run.
"""

import json
from dataclasses import replace

import pytest

from repro.runtime import (
    Experiment,
    Plan,
    ProcessBackend,
    ResultCache,
    SweepManifest,
    config_key,
    sweep_key,
)
from repro.runtime import backends
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)

LOADS = (0.05, 0.1, 0.15, 0.2, 0.25, 0.3)

#: The injection fraction whose chunk the patched process worker kills.
FAIL_LOAD = 0.25


def config(load=0.1, seed=3):
    return SimConfig(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=seed,
    )


def grid_keys(loads=LOADS):
    return [
        config_key(replace(config(), injection_fraction=load), FAST)
        for load in sorted(loads)
    ]


def _tripwire_chunk(payloads):
    """A worker that dies when its chunk contains the poisoned load.

    Module-level and data-driven so it survives the pickle round-trip
    into pool workers (the failure condition rides the payloads, not
    parent-process state the child cannot see).
    """
    for cfg, *_ in payloads:
        if abs(cfg.injection_fraction - FAIL_LOAD) < 1e-9:
            raise RuntimeError("injected chunk failure")
    return [backends.run_payload(payload) for payload in payloads]


class TestSweepManifest:
    def test_ledger_round_trip(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        manifest = SweepManifest(path, sweep="abc", points=3).start()
        manifest.record("k1")
        manifest.record("k2")
        reread = SweepManifest(path, sweep="abc", points=3)
        assert reread.done == {"k1", "k2"}
        assert not reread.is_complete
        assert reread.remaining(["k1", "k2", "k3"]) == ["k3"]

    def test_complete_marker_survives_reload(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        manifest = SweepManifest(path, sweep="abc", points=1).start()
        manifest.record("k1")
        manifest.complete()
        assert SweepManifest(path, sweep="abc", points=1).is_complete

    def test_duplicate_records_append_once(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        manifest = SweepManifest(path, sweep="abc", points=2).start()
        manifest.record("k1")
        manifest.record("k1")
        lines = path.read_text().splitlines()
        assert len(lines) == 2  # header + one done record

    def test_torn_trailing_write_tolerated(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        manifest = SweepManifest(path, sweep="abc", points=2).start()
        manifest.record("k1")
        with open(path, "a") as handle:
            handle.write('{"done": "k2"')  # killed mid-append
        reread = SweepManifest(path, sweep="abc", points=2)
        assert reread.done == {"k1"}

    def test_sweep_key_is_order_independent(self):
        keys = ["b", "a", "c"]
        assert sweep_key(keys) == sweep_key(sorted(keys))
        assert sweep_key(keys) == sweep_key(["a", "a", "b", "c"])
        assert sweep_key(keys) != sweep_key(["a", "b"])

    def test_experiment_writes_manifest(self, tmp_path):
        exp = Experiment(FAST, cache=tmp_path)
        exp.map([config(0.05), config(0.1)], plan=Plan(label="smoke"))
        manifests = list((tmp_path / "manifests").glob("*.jsonl"))
        assert len(manifests) == 1
        header = json.loads(manifests[0].read_text().splitlines()[0])
        assert header["label"] == "smoke"
        assert header["points"] == 2
        keys = [config_key(config(l), FAST) for l in (0.05, 0.1)]
        assert ResultCache(tmp_path).manifest(keys).is_complete

    def test_manifest_opt_out(self, tmp_path):
        exp = Experiment(FAST, cache=tmp_path)
        exp.map([config(0.05)], plan=Plan(manifest=False))
        assert not (tmp_path / "manifests").exists()


class TestInterruptedSerialSweep:
    def test_resume_executes_only_missing_points(self, tmp_path, monkeypatch):
        real = backends.run_payload
        completed = {"count": 0}

        def dies_after_three(payload):
            if completed["count"] >= 3:
                raise RuntimeError("injected mid-flight failure")
            completed["count"] += 1
            return real(payload)

        monkeypatch.setattr(backends, "run_payload", dies_after_three)
        interrupted = Experiment(FAST, backend="serial", cache=tmp_path)
        with pytest.raises(RuntimeError, match="mid-flight"):
            interrupted.grid(config(), loads=LOADS)

        # The three completed points streamed into the cache before the
        # kill, and the manifest ledger says exactly which ones.
        assert len(ResultCache(tmp_path)) == 3
        manifest = ResultCache(tmp_path).manifest(grid_keys())
        assert len(manifest.done) == 3
        assert not manifest.is_complete
        assert len(manifest.remaining(grid_keys())) == 3

        # Restart (healthy worker): only the missing half executes.
        monkeypatch.setattr(backends, "run_payload", real)
        resumed = Experiment(FAST, backend="serial", cache=tmp_path)
        merged = resumed.grid(config(), loads=LOADS)
        assert resumed.stats.points_executed == 3
        assert resumed.stats.cache_hits == 3
        assert ResultCache(tmp_path).manifest(grid_keys()).is_complete

        # The merged grid is bit-identical to one that never failed.
        baseline = Experiment(FAST, backend="serial").grid(
            config(), loads=LOADS
        )
        assert merged.results == baseline.results

    def test_interrupted_batch_keeps_scheduler_accounting(
        self, tmp_path, monkeypatch
    ):
        real = backends.run_payload
        completed = {"count": 0}

        def dies_after_two(payload):
            if completed["count"] >= 2:
                raise RuntimeError("boom")
            completed["count"] += 1
            return real(payload)

        monkeypatch.setattr(backends, "run_payload", dies_after_two)
        exp = Experiment(FAST, backend="serial", cache=tmp_path)
        with pytest.raises(RuntimeError):
            exp.map([config(load) for load in LOADS])
        # The finally path still merged what the queue saw.
        assert exp.stats.scheduler.dispatch_seconds > 0
        assert exp.stats.scheduler.jobs_completed < len(LOADS)
        assert exp.stats.wall_seconds > 0


class TestInterruptedProcessSweep:
    def test_resume_after_worker_death(self, tmp_path, monkeypatch):
        real_chunk = backends.run_chunk
        monkeypatch.setattr(backends, "run_chunk", _tripwire_chunk)
        interrupted = Experiment(
            FAST, backend=ProcessBackend(2), cache=tmp_path,
        )
        with pytest.raises(RuntimeError, match="injected chunk failure"):
            interrupted.grid(
                config(), loads=LOADS, plan=Plan(chunk_size=2)
            )

        # At least one chunk landed before the poisoned one was even
        # pulled (the pull loop only feeds after a completion streamed),
        # and the poisoned chunk's points are missing.
        survivors = len(ResultCache(tmp_path))
        assert 2 <= survivors < len(LOADS)

        monkeypatch.setattr(backends, "run_chunk", real_chunk)
        resumed = Experiment(
            FAST, backend=ProcessBackend(2), cache=tmp_path,
        )
        merged = resumed.grid(config(), loads=LOADS, plan=Plan(chunk_size=2))
        assert resumed.stats.points_executed == len(LOADS) - survivors
        assert resumed.stats.cache_hits == survivors

        baseline = Experiment(FAST, backend="serial").grid(
            config(), loads=LOADS
        )
        assert merged.results == baseline.results
