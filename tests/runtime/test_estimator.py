"""The hybrid serving path: Estimator.query sources, refinement, telemetry."""

import math

import pytest

from repro.runtime import Estimator, Experiment, config_key
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.surrogate import SurrogateCoefficients, Calibration, calibrate, Observation

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)

pytestmark = pytest.mark.sim


def config(load=0.1, seed=3, **overrides):
    defaults = dict(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=seed,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


@pytest.fixture
def estimator(tmp_path):
    instance = Estimator(FAST, cache=tmp_path / "cache")
    yield instance
    instance.close()


class TestQuerySources:
    def test_cold_query_answers_from_surrogate(self, estimator):
        answer = estimator.query(config(), refine=False)
        assert answer.source == "surrogate"
        assert answer.estimate is not None
        assert answer.result is None
        assert math.isfinite(answer.latency_cycles)
        # Nothing simulated: the front experiment never executed.
        assert estimator.experiment.stats.points_executed == 0

    def test_surrogate_answer_is_instant_and_pure(self, estimator):
        first = estimator.query(config(), refine=False)
        second = estimator.query(config(), refine=False)
        assert first.latency_cycles == second.latency_cycles
        assert first.source == second.source == "surrogate"

    def test_wait_forces_simulation(self, estimator):
        answer = estimator.query(config(), wait=True)
        assert answer.source == "simulated"
        assert answer.result is not None
        assert answer.error_estimate == 0.0

    def test_cache_hit_answers_cached(self, estimator):
        estimator.query(config(), wait=True)
        answer = estimator.query(config())
        assert answer.source == "cached"
        assert answer.result is not None
        assert answer.result.source == "cached"
        assert answer.error_estimate == 0.0

    def test_load_override(self, estimator):
        answer = estimator.query(config(0.1), 0.3, refine=False)
        assert answer.load == pytest.approx(0.3)
        assert answer.config.injection_fraction == pytest.approx(0.3)

    def test_invalid_config_rejected(self, estimator):
        with pytest.raises(ValueError):
            estimator.query(config(), 1.5)


class TestRefinement:
    def test_refinement_lands_in_shared_cache(self, estimator):
        answer = estimator.query(config())
        assert answer.source == "surrogate"
        assert answer.refinement_scheduled
        assert estimator.drain(timeout=60)
        # The refined simulation is now in the cache: the same query
        # upgrades to a measured answer without simulating again.
        upgraded = estimator.query(config())
        assert upgraded.source == "cached"
        key = config_key(config(), FAST)
        assert estimator.experiment.cache.get(key) is not None

    def test_refinement_deduplicates(self, estimator):
        first = estimator.query(config())
        again = estimator.query(config())
        assert first.refinement_scheduled
        assert not again.refinement_scheduled  # same key, already queued
        assert estimator.drain(timeout=60)

    def test_refine_disabled_schedules_nothing(self, tmp_path):
        with Estimator(
            FAST, cache=tmp_path / "cache", refine=False
        ) as instance:
            answer = instance.query(config())
            assert answer.source == "surrogate"
            assert not answer.refinement_scheduled
            assert instance.backlog == 0

    def test_observed_error_recorded_after_refinement(self, estimator):
        estimator.query(config())
        assert estimator.drain(timeout=60)
        counters = estimator.counters()
        assert counters["estimator_refinements_completed"] == 1
        assert "estimator_observed_max_rel_error" in counters

    def test_close_is_idempotent(self, estimator):
        estimator.query(config())
        estimator.close()
        estimator.close()


class TestCalibrationIntegration:
    def test_calibrated_answers_carry_error_estimate(self, tmp_path):
        observations = [
            Observation(config=config(load), load=load, latency_cycles=latency)
            for load, latency in [(0.05, 20.0), (0.2, 24.0), (0.35, 33.0)]
        ]
        calibration = calibrate(observations)
        with Estimator(
            FAST, cache=tmp_path / "cache",
            calibration=calibration, refine=False,
        ) as instance:
            answer = instance.query(config(0.2))
            assert answer.source == "surrogate"
            assert answer.error_estimate is not None
            assert answer.error_estimate <= 0.15

    def test_uncalibrated_answers_say_so(self, estimator):
        answer = estimator.query(config(), refine=False)
        assert answer.error_estimate is None
        assert "uncalibrated" in answer.describe()


class TestTelemetry:
    def test_counters_track_sources(self, estimator):
        estimator.query(config(0.1), refine=False)    # surrogate
        estimator.query(config(0.2), wait=True)       # simulated
        estimator.query(config(0.2))                  # cached
        counters = estimator.counters()
        assert counters["estimator_queries"] == 3
        assert counters["estimator_answers{source=surrogate}"] == 1
        assert counters["estimator_answers{source=simulated}"] == 1
        assert counters["estimator_answers{source=cached}"] == 1

    def test_summary_renders(self, estimator):
        estimator.query(config(), refine=False)
        text = estimator.summary()
        assert "1 queries" in text
        assert "surrogate hit rate" in text
        assert "backlog" in text

    def test_answer_to_dict_is_json_shaped(self, estimator):
        import json

        answer = estimator.query(config(), refine=False)
        payload = json.loads(json.dumps(answer.to_dict()))
        assert payload["source"] == "surrogate"
        assert payload["estimate"]["breakdown"]


class TestRunResultProvenance:
    def test_engine_stamps_simulated(self):
        from repro.sim.engine import simulate

        result = simulate(config(), FAST)
        assert result.source == "simulated"

    def test_cache_replay_stamps_cached(self, tmp_path):
        experiment = Experiment(FAST, cache=tmp_path / "cache")
        fresh = experiment.point(config())
        assert fresh.source == "simulated"
        replayed = Experiment(
            FAST, cache=tmp_path / "cache"
        ).point(config())
        assert replayed.source == "cached"
        # Provenance never affects equality: the differential oracles
        # (cached_vs_uncached) compare results across sources.
        assert replayed == fresh

    def test_stats_tally_sources(self, tmp_path):
        experiment = Experiment(FAST, cache=tmp_path / "cache")
        experiment.point(config())
        experiment.point(config())
        assert experiment.stats.sources == {"simulated": 1, "cached": 1}
        assert "1 cached, 1 simulated" in experiment.stats.describe_sources()
        registry = experiment.stats.to_registry()
        assert registry.get(
            "experiment_result_source", source="cached"
        ).value == 1

    def test_round_trip_and_legacy_entries(self):
        from repro.sim.engine import simulate
        from repro.sim.metrics import RunResult

        result = simulate(config(), FAST)
        payload = result.to_dict()
        assert payload["source"] == "simulated"
        assert RunResult.from_dict(payload) == result
        # Cache entries written before the field existed deserialize
        # with source=None.
        payload.pop("source")
        legacy = RunResult.from_dict(payload)
        assert legacy.source is None
        assert legacy == result
