"""The job-scheduler core: chunking, stealing, rebalance, accounting."""

import pytest

from repro.runtime.scheduler import (
    Chunk,
    Job,
    JobQueue,
    Plan,
    RESULT_NEUTRAL,
    SchedulerStats,
)


def jobs(n):
    return [Job(index=i, key=f"k{i}", payload=(i,)) for i in range(n)]


class TestPlan:
    def test_explicit_chunk_size_wins(self):
        assert Plan(chunk_size=5).resolve_chunk_size(jobs=100, slots=8) == 5

    def test_explicit_chunk_size_validated(self):
        with pytest.raises(ValueError, match="chunk_size"):
            Plan(chunk_size=0).resolve_chunk_size(jobs=10, slots=1)

    def test_automatic_targets_chunks_per_worker(self):
        # 24 jobs on 2 slots with 4 chunks/worker -> 8 chunks of 3.
        assert Plan().resolve_chunk_size(jobs=24, slots=2) == 3

    def test_automatic_rounds_up(self):
        # 25 jobs / 8 target chunks -> ceil = 4 points per chunk.
        assert Plan().resolve_chunk_size(jobs=25, slots=2) == 4

    def test_never_below_one_point(self):
        assert Plan().resolve_chunk_size(jobs=2, slots=8) == 1
        assert Plan().resolve_chunk_size(jobs=0, slots=4) == 1

    def test_zero_slots_treated_as_one(self):
        assert Plan(chunks_per_worker=1).resolve_chunk_size(
            jobs=6, slots=0
        ) == 6

    def test_every_field_declared_result_neutral(self):
        # The contract CACHE003 enforces statically, restated here: a
        # Plan knob may never change what a point computes, so every
        # field must be on the declared scheduling-only list.
        import dataclasses

        fields = {f"Plan.{f.name}" for f in dataclasses.fields(Plan)}
        assert fields == set(RESULT_NEUTRAL)


class TestJobQueue:
    def test_partitions_in_order(self):
        queue = JobQueue(jobs(7), chunk_size=3)
        chunks = []
        while True:
            chunk = queue.pull(0)
            if chunk is None:
                break
            chunks.append(chunk)
        assert [len(c) for c in chunks] == [3, 3, 1]
        assert [c.chunk_id for c in chunks] == [0, 1, 2]
        flat = [job.index for c in chunks for job in c.jobs]
        assert flat == list(range(7))

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            JobQueue(jobs(3), chunk_size=0)

    def test_pull_counts_steals_against_round_robin(self):
        # Round-robin would give chunk i to worker i % 2; worker 0
        # pulling everything steals every odd chunk.
        queue = JobQueue(jobs(8), chunk_size=2, workers=2)
        while queue.pull(0) is not None:
            pass
        assert queue.stats.steals == 2

    def test_pull_in_own_share_is_not_a_steal(self):
        queue = JobQueue(jobs(4), chunk_size=2, workers=2)
        assert queue.pull(0).chunk_id == 0
        assert queue.pull(1).chunk_id == 1
        assert queue.stats.steals == 0

    def test_exhausted_tracks_in_flight(self):
        queue = JobQueue(jobs(2), chunk_size=2)
        chunk = queue.pull(0)
        assert not queue.exhausted  # pulled but not done
        queue.chunk_done(chunk, 0, 0.5)
        assert queue.exhausted

    def test_chunk_done_accounting(self):
        queue = JobQueue(jobs(4), chunk_size=2, workers=2)
        first, second = queue.pull(0), queue.pull(1)
        queue.chunk_done(first, 0, 1.0)
        queue.chunk_done(second, 1, 3.0)
        stats = queue.stats
        assert stats.chunks_completed == 2
        assert stats.jobs_completed == 4
        assert stats.chunk_seconds_total == pytest.approx(4.0)
        assert stats.chunk_seconds_max == pytest.approx(3.0)
        assert stats.worker_busy_seconds == {0: 1.0, 1: 3.0}
        assert stats.mean_chunk_seconds == pytest.approx(2.0)

    def test_rebalance_splits_tail_for_idle_workers(self):
        # One 6-point chunk left, 3 idle workers: split until they can
        # share (6 -> 3+3 -> 2+1+3... stops at 3 chunks).
        queue = JobQueue(jobs(6), chunk_size=6, workers=3)
        splits = queue.rebalance(idle_workers=3)
        assert splits == 2
        assert len(queue) == 3
        assert queue.stats.splits == 2
        pulled = [queue.pull(w) for w in range(3)]
        flat = [job.index for c in pulled for job in c.jobs]
        assert sorted(flat) == list(range(6))  # no job lost or doubled

    def test_rebalance_keeps_single_points_whole(self):
        queue = JobQueue(jobs(2), chunk_size=1, workers=4)
        assert queue.rebalance(idle_workers=4) == 0
        assert len(queue) == 2

    def test_rebalance_noop_when_queue_has_enough(self):
        queue = JobQueue(jobs(8), chunk_size=2, workers=2)
        assert queue.rebalance(idle_workers=2) == 0
        assert queue.stats.splits == 0


class TestSchedulerStats:
    def test_merge_adds_and_maxes(self):
        a = SchedulerStats(
            chunks_total=2, chunks_completed=2, jobs_completed=4,
            steals=1, splits=0, chunk_seconds_total=2.0,
            chunk_seconds_max=1.5, dispatch_seconds=2.0,
        )
        a.worker_busy_seconds = {0: 2.0}
        b = SchedulerStats(
            chunks_total=3, chunks_completed=3, jobs_completed=6,
            steals=2, splits=1, chunk_seconds_total=6.0,
            chunk_seconds_max=4.0, dispatch_seconds=3.0,
        )
        b.worker_busy_seconds = {0: 1.0, 1: 5.0}
        b.record_stream_lag(0.25)
        a.merge(b)
        assert a.chunks_total == 5
        assert a.jobs_completed == 10
        assert a.steals == 3
        assert a.splits == 1
        assert a.chunk_seconds_max == pytest.approx(4.0)
        assert a.worker_busy_seconds == {0: 3.0, 1: 5.0}
        assert a.dispatch_seconds == pytest.approx(5.0)
        assert a.stream_lag_count == 1
        assert a.mean_stream_lag == pytest.approx(0.25)

    def test_worker_utilization_is_busy_over_dispatch(self):
        stats = SchedulerStats(dispatch_seconds=4.0)
        stats.worker_busy_seconds = {0: 4.0, 1: 1.0}
        assert stats.worker_utilization() == {0: 1.0, 1: 0.25}

    def test_worker_utilization_capped_and_safe(self):
        stats = SchedulerStats(dispatch_seconds=1.0)
        stats.worker_busy_seconds = {0: 1.5}  # clock skew can overshoot
        assert stats.worker_utilization() == {0: 1.0}
        idle = SchedulerStats()
        idle.worker_busy_seconds = {0: 1.0}
        assert idle.worker_utilization() == {0: 0.0}

    def test_empty_means_are_zero(self):
        stats = SchedulerStats()
        assert stats.mean_chunk_seconds == 0.0
        assert stats.mean_stream_lag == 0.0


class TestChunk:
    def test_len_is_job_count(self):
        assert len(Chunk(0, jobs(3))) == 3
