"""Backend selection and semantics: serial, process pool, ssh fabric."""

import pytest

from repro.runtime import (
    BackendUnavailable,
    Experiment,
    ProcessBackend,
    ResultCache,
    SerialBackend,
    SSHBackend,
    resolve_backend,
)
from repro.runtime.backends import BACKEND_ENV, SSH_HOSTS_ENV
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)


def config(load=0.1, seed=3, **overrides):
    defaults = dict(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=seed,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestResolveBackend:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert isinstance(resolve_backend(None, workers=0), SerialBackend)
        assert isinstance(resolve_backend(None, workers=1), SerialBackend)

    def test_workers_imply_process(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        backend = resolve_backend(None, workers=3)
        assert isinstance(backend, ProcessBackend)
        assert backend.slots == 3

    def test_name_strings(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert resolve_backend("process:5").slots == 5
        assert resolve_backend("ssh:3").world == 3

    def test_bare_process_defaults_to_two_workers(self):
        assert resolve_backend("process", workers=0).slots == 2
        assert resolve_backend("process", workers=6).slots == 6

    def test_environment_selects(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "process:2")
        backend = resolve_backend(None, workers=0)
        assert isinstance(backend, ProcessBackend)
        assert backend.slots == 2

    def test_instances_pass_through(self):
        backend = ProcessBackend(2)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_non_string_non_backend_rejected(self):
        with pytest.raises(TypeError, match="backend"):
            resolve_backend(42)

    def test_process_needs_a_worker(self):
        with pytest.raises(ValueError, match="worker"):
            ProcessBackend(0)


class TestSSHBackend:
    def test_shard_is_modulo_partition(self):
        backend = SSHBackend(world=3)
        shards = [backend.shard(8, rank) for rank in range(3)]
        assert shards == [[0, 3, 6], [1, 4, 7], [2, 5]]
        # Every chunk owned exactly once.
        assert sorted(sum(shards, [])) == list(range(8))

    def test_world_defaults_to_host_count(self):
        assert SSHBackend(hosts=["a", "b", "c"]).world == 3
        assert SSHBackend().world == 2  # loopback default

    def test_from_env_reads_host_list(self, monkeypatch):
        monkeypatch.setenv(SSH_HOSTS_ENV, "node1, node2 ,node3")
        backend = SSHBackend.from_env()
        assert backend.hosts == ("node1", "node2", "node3")

    def test_command_lines_render_rank_environment(self):
        backend = SSHBackend(hosts=["node1", "node2"])
        lines = backend.command_lines("/shared/cache", label="fig13")
        assert len(lines) == 2
        assert "REPRO_RANK=0" in lines[0]
        assert "REPRO_RANK=1" in lines[1]
        assert all("REPRO_WORLD=2" in line for line in lines)
        assert all("REPRO_CACHE_DIR=/shared/cache" in line for line in lines)
        assert all("--label fig13" in line for line in lines)

    def test_command_lines_need_hosts(self):
        with pytest.raises(BackendUnavailable, match="hosts"):
            SSHBackend(world=2).command_lines("/tmp/cache")

    def test_execute_with_hosts_is_a_stub(self, tmp_path):
        backend = SSHBackend(hosts=["node1"])
        exp = Experiment(FAST, backend=backend, cache=tmp_path)
        with pytest.raises(BackendUnavailable, match="remote"):
            exp.point(config())

    def test_requires_a_shared_cache(self):
        with pytest.raises(ValueError, match="cache"):
            Experiment(FAST, backend=SSHBackend(world=2))

    def test_loopback_streams_into_the_shared_cache(self, tmp_path):
        exp = Experiment(FAST, backend="ssh", cache=tmp_path)
        exp.map([config(0.05), config(0.1), config(0.15)])
        assert len(ResultCache(tmp_path)) == 3


class TestBackendEquivalence:
    def test_all_backends_bit_identical(self, tmp_path):
        configs = [config(load) for load in (0.05, 0.1, 0.15, 0.2)]
        baseline = Experiment(FAST, backend="serial").map(configs)
        by_process = Experiment(
            FAST, backend=ProcessBackend(2)
        ).map(configs)
        by_ssh = Experiment(
            FAST, backend=SSHBackend(world=2), cache=tmp_path
        ).map(configs)
        assert by_process == baseline
        assert by_ssh == baseline

    def test_process_backend_reports_chunks(self):
        configs = [config(load) for load in (0.05, 0.1, 0.15, 0.2)]
        from repro.runtime import Plan

        exp = Experiment(FAST, backend=ProcessBackend(2))
        exp.map(configs, plan=Plan(chunk_size=1))
        scheduler = exp.stats.scheduler
        assert scheduler.chunks_completed == 4
        assert scheduler.jobs_completed == 4
        assert scheduler.dispatch_seconds > 0
        assert set(scheduler.worker_busy_seconds) <= {0, 1}
