"""The Experiment façade: API, validation, caching, parallel equivalence."""

import math

import pytest

from repro.runtime import Experiment, NullProgress, ResultCache
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)


def config(load=0.1, seed=3, **overrides):
    defaults = dict(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=load, seed=seed,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestRunOne:
    def test_matches_legacy_simulate(self):
        assert Experiment(FAST).run_one(config()) == simulate(config(), FAST)

    def test_validates_at_entry(self):
        bad = config()
        bad.injection_fraction = 1.5  # mutate past construction checks
        with pytest.raises(ValueError, match="injection_fraction"):
            Experiment(FAST).run_one(bad)

    def test_rejects_negative_workers(self):
        with pytest.raises(ValueError, match="workers"):
            Experiment(FAST, workers=-1)


class TestValidate:
    def test_zero_injection_rejected(self):
        cfg = config()
        cfg.injection_fraction = 0.0
        with pytest.raises(ValueError, match="injection_fraction"):
            cfg.validate()

    def test_vct_needs_deep_buffers(self):
        cfg = config(
            router_kind=RouterKind.VIRTUAL_CUT_THROUGH, buffers_per_vc=2
        )
        with pytest.raises(ValueError, match="cut-through"):
            cfg.validate()

    def test_unarbitrable_vc_count(self):
        cfg = config(router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2)
        cfg.num_vcs = 128  # past construction, beyond the allocator model
        with pytest.raises(ValueError, match="num_vcs"):
            cfg.validate()

    def test_mutated_construction_field_caught(self):
        cfg = config()
        cfg.mesh_radix = 0
        with pytest.raises(ValueError, match="radix"):
            cfg.validate()

    def test_good_config_chains(self):
        cfg = config()
        assert cfg.validate() is cfg


class TestCaching:
    def test_second_call_hits_cache(self, tmp_path):
        exp = Experiment(FAST, cache=tmp_path)
        first = exp.run_one(config())
        second = exp.run_one(config())
        assert first == second
        assert exp.cache.hits == 1
        assert exp.stats.points_executed == 1
        assert exp.stats.cache_hits == 1

    def test_cache_shared_across_experiments(self, tmp_path):
        Experiment(FAST, cache=tmp_path).run_one(config())
        exp = Experiment(FAST, cache=tmp_path)
        exp.run_one(config())
        assert exp.stats.points_executed == 0
        assert exp.stats.cache_hits == 1

    def test_different_measurement_misses(self, tmp_path):
        Experiment(FAST, cache=tmp_path).run_one(config())
        other = MeasurementConfig(
            warmup_cycles=60, sample_packets=60, max_cycles=3_000,
            drain_cycles=1_000,
        )
        exp = Experiment(other, cache=tmp_path)
        exp.run_one(config())
        assert exp.stats.points_executed == 1

    def test_duplicate_points_execute_once(self, tmp_path):
        exp = Experiment(FAST, cache=tmp_path)
        results = exp.run_many([config(), config(), config(0.2)])
        assert results[0] == results[1]
        assert exp.stats.points_executed == 2
        assert exp.stats.deduplicated == 1

    def test_cache_accepts_resultcache_instance(self, tmp_path):
        store = ResultCache(tmp_path)
        exp = Experiment(FAST, cache=store)
        assert exp.cache is store


class TestSpecializationStats:
    def test_envelope_aggregates_over_executed_points(self):
        exp = Experiment(FAST)
        exp.run_many([config(), config(0.2)])
        # Two 4x4-mesh points, every router on the compiled fast path.
        assert exp.stats.routers_specialized == 32
        assert exp.stats.routers_generic == 0
        assert exp.stats.generic_step_reasons == {}
        assert "32 routers specialized" in exp.stats.describe_specialization()

    def test_checked_points_report_their_fallback_reason(self):
        exp = Experiment(FAST, checked=True)
        exp.run_one(config())
        assert exp.stats.routers_specialized == 0
        assert exp.stats.routers_generic == 16
        assert exp.stats.generic_step_reasons == {"checked": 1}
        text = exp.stats.describe_specialization()
        assert "16 generic" in text
        assert "checked: 1" in text


class TestSweep:
    def test_matches_legacy_sweep_shim(self):
        from repro.experiments.sweep import sweep

        direct = Experiment(FAST).run_sweep(
            config(), "wh", loads=(0.05, 0.2)
        )
        shim = sweep(config(), "wh", loads=(0.05, 0.2), measurement=FAST)
        assert direct.points == shim.points

    def test_stops_after_saturation_serial(self):
        saturating = MeasurementConfig(
            warmup_cycles=100, sample_packets=2_000, max_cycles=1_000,
            drain_cycles=100,
        )
        curve = Experiment(saturating).run_sweep(
            config(), "wh", loads=(0.9, 0.95, 1.0)
        )
        assert len(curve.points) == 1
        assert curve.points[0].saturated

    def test_truncates_after_saturation_parallel(self):
        saturating = MeasurementConfig(
            warmup_cycles=100, sample_packets=2_000, max_cycles=1_000,
            drain_cycles=100,
        )
        curve = Experiment(saturating, workers=2).run_sweep(
            config(), "wh", loads=(0.9, 0.95, 1.0)
        )
        assert len(curve.points) == 1
        assert curve.points[0].saturated

    def test_run_sweeps_batches_curves(self):
        curves = Experiment(FAST).run_sweeps(
            [("a", config(seed=1)), ("b", config(seed=2))],
            loads=(0.05, 0.2),
        )
        assert [c.label for c in curves] == ["a", "b"]
        assert all(len(c.points) == 2 for c in curves)


class TestGrid:
    def test_grid_shape_and_order(self):
        grid = Experiment(FAST).run_grid(
            config(), loads=(0.2, 0.05), seeds=(1, 2)
        )
        axes = [
            (p.config.injection_fraction, p.config.seed) for p in grid
        ]
        assert axes == [(0.05, 1), (0.05, 2), (0.2, 1), (0.2, 2)]

    def test_parallel_grid_bit_identical_to_serial(self):
        loads = (0.05, 0.15, 0.25)
        seeds = (1, 2)
        serial = Experiment(FAST, workers=0).run_grid(
            config(), loads=loads, seeds=seeds
        )
        parallel = Experiment(FAST, workers=2).run_grid(
            config(), loads=loads, seeds=seeds
        )
        assert serial.results == parallel.results
        for a, b in zip(serial.results, parallel.results):
            assert a.counters == b.counters
            assert a.average_latency == b.average_latency

    def test_grid_defaults_keep_config_axes(self):
        grid = Experiment(FAST).run_grid(config(load=0.15, seed=7))
        assert len(grid) == 1
        assert grid.points[0].config.injection_fraction == 0.15
        assert grid.points[0].config.seed == 7

    def test_grid_curve_extraction(self):
        grid = Experiment(FAST).run_grid(config(), loads=(0.05, 0.2))
        curve = grid.curve("wh")
        assert len(curve.points) == 2
        assert math.isfinite(curve.zero_load_latency())

    def test_run_with_seeds_aggregates(self):
        aggregate = Experiment(FAST).run_with_seeds(
            config(), load=0.1, seeds=(1, 2)
        )
        assert len(aggregate.runs) == 2
        assert aggregate.injection_fraction == 0.1


class TestProgress:
    def test_hooks_fire_with_cache_flags(self, tmp_path):
        events = []

        class Recorder(NullProgress):
            def on_batch_start(self, total):
                events.append(("start", total))

            def on_point_done(self, index, total, cfg, result, cached):
                events.append(("done", index, cached))

            def on_batch_done(self, total):
                events.append(("end", total))

        exp = Experiment(FAST, cache=tmp_path, progress=Recorder())
        exp.run_many([config(), config(0.2)])
        exp.run_many([config(), config(0.2)])

        starts = [e for e in events if e[0] == "start"]
        dones = [e for e in events if e[0] == "done"]
        assert starts == [("start", 2), ("start", 2)]
        assert [cached for _, _, cached in dones[:2]] == [False, False]
        assert [cached for _, _, cached in dones[2:]] == [True, True]
