"""Cache hit/miss semantics: keying, persistence, exact round trips."""

from dataclasses import replace

import pytest

from repro.runtime.cache import ResultCache, code_fingerprint, config_key
from repro.sim.config import MeasurementConfig, RouterKind, SimConfig
from repro.sim.engine import simulate

FAST = MeasurementConfig(
    warmup_cycles=50, sample_packets=60, max_cycles=3_000, drain_cycles=1_000
)


def base_config(**overrides):
    defaults = dict(
        router_kind=RouterKind.WORMHOLE, mesh_radix=4, buffers_per_vc=8,
        injection_fraction=0.1, seed=3,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


class TestConfigKey:
    def test_stable_for_equal_configs(self):
        assert config_key(base_config(), FAST) == config_key(
            base_config(), FAST
        )

    @pytest.mark.parametrize("override", [
        {"seed": 4},
        {"injection_fraction": 0.2},
        {"buffers_per_vc": 4},
        {"mesh_radix": 8},
        {"traffic_pattern": "transpose"},
        {"arbiter_kind": "round_robin"},
        {"router_kind": RouterKind.VIRTUAL_CHANNEL, "num_vcs": 2},
    ])
    def test_any_config_field_changes_key(self, override):
        assert config_key(base_config(), FAST) != config_key(
            base_config(**override), FAST
        )

    def test_measurement_changes_key(self):
        other = replace(FAST, sample_packets=61)
        assert config_key(base_config(), FAST) != config_key(
            base_config(), other
        )

    def test_code_version_changes_key(self):
        assert config_key(base_config(), FAST) != config_key(
            base_config(), FAST, code_version="something-else"
        )

    def test_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(base_config(), FAST)
        assert cache.get(key) is None
        assert cache.misses == 1

        result = simulate(base_config(), FAST)
        cache.put(key, result)
        assert key in cache
        assert cache.get(key) == result
        assert cache.hits == 1

    def test_round_trip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = simulate(base_config(), FAST)
        key = config_key(base_config(), FAST)
        cache.put(key, result)
        restored = cache.get(key)
        assert restored == result
        assert restored.latency == result.latency
        assert restored.counters == result.counters
        assert restored.average_latency == result.average_latency

    def test_survives_process_restart(self, tmp_path):
        # A fresh ResultCache over the same directory (what a new
        # process would construct) still serves the entry.
        key = config_key(base_config(), FAST)
        result = simulate(base_config(), FAST)
        ResultCache(tmp_path).put(key, result)

        reopened = ResultCache(tmp_path)
        assert reopened.get(key) == result

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = simulate(base_config(), FAST)
        for seed in (1, 2, 3):
            cache.put(config_key(base_config(seed=seed), FAST), result)
        assert len(cache) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = config_key(base_config(), FAST)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.misses == 1
