"""Plain-text report assembly for the experiment drivers.

``python -m repro.experiments`` (see ``__main__.py``) uses these to
print the full reproduction: Table 1, the pipeline figures, and --
optionally, since they simulate -- the latency-throughput figures.
``python -m repro.experiments report --telemetry`` additionally renders
one instrumented run's :class:`~repro.telemetry.TelemetrySummary` via
:func:`telemetry_report`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..telemetry import TelemetryConfig
from . import figures


def delay_model_report() -> str:
    """Table 1 + Figures 11, 12 and 16 (no simulation required)."""
    sections = [
        "Table 1 (p=5, w=32, v=2, clk=20 tau4)",
        figures.render_table1_report(),
        "",
        figures.fig11().render(),
        "",
        figures.fig12().render(),
        "",
        figures.fig16(),
    ]
    return "\n".join(sections)


def simulation_report(
    measurement: Optional[MeasurementConfig] = None,
    loads: Optional[Sequence[float]] = None,
    experiment: Optional[Experiment] = None,
) -> str:
    """Figures 13-15, 17 and 18 (runs the simulator; minutes at default scale).

    Pass an :class:`Experiment` with workers/cache attached to fan each
    figure out in parallel and reuse previously computed points.
    """
    kwargs = {}
    if measurement is not None:
        kwargs["measurement"] = measurement
    if loads is not None:
        kwargs["loads"] = loads
    if experiment is not None:
        kwargs["experiment"] = experiment
    sections = []
    for fig in (figures.fig13, figures.fig14, figures.fig15,
                figures.fig17, figures.fig18):
        sections.append(fig(**kwargs).render())
        sections.append("")
    return "\n".join(sections)


def telemetry_snapshot_config(
    load: float = 0.42, seed: int = 42
) -> SimConfig:
    """The canonical instrumented run: 8x8 speculative VC router.

    0.42 of capacity sits on the climbing part of Figure 13's
    speculative curve -- busy enough that speculation wins and loses in
    the same run, well short of saturation.
    """
    return SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        injection_fraction=load, seed=seed,
    )


def telemetry_report(
    config: Optional[SimConfig] = None,
    measurement: Optional[MeasurementConfig] = None,
    telemetry: Optional[TelemetryConfig] = None,
    export_dir: Optional[Union[str, Path]] = None,
) -> str:
    """Run one instrumented simulation and render its telemetry.

    Runs the :class:`~repro.sim.engine.Simulator` directly (not through
    an :class:`~repro.runtime.Experiment`) so the in-memory
    :class:`~repro.sim.trace.Tracer` is still reachable for Chrome-trace
    export -- the trace's raw event list is deliberately not part of the
    serializable :class:`~repro.telemetry.TelemetrySummary`.

    With ``export_dir`` set, writes ``telemetry.jsonl``,
    ``telemetry.csv``, ``windows.csv`` and ``trace.json`` (the Chrome
    ``trace_event`` file Perfetto opens) into it and lists the paths in
    the rendered report.
    """
    from ..sim.engine import Simulator
    from ..telemetry import TelemetrySession, exporters

    config = config or telemetry_snapshot_config()
    if telemetry is None:
        telemetry = config.telemetry or TelemetryConfig(
            capture_trace=export_dir is not None
        )
    session = TelemetrySession(telemetry)
    result = Simulator(config, measurement, telemetry=session).run()
    summary = result.telemetry
    assert summary is not None

    lines = [
        f"Telemetry: {config.router_kind.value} "
        f"{config.mesh_radix}x{config.mesh_radix}, "
        f"{config.num_vcs} VCs x {config.buffers_per_vc} buffers, "
        f"load {config.injection_fraction:.2f}, seed {config.seed}",
        f"  cycles observed       {summary.cycles_observed:,} "
        f"(sample period {summary.sample_period}, "
        f"window {summary.window_cycles})",
        f"  speculation win rate  {summary.speculation_win_rate:.1%} "
        f"({summary.speculation_won:,.0f} of "
        f"{summary.speculation_attempted:,.0f} attempts)",
        f"  channel utilization   {summary.channel_utilization:.1%}",
    ]
    directions = summary.directions()
    if directions:
        lines.append("    " + "  ".join(
            f"{port} {summary.port_utilization(port):.1%}"
            for port in directions
        ))
    lines.append(
        f"  mean VC occupancy     {summary.mean_vc_occupancy:.2f} "
        f"flits/buffer (peak network backlog "
        f"{summary.peak_vc_occupancy:,.0f} flits)"
    )
    lines.append(
        f"  credit stall rate     {summary.credit_stall_rate:.2%} "
        f"of router-cycles"
    )
    shares = summary.grant_share_by_input()
    if shares:
        lines.append("  switch grants by input:  " + "  ".join(
            f"{port} {share:.0%}" for port, share in shares.items()
        ))
    lines.append(
        f"  run result            {result.describe()}"
    )

    if export_dir is not None:
        export_dir = Path(export_dir)
        export_dir.mkdir(parents=True, exist_ok=True)
        written = [
            exporters.export_jsonl(summary, export_dir / "telemetry.jsonl"),
            exporters.export_csv(summary, export_dir / "telemetry.csv"),
            exporters.export_windows_csv(summary, export_dir / "windows.csv"),
            exporters.export_chrome_trace(
                export_dir / "trace.json",
                summary=summary, tracer=session.tracer,
            ),
        ]
        lines.append("exports:")
        lines.extend(f"  {path}" for path in written)
    return "\n".join(lines)
