"""Plain-text report assembly for the experiment drivers.

``python -m repro.experiments`` (see ``__main__.py``) uses these to
print the full reproduction: Table 1, the pipeline figures, and --
optionally, since they simulate -- the latency-throughput figures.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig
from . import figures


def delay_model_report() -> str:
    """Table 1 + Figures 11, 12 and 16 (no simulation required)."""
    sections = [
        "Table 1 (p=5, w=32, v=2, clk=20 tau4)",
        figures.render_table1_report(),
        "",
        figures.fig11().render(),
        "",
        figures.fig12().render(),
        "",
        figures.fig16(),
    ]
    return "\n".join(sections)


def simulation_report(
    measurement: Optional[MeasurementConfig] = None,
    loads: Optional[Sequence[float]] = None,
    experiment: Optional[Experiment] = None,
) -> str:
    """Figures 13-15, 17 and 18 (runs the simulator; minutes at default scale).

    Pass an :class:`Experiment` with workers/cache attached to fan each
    figure out in parallel and reuse previously computed points.
    """
    kwargs = {}
    if measurement is not None:
        kwargs["measurement"] = measurement
    if loads is not None:
        kwargs["loads"] = loads
    if experiment is not None:
        kwargs["experiment"] = experiment
    sections = []
    for fig in (figures.fig13, figures.fig14, figures.fig15,
                figures.fig17, figures.fig18):
        sections.append(fig(**kwargs).render())
        sections.append("")
    return "\n".join(sections)
