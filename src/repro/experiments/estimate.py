"""The ``estimate`` subcommand: hybrid surrogate-first query serving.

::

    python -m repro.experiments estimate --router wormhole --load 0.3
    python -m repro.experiments estimate --loads 0.1,0.2,0.3 --json
    python -m repro.experiments estimate --calibrate --cache
    python -m repro.experiments estimate --serve

Batch mode answers each requested load immediately -- from the
analytical surrogate (microseconds, no cycle kernel) or the result
cache -- and schedules cycle-accurate refinement in the background;
``--serve`` runs a long-lived read-query-answer loop over stdin
instead.  See ``docs/SURROGATE.md`` for the model and serving
semantics.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..runtime.estimator import Estimator
from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..surrogate import Calibration

__all__ = ["estimate_command"]

#: stdin keys the ``--serve`` loop accepts, mapped to config fields.
_SERVE_KEYS = {
    "router": ("router_kind", lambda v: RouterKind(v)),
    "load": ("injection_fraction", float),
    "radix": ("mesh_radix", int),
    "vcs": ("num_vcs", int),
    "buffers": ("buffers_per_vc", int),
    "topology": ("topology", str),
    "routing": ("routing_function", str),
    "allocator": ("allocator_kind", str),
    "seed": ("seed", int),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments estimate",
        description="Answer latency/throughput queries from the "
                    "analytical surrogate + result cache, with "
                    "background cycle-accurate refinement.",
    )
    parser.add_argument(
        "--router", default="speculative_vc", metavar="KIND",
        choices=[kind.value for kind in RouterKind],
        help="router kind (default speculative_vc)",
    )
    parser.add_argument(
        "--radix", type=int, default=8,
        help="mesh/torus radix k (default 8)",
    )
    parser.add_argument(
        "--vcs", type=int, default=None,
        help="virtual channels per port (default 2 for VC routers, 1 "
             "otherwise)",
    )
    parser.add_argument(
        "--buffers", type=int, default=None,
        help="flit buffers per VC (default: config default)",
    )
    parser.add_argument(
        "--topology", default="mesh", choices=("mesh", "torus"),
        help="network topology (default mesh)",
    )
    parser.add_argument(
        "--routing", default=None, metavar="FN",
        help="routing function: xy, yx, o1turn, adaptive",
    )
    parser.add_argument(
        "--allocator", default=None, metavar="KIND",
        help="allocator kind for VC routers",
    )
    parser.add_argument(
        "--load", type=float, default=0.42,
        help="offered load as a fraction of capacity (default 0.42)",
    )
    parser.add_argument(
        "--loads", default=None, metavar="L1,L2,...",
        help="comma-separated load list (overrides --load)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="simulation seed for refinement runs (default 42)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size for refinement",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="refinement worker processes (default $REPRO_WORKERS)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="refinement backend: serial, process[:N], ssh[:N]",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None, metavar="DIR",
        help="result-cache directory (default $REPRO_CACHE_DIR or "
             "~/.cache/repro-sim); the cache is always on for the "
             "estimator -- it is where refinements land",
    )
    parser.add_argument(
        "--calibration", type=Path, default=None, metavar="FILE",
        help="load fitted surrogate coefficients from this JSON file",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="fit the surrogate against the cached corpus first "
             "(simulates missing corpus points; cache makes re-runs "
             "instant), and use + report the fitted coefficients; "
             "with --calibration FILE, write the fit there",
    )
    parser.add_argument(
        "--no-refine", action="store_true",
        help="answer from surrogate/cache only; never simulate",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="block on cycle-accurate simulation instead of answering "
             "from the surrogate (answers become source=simulated)",
    )
    parser.add_argument(
        "--drain", action="store_true",
        help="wait for background refinements to finish before exiting",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit answers as JSON lines instead of text",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="long-running mode: read 'key=value ...' queries from "
             "stdin (keys: router load radix vcs buffers topology "
             "routing seed), answer each line; 'quit' or EOF exits",
    )
    return parser


def _base_config(args) -> SimConfig:
    kind = RouterKind(args.router)
    overrides = {}
    if args.vcs is not None:
        overrides["num_vcs"] = args.vcs
    else:
        overrides["num_vcs"] = 2 if kind.uses_vcs else 1
    if args.buffers is not None:
        overrides["buffers_per_vc"] = args.buffers
    if args.routing is not None:
        overrides["routing_function"] = args.routing
    if args.allocator is not None:
        overrides["allocator_kind"] = args.allocator
    return SimConfig(
        router_kind=kind,
        mesh_radix=args.radix,
        injection_fraction=args.load,
        topology=args.topology,
        seed=args.seed,
        **overrides,
    )


def _emit(answer, as_json: bool) -> None:
    if as_json:
        print(json.dumps(answer.to_dict(), sort_keys=True))
    else:
        print(answer.describe())


def _serve_loop(estimator: Estimator, base: SimConfig, args) -> int:
    """Read one query per stdin line, answer immediately."""
    from dataclasses import replace

    print(
        "[serve] ready; query lines like 'router=wormhole load=0.3' "
        "(empty line repeats, 'quit' exits)",
        file=sys.stderr,
    )
    last = base
    for line in sys.stdin:
        line = line.strip()
        if line in ("quit", "exit"):
            break
        if line.startswith("#"):
            continue
        try:
            overrides = {}
            for token in line.split():
                key, _, value = token.partition("=")
                if key not in _SERVE_KEYS:
                    raise ValueError(
                        f"unknown key {key!r} (expected one of "
                        f"{', '.join(sorted(_SERVE_KEYS))})"
                    )
                field_name, parse = _SERVE_KEYS[key]
                overrides[field_name] = parse(value)
            if "router_kind" in overrides and "num_vcs" not in overrides:
                # Switching router families implies a sensible VC
                # count unless the query pins one (SimConfig validates
                # at construction, so decide before replace()).
                overrides["num_vcs"] = (
                    max(2, last.num_vcs)
                    if overrides["router_kind"].uses_vcs else 1
                )
            config = replace(last, **overrides)
            answer = estimator.query(
                config, wait=args.wait,
                refine=not args.no_refine,
            )
        except (ValueError, KeyError) as error:
            print(f"[serve] error: {error}", file=sys.stderr)
            continue
        last = config
        _emit(answer, args.json)
        sys.stdout.flush()
    print(estimator.summary(), file=sys.stderr)
    return 0


def estimate_command(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    measurement = MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets

    calibration = None
    if args.calibration is not None and args.calibration.exists():
        calibration = Calibration.from_dict(
            json.loads(args.calibration.read_text())
        )

    estimator = Estimator(
        measurement,
        cache=args.cache_dir if args.cache_dir is not None else True,
        backend=args.backend,
        workers=args.workers,
        calibration=calibration,
        refine=not args.no_refine,
    )
    try:
        if args.calibrate:
            fitted = estimator.calibrate()
            print(f"[estimate] {fitted.describe()}", file=sys.stderr)
            if args.calibration is not None:
                args.calibration.write_text(
                    json.dumps(fitted.to_dict(), indent=2, sort_keys=True)
                )
                print(
                    f"[estimate] calibration written to "
                    f"{args.calibration}",
                    file=sys.stderr,
                )

        base = _base_config(args)
        if args.serve:
            return _serve_loop(estimator, base, args)

        loads = (
            [float(x) for x in args.loads.split(",")]
            if args.loads else [args.load]
        )
        from dataclasses import replace

        for load in loads:
            answer = estimator.query(
                replace(base, injection_fraction=load), wait=args.wait,
            )
            _emit(answer, args.json)
        if args.drain:
            estimator.drain()
        print(estimator.summary(), file=sys.stderr)
        return 0
    finally:
        estimator.close()


if __name__ == "__main__":
    raise SystemExit(estimate_command())
