"""Closed-form performance analysis, cross-validating the simulator.

The simulator's timing (DESIGN.md section 4) admits exact zero-load
predictions:

* **Zero-load packet latency** over an ``H``-hop path through depth-``D``
  routers with 1-cycle links and an ``L``-flit packet::

      T0 = (D + 1) * H  +  D  +  L

  (head: D cycles in the source router, D+1 per hop, 2 to eject --
  folded into the constants -- plus L-1 serialization).  With the 8x8
  mesh's mean hop count of 5.33 this gives 29.3 / 35.7 / 16.7 cycles
  for the 3- / 4- / 1-stage routers: the numbers Figures 13/17 quote.

* **Per-VC sustainable rate** under credit flow control:
  ``min(1, buffers / credit_loop)`` flits/cycle -- the mechanism behind
  Figures 14/15/18.

The tests compare these predictions against actual simulations; a
disagreement means either the model or the simulator drifted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..delaymodel.optimizer import credit_loop_cycles
from ..sim.topology import Mesh

#: Pipeline depths of the simulated routers.
ROUTER_DEPTHS = {
    "wormhole": 3,
    "virtual_channel": 4,
    "speculative_vc": 3,
    "single_cycle_wormhole": 1,
    "single_cycle_vc": 1,
    "virtual_cut_through": 3,   # wormhole datapath, VCT admission
}


def zero_load_latency_for_path(
    hops: int, depth: int, packet_length: int, flit_propagation: int = 1
) -> int:
    """Exact zero-load latency of one packet over a specific path."""
    if hops < 1:
        raise ValueError("need at least one hop")
    if depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    per_hop = depth + flit_propagation
    return per_hop * hops + depth + packet_length


def predicted_zero_load_latency(
    mesh: Mesh, depth: int, packet_length: int, flit_propagation: int = 1
) -> float:
    """Mean zero-load latency under uniform traffic on a mesh."""
    per_hop = depth + flit_propagation
    return per_hop * mesh.average_hop_distance() + depth + packet_length


def sustainable_vc_rate(
    buffers_per_vc: int,
    depth: int,
    credit_propagation: int = 1,
    flit_propagation: int = 1,
) -> float:
    """Max flits/cycle one VC can stream through a hop (credit-limited)."""
    loop = credit_loop_cycles(depth, credit_propagation, flit_propagation)
    return min(1.0, buffers_per_vc / loop)


@dataclass(frozen=True)
class ZeroLoadPrediction:
    """A prediction bundled with the paper's quoted value (if any)."""

    router: str
    depth: int
    predicted: float
    paper_value: float


def paper_zero_load_predictions(packet_length: int = 5) -> list:
    """The Figure 13/17 zero-load numbers, predicted from first principles."""
    mesh = Mesh(8)
    quoted = {
        "wormhole": 29.0,
        "virtual_channel": 36.0,
        "speculative_vc": 30.0,
        "single_cycle_wormhole": 16.0,
        "single_cycle_vc": 16.0,
    }
    return [
        ZeroLoadPrediction(
            router=name,
            depth=ROUTER_DEPTHS[name],
            predicted=predicted_zero_load_latency(
                mesh, ROUTER_DEPTHS[name], packet_length
            ),
            paper_value=paper_value,
        )
        for name, paper_value in quoted.items()
    ]
