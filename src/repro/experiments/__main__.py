"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # delay-model results only
    python -m repro.experiments --simulate      # + latency-throughput figures
    python -m repro.experiments --simulate --paper-scale   # full-size runs
    python -m repro.experiments --checked       # validation smoke run
"""

from __future__ import annotations

import argparse

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, paper_scale
from ..sim.instrumentation import PrintProgress
from .report import delay_model_report, simulation_report


def _validation_smoke() -> int:
    """Checked-mode smoke: probes + differential oracles on tiny runs.

    This is what ``--checked`` runs when no simulation report was
    requested: a speculative-VC run with every invariant probe attached,
    the differential-oracle suite, and a handful of generated property
    cases.  Prints one validation summary line per stage; exits nonzero
    on any violation or mismatch.
    """
    from ..sim.config import RouterKind, SimConfig
    from ..sim.engine import simulate
    from ..sim.validation.oracle import ORACLE_MEASUREMENT, run_all_oracles
    from ..sim.validation.proptest import run_property_suite

    ok = True
    config = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4, num_vcs=2,
        injection_fraction=0.2, seed=1,
    )
    result = simulate(config, ORACLE_MEASUREMENT, checked=True)
    summary = result.validation
    assert summary is not None
    checks = sum(summary["probes"].values())
    print(
        f"[checked] speculative_vc 4x4 probe run: "
        f"{'ok' if summary['ok'] else 'FAILED'} "
        f"({summary['cycles_checked']} cycles, {checks} probe checks, "
        f"{len(summary['violations'])} violations)"
    )
    ok &= summary["ok"]

    for report in run_all_oracles():
        print("[checked] " + report.describe())
        ok &= report.ok

    prop = run_property_suite(seed=1, count=4, fail_fast=False)
    print(
        f"[checked] property cases: {prop['passed']}/{prop['cases']} passed"
        + "".join(
            f"\n  {failure['case']}: {failure['error']}"
            for failure in prop["failures"]
        )
    )
    ok &= prop["ok"]
    print(f"[checked] validation {'PASSED' if ok else 'FAILED'}")
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Peh & Dally (HPCA 2001).",
    )
    parser.add_argument(
        "--simulate", action="store_true",
        help="also run the latency-throughput simulations (figures 13-18)",
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the ablation and extension studies (slow)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's full warm-up/sample sizes (hours of runtime)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size per run",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="serve repeated points from the on-disk result cache "
             "($REPRO_CACHE_DIR or ~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per finished simulation point",
    )
    parser.add_argument(
        "--checked", action="store_true",
        help="checked mode: attach the invariant-probe suite to every "
             "simulation; alone, run the validation smoke suite "
             "(probes + differential oracles) and exit 0/1",
    )
    args = parser.parse_args(argv)

    measurement = paper_scale() if args.paper_scale else MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets

    if args.checked and not (args.simulate or args.ablations):
        return _validation_smoke()

    overrides = {"workers": args.workers}
    if args.cache:
        overrides["cache"] = True
    if args.progress:
        overrides["progress"] = PrintProgress()
    if args.checked:
        overrides["checked"] = True
    experiment = Experiment.from_env(measurement, **overrides)

    print(delay_model_report())
    if args.simulate:
        print()
        print(simulation_report(measurement, experiment=experiment))
    if args.ablations:
        from .ablations import render_all

        print()
        print(render_all(measurement))
    if args.simulate or args.ablations:
        stats = experiment.stats
        if stats.points_requested:
            print(
                f"\n[runtime] {stats.points_requested} points, "
                f"{stats.points_executed} executed, "
                f"{stats.cache_hits} from cache, "
                f"{stats.wall_seconds:.1f}s"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
