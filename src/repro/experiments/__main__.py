"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # delay-model results only
    python -m repro.experiments --simulate      # + latency-throughput figures
    python -m repro.experiments --simulate --paper-scale   # full-size runs
"""

from __future__ import annotations

import argparse

from ..sim.config import MeasurementConfig, paper_scale
from .report import delay_model_report, simulation_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Peh & Dally (HPCA 2001).",
    )
    parser.add_argument(
        "--simulate", action="store_true",
        help="also run the latency-throughput simulations (figures 13-18)",
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the ablation and extension studies (slow)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's full warm-up/sample sizes (hours of runtime)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size per run",
    )
    args = parser.parse_args(argv)

    measurement = paper_scale() if args.paper_scale else MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets

    print(delay_model_report())
    if args.simulate:
        print()
        print(simulation_report(measurement))
    if args.ablations:
        from .ablations import render_all

        print()
        print(render_all(measurement))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
