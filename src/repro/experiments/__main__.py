"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # delay-model results only
    python -m repro.experiments --simulate      # + latency-throughput figures
    python -m repro.experiments --simulate --paper-scale   # full-size runs
"""

from __future__ import annotations

import argparse

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, paper_scale
from ..sim.instrumentation import PrintProgress
from .report import delay_model_report, simulation_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Peh & Dally (HPCA 2001).",
    )
    parser.add_argument(
        "--simulate", action="store_true",
        help="also run the latency-throughput simulations (figures 13-18)",
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the ablation and extension studies (slow)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's full warm-up/sample sizes (hours of runtime)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size per run",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="serve repeated points from the on-disk result cache "
             "($REPRO_CACHE_DIR or ~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per finished simulation point",
    )
    args = parser.parse_args(argv)

    measurement = paper_scale() if args.paper_scale else MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets

    overrides = {"workers": args.workers}
    if args.cache:
        overrides["cache"] = True
    if args.progress:
        overrides["progress"] = PrintProgress()
    experiment = Experiment.from_env(measurement, **overrides)

    print(delay_model_report())
    if args.simulate:
        print()
        print(simulation_report(measurement, experiment=experiment))
    if args.ablations:
        from .ablations import render_all

        print()
        print(render_all(measurement))
    if args.simulate or args.ablations:
        stats = experiment.stats
        if stats.points_requested:
            print(
                f"\n[runtime] {stats.points_requested} points, "
                f"{stats.points_executed} executed, "
                f"{stats.cache_hits} from cache, "
                f"{stats.wall_seconds:.1f}s"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
