"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments                 # delay-model results only
    python -m repro.experiments --simulate      # + latency-throughput figures
    python -m repro.experiments --simulate --paper-scale   # full-size runs
    python -m repro.experiments --checked       # validation smoke run
    python -m repro.experiments report --telemetry         # observability
    python -m repro.experiments analyze --check            # invariant lint
    python -m repro.experiments estimate --load 0.3        # surrogate query
"""

from __future__ import annotations

import argparse

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, paper_scale
from ..sim.instrumentation import PrintProgress
from .report import delay_model_report, simulation_report


def _validation_smoke() -> int:
    """Checked-mode smoke: probes + differential oracles on tiny runs.

    This is what ``--checked`` runs when no simulation report was
    requested: a speculative-VC run with every invariant probe attached,
    the differential-oracle suite, and a handful of generated property
    cases.  Prints one validation summary line per stage; exits nonzero
    on any violation or mismatch.
    """
    from ..sim.config import RouterKind, SimConfig
    from ..sim.engine import simulate
    from ..sim.validation.oracle import ORACLE_MEASUREMENT, run_all_oracles
    from ..sim.validation.proptest import run_property_suite

    ok = True
    config = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, mesh_radix=4, num_vcs=2,
        injection_fraction=0.2, seed=1,
    )
    result = simulate(config, ORACLE_MEASUREMENT, checked=True)
    summary = result.validation
    assert summary is not None
    checks = sum(summary["probes"].values())
    print(
        f"[checked] speculative_vc 4x4 probe run: "
        f"{'ok' if summary['ok'] else 'FAILED'} "
        f"({summary['cycles_checked']} cycles, {checks} probe checks, "
        f"{len(summary['violations'])} violations)"
    )
    ok &= summary["ok"]

    for report in run_all_oracles():
        print("[checked] " + report.describe())
        ok &= report.ok

    prop = run_property_suite(seed=1, count=4, fail_fast=False)
    print(
        f"[checked] property cases: {prop['passed']}/{prop['cases']} passed"
        + "".join(
            f"\n  {failure['case']}: {failure['error']}"
            for failure in prop["failures"]
        )
    )
    ok &= prop["ok"]
    print(f"[checked] validation {'PASSED' if ok else 'FAILED'}")
    return 0 if ok else 1


def _report_command(argv) -> int:
    """The ``report`` subcommand: render one report on demand.

    Without flags this reprints the delay-model report (same as the
    bare invocation); ``--telemetry`` instead runs one instrumented
    simulation and renders its telemetry summary, optionally exporting
    JSONL/CSV/Chrome-trace files with ``--export-dir``.
    """
    from pathlib import Path

    from ..sim.config import RouterKind, SimConfig
    from ..telemetry import TelemetryConfig
    from .report import telemetry_report, telemetry_snapshot_config

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments report",
        description="Render a single report without the full reproduction.",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="run one instrumented simulation and report its telemetry "
             "(speculation win rate, channel utilization, occupancy)",
    )
    parser.add_argument(
        "--router", default=None, metavar="KIND",
        choices=[kind.value for kind in RouterKind],
        help="router kind for the telemetry run (default speculative_vc)",
    )
    parser.add_argument(
        "--load", type=float, default=0.42,
        help="offered load as a fraction of capacity (default 0.42)",
    )
    parser.add_argument(
        "--seed", type=int, default=42,
        help="simulation seed (default 42)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size",
    )
    parser.add_argument(
        "--sample-period", type=int, default=None,
        help="telemetry sampling period in cycles (default 64)",
    )
    parser.add_argument(
        "--export-dir", type=Path, default=None, metavar="DIR",
        help="write telemetry.jsonl, telemetry.csv, windows.csv and "
             "trace.json (Chrome trace_event; open in Perfetto) here",
    )
    args = parser.parse_args(argv)

    if not args.telemetry:
        print(delay_model_report())
        return 0

    config = telemetry_snapshot_config(load=args.load, seed=args.seed)
    if args.router is not None:
        kind = RouterKind(args.router)
        config = SimConfig(
            router_kind=kind,
            num_vcs=config.num_vcs if kind.uses_vcs else 1,
            buffers_per_vc=config.buffers_per_vc,
            injection_fraction=args.load, seed=args.seed,
        )
    measurement = MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets
    telemetry = None
    if args.sample_period is not None:
        telemetry = TelemetryConfig(
            sample_period=args.sample_period,
            capture_trace=args.export_dir is not None,
        )
    print(telemetry_report(
        config, measurement, telemetry=telemetry, export_dir=args.export_dir,
    ))
    return 0


def main(argv=None) -> int:
    import sys

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "report":
        return _report_command(argv[1:])
    if argv and argv[0] == "analyze":
        # The static invariant linter (same driver as
        # ``python -m repro.analysis``): DET/CACHE/WRAP/SLOTS/PURE.
        from ..analysis.__main__ import main as analysis_main

        return analysis_main(argv[1:])
    if argv and argv[0] == "estimate":
        # Hybrid surrogate-first serving (docs/SURROGATE.md).
        from .estimate import estimate_command

        return estimate_command(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the tables and figures of Peh & Dally (HPCA 2001).",
    )
    parser.add_argument(
        "--simulate", action="store_true",
        help="also run the latency-throughput simulations (figures 13-18)",
    )
    parser.add_argument(
        "--ablations", action="store_true",
        help="also run the ablation and extension studies (slow)",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the paper's full warm-up/sample sizes (hours of runtime)",
    )
    parser.add_argument(
        "--sample-packets", type=int, default=None,
        help="override the measured packet sample size per run",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="simulation worker processes (default $REPRO_WORKERS or serial)",
    )
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="execution backend: serial, process[:N] (chunked "
             "work-stealing pool) or ssh[:N] (rank-style fabric sharing "
             "the cache directory); default $REPRO_BACKEND or inferred "
             "from --workers",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="POINTS",
        help="grid points per scheduler chunk (default: automatic, "
             "~4 chunks per worker)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="serve repeated points from the on-disk result cache "
             "($REPRO_CACHE_DIR or ~/.cache/repro-sim)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print one line per finished simulation point",
    )
    parser.add_argument(
        "--checked", action="store_true",
        help="checked mode: attach the invariant-probe suite to every "
             "simulation; alone, run the validation smoke suite "
             "(probes + differential oracles) and exit 0/1",
    )
    args = parser.parse_args(argv)

    measurement = paper_scale() if args.paper_scale else MeasurementConfig()
    if args.sample_packets is not None:
        measurement.sample_packets = args.sample_packets

    if args.checked and not (args.simulate or args.ablations):
        return _validation_smoke()

    overrides = {"workers": args.workers}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.chunk_size is not None:
        from ..runtime.scheduler import Plan

        overrides["plan"] = Plan(chunk_size=args.chunk_size)
    if args.cache:
        overrides["cache"] = True
    if args.progress:
        overrides["progress"] = PrintProgress()
    if args.checked:
        overrides["checked"] = True
    experiment = Experiment.from_env(measurement, **overrides)

    print(delay_model_report())
    if args.simulate:
        print()
        print(simulation_report(measurement, experiment=experiment))
    if args.ablations:
        from .ablations import render_all

        print()
        print(render_all(measurement))
    if args.simulate or args.ablations:
        stats = experiment.stats
        if stats.points_requested:
            scheduler = stats.scheduler
            print(
                f"\n[runtime] {stats.points_requested} points, "
                f"{stats.points_executed} executed, "
                f"{stats.cache_hits} from cache, "
                f"[{stats.describe_sources()}] "
                f"{stats.wall_seconds:.1f}s "
                f"[{experiment.backend.name}: "
                f"{scheduler.chunks_completed} chunks, "
                f"{scheduler.steals} steals, "
                f"{stats.mean_worker_utilization:.0%} worker utilization] "
                f"[{stats.describe_specialization()}]"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
