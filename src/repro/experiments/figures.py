"""One reproduction driver per table/figure of the paper.

Each ``figNN`` function runs the experiment behind that figure and
returns a structured result carrying both our measurements and the
paper's reported values, plus a text rendering.  The benchmark harness
(``benchmarks/bench_figNN.py``) calls these; EXPERIMENTS.md records the
paper-vs-measured outcomes.

The simulation figures accept a :class:`MeasurementConfig` so callers
choose the scale; the defaults are laptop-sized, and
:func:`repro.sim.config.paper_scale` gives the paper's full runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..delaymodel.modules import RoutingRange, speculative_allocation_delay
from ..delaymodel.pipeline import (
    PipelineDesign,
    speculative_vc_pipeline,
    virtual_channel_pipeline,
    wormhole_pipeline,
)
from ..delaymodel.table1 import Table1Row, generate_table1, render_table1
from ..delaymodel.tau import tau_to_tau4
from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..sim.credit import (
    NONSPECULATIVE_VC_TIMING,
    SINGLE_CYCLE_TIMING,
    SPECULATIVE_VC_SLOW_CREDIT_TIMING,
    SPECULATIVE_VC_TIMING,
    WORMHOLE_TIMING,
    turnaround_timeline,
)
from ..sim.metrics import SweepResult
from .sweep import DEFAULT_LOADS, find_saturation

#: Channel width used throughout the paper's pipeline figures.
PAPER_W = 32
#: Virtual-channel counts on Figure 11/12's x axis.
PAPER_V_SWEEP = (2, 4, 8, 16, 32)
#: Physical-channel counts on Figure 11/12's x axis (2D mesh / extra).
PAPER_P_SWEEP = (5, 7)


# ---------------------------------------------------------------------------
# Table 1.
# ---------------------------------------------------------------------------

def table1() -> List[Table1Row]:
    """Regenerate Table 1's model column (with the paper's values attached)."""
    return generate_table1()


def render_table1_report() -> str:
    return render_table1(table1())


# ---------------------------------------------------------------------------
# Figure 11: pipeline depths vs (p, v).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig11Bar:
    """One bar of Figure 11: a router configuration's pipeline."""

    label: str
    p: int
    v: int
    design: PipelineDesign

    @property
    def stages(self) -> int:
        return self.design.depth


@dataclass
class Fig11Result:
    nonspeculative: List[Fig11Bar]
    speculative: List[Fig11Bar]
    wormhole: Fig11Bar

    def render(self) -> str:
        lines = ["Figure 11: per-node latency (pipeline stages) at clk=20 tau4"]
        lines.append(f"  wormhole reference: {self.wormhole.stages} stages")
        lines.append("  (a) non-speculative VC router (VC allocator: Rpv)")
        for bar in self.nonspeculative:
            occupancy = ", ".join(
                f"{f:.2f}" for f in bar.design.stage_occupancies()
            )
            lines.append(
                f"    {bar.label:12s}: {bar.stages} stages  [{occupancy}]"
            )
        lines.append("  (b) speculative VC router (VC allocator: Rv)")
        for bar in self.speculative:
            occupancy = ", ".join(
                f"{f:.2f}" for f in bar.design.stage_occupancies()
            )
            lines.append(
                f"    {bar.label:12s}: {bar.stages} stages  [{occupancy}]"
            )
        return "\n".join(lines)


def fig11(
    p_values: Sequence[int] = PAPER_P_SWEEP,
    v_values: Sequence[int] = PAPER_V_SWEEP,
    w: int = PAPER_W,
) -> Fig11Result:
    """Pipelines proposed by the model for VC routers (Figure 11)."""
    nonspec = [
        Fig11Bar(
            f"{v}vcs,{p}pcs", p, v,
            virtual_channel_pipeline(p, v, w, RoutingRange.RPV),
        )
        for p in p_values
        for v in v_values
    ]
    spec = [
        Fig11Bar(
            f"{v}vcs,{p}pcs", p, v,
            speculative_vc_pipeline(p, v, w, RoutingRange.RV),
        )
        for p in p_values
        for v in v_values
    ]
    wormhole = Fig11Bar(
        "wormhole", p_values[0], 1, wormhole_pipeline(p_values[0], w)
    )
    return Fig11Result(nonspec, spec, wormhole)


# ---------------------------------------------------------------------------
# Figure 12: combined VC + speculative switch allocation delay.
# ---------------------------------------------------------------------------

@dataclass
class Fig12Result:
    #: delay in tau4, keyed by (routing range, p, v).
    delays_tau4: Dict[Tuple[str, int, int], float]
    p_values: Sequence[int]
    v_values: Sequence[int]

    def series(self, routing_range: RoutingRange) -> List[float]:
        """One plotted line: delays in the paper's x-axis order."""
        return [
            self.delays_tau4[(routing_range.value, p, v)]
            for p in self.p_values
            for v in self.v_values
        ]

    def render(self) -> str:
        lines = [
            "Figure 12: combined VC & switch allocation delay (tau4)",
            f"{'config':>12} {'R:v':>7} {'R:p':>7} {'R:pv':>7}",
        ]
        for p in self.p_values:
            for v in self.v_values:
                rv = self.delays_tau4[("Rv", p, v)]
                rp = self.delays_tau4[("Rp", p, v)]
                rpv = self.delays_tau4[("Rpv", p, v)]
                lines.append(
                    f"{f'{v}vcs,{p}pcs':>12} {rv:7.1f} {rp:7.1f} {rpv:7.1f}"
                )
        return "\n".join(lines)


def fig12(
    p_values: Sequence[int] = PAPER_P_SWEEP,
    v_values: Sequence[int] = PAPER_V_SWEEP,
) -> Fig12Result:
    """Combined allocation-stage delay vs configuration (Figure 12)."""
    delays = {
        (rng.value, p, v): tau_to_tau4(speculative_allocation_delay(p, v, rng))
        for rng in RoutingRange
        for p in p_values
        for v in v_values
    }
    return Fig12Result(delays, p_values, v_values)


# ---------------------------------------------------------------------------
# Simulation figures (13, 14, 15, 17, 18).
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CurveSpec:
    """One curve of a latency-throughput figure."""

    label: str
    config: SimConfig
    paper_zero_load: Optional[float] = None     # cycles
    paper_saturation: Optional[float] = None    # fraction of capacity


@dataclass
class SimFigureResult:
    figure: str
    curves: List[Tuple[CurveSpec, SweepResult]]

    def render(self) -> str:
        lines = [f"{self.figure}:"]
        for spec, curve in self.curves:
            lines.append(curve.describe())
            zero_load = curve.zero_load_latency()
            saturation = find_saturation(curve)
            paper_bits = []
            if spec.paper_zero_load is not None:
                paper_bits.append(f"paper zero-load {spec.paper_zero_load:.0f}")
            if spec.paper_saturation is not None:
                paper_bits.append(f"paper saturation {spec.paper_saturation:.0%}")
            paper = f" ({'; '.join(paper_bits)})" if paper_bits else ""
            lines.append(
                f"  -> zero-load {zero_load:.1f} cycles, "
                f"saturation ~{saturation:.0%}{paper}"
            )
        return "\n".join(lines)


def _run_figure(
    figure: str,
    specs: Sequence[CurveSpec],
    measurement: Optional[MeasurementConfig],
    loads: Sequence[float],
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Run every curve of a figure through one :class:`Experiment`.

    With a parallel/cached experiment attached, all the figure's
    (curve, load) points fan out as a single batch, so an entire figure
    reproduces in one parallel wave and re-runs serve from cache.
    """
    if experiment is None:
        experiment = Experiment.from_env(measurement)
    elif measurement is not None and measurement != experiment.measurement:
        experiment = Experiment(
            measurement, workers=experiment.workers, cache=experiment.cache,
            progress=experiment.progress,
            check_invariants=experiment.check_invariants,
        )
    sweeps = experiment.sweeps(
        [(spec.label, spec.config) for spec in specs], loads=loads
    )
    return SimFigureResult(figure, list(zip(specs, sweeps)))


def fig13(
    measurement: Optional[MeasurementConfig] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: int = 1,
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Figure 13: 8 buffers per input port.

    Paper: zero-load 29 (WH) / 36 (VC 2vcsX4bufs) / 30 (specVC);
    saturation ~40% / ~50% / ~55% of capacity.
    """
    specs = [
        CurveSpec(
            "WH (8 bufs)",
            SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=8, seed=seed),
            paper_zero_load=29, paper_saturation=0.40,
        ),
        CurveSpec(
            "VC (2vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.VIRTUAL_CHANNEL,
                num_vcs=2, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=36, paper_saturation=0.50,
        ),
        CurveSpec(
            "specVC (2vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=30, paper_saturation=0.55,
        ),
    ]
    return _run_figure("Figure 13 (8 buffers per input port)", specs,
                       measurement, loads, experiment)


def fig14(
    measurement: Optional[MeasurementConfig] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: int = 1,
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Figure 14: 16 buffers per input port, 2 VCs.

    Paper: zero-load 29 / 35 / 29; saturation ~50% / ~65% / ~70%
    (the speculative router's 40% gain over wormhole).
    """
    specs = [
        CurveSpec(
            "WH (16 bufs)",
            SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=16, seed=seed),
            paper_zero_load=29, paper_saturation=0.50,
        ),
        CurveSpec(
            "VC (2vcsX8bufs)",
            SimConfig(
                router_kind=RouterKind.VIRTUAL_CHANNEL,
                num_vcs=2, buffers_per_vc=8, seed=seed,
            ),
            paper_zero_load=35, paper_saturation=0.65,
        ),
        CurveSpec(
            "specVC (2vcsX8bufs)",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=8, seed=seed,
            ),
            paper_zero_load=29, paper_saturation=0.70,
        ),
    ]
    return _run_figure("Figure 14 (16 buffers per input port, 2 VCs)", specs,
                       measurement, loads, experiment)


def fig15(
    measurement: Optional[MeasurementConfig] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: int = 1,
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Figure 15: 16 buffers per input port, 4 VCs.

    Paper: with 4 VCs x 4 buffers both VC routers reach ~70% -- enough
    buffering covers the credit loop, so speculation's shorter pipeline
    no longer buys throughput.
    """
    specs = [
        CurveSpec(
            "WH (16 bufs)",
            SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=16, seed=seed),
            paper_zero_load=29, paper_saturation=0.50,
        ),
        CurveSpec(
            "VC (4vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.VIRTUAL_CHANNEL,
                num_vcs=4, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=35, paper_saturation=0.70,
        ),
        CurveSpec(
            "specVC (4vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=4, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=29, paper_saturation=0.70,
        ),
    ]
    return _run_figure("Figure 15 (16 buffers per input port, 4 VCs)", specs,
                       measurement, loads, experiment)


def fig16() -> str:
    """Figure 16: the buffer-turnaround timeline, as a text table.

    Renders the credit-loop timelines of each router model; the unit
    tests pin the resulting turnaround counts (4/5/2/7 in the paper's
    accounting).
    """
    lines = ["Figure 16: buffer turnaround timelines"]
    for name, timing in [
        ("wormhole (pipelined)", WORMHOLE_TIMING),
        ("speculative VC (pipelined)", SPECULATIVE_VC_TIMING),
        ("non-speculative VC (pipelined)", NONSPECULATIVE_VC_TIMING),
        ("single-cycle model", SINGLE_CYCLE_TIMING),
        ("speculative VC, 4-cycle credits", SPECULATIVE_VC_SLOW_CREDIT_TIMING),
    ]:
        lines.append(f"  {name}: turnaround {timing.turnaround} cycles")
        for offset, event in turnaround_timeline(timing):
            lines.append(f"    t+{offset}: {event}")
    return "\n".join(lines)


def fig17(
    measurement: Optional[MeasurementConfig] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: int = 1,
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Figure 17: pipelined model vs single-cycle model (8 buffers).

    Paper: single-cycle routers show zero-load latency 16 (vs 29/36
    pipelined) and the single-cycle VC router saturates at 65% vs 50%
    (pipelined VC) / 55% (pipelined specVC) -- the unit-latency model
    overestimates throughput by ignoring buffer turnaround.
    """
    specs = [
        CurveSpec(
            "WH (8 bufs)",
            SimConfig(router_kind=RouterKind.WORMHOLE, buffers_per_vc=8, seed=seed),
            paper_zero_load=29, paper_saturation=0.40,
        ),
        CurveSpec(
            "VC (2vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.VIRTUAL_CHANNEL,
                num_vcs=2, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=36, paper_saturation=0.50,
        ),
        CurveSpec(
            "specVC (2vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=30, paper_saturation=0.55,
        ),
        CurveSpec(
            "WH single-cycle (8 bufs)",
            SimConfig(
                router_kind=RouterKind.SINGLE_CYCLE_WORMHOLE,
                buffers_per_vc=8, seed=seed,
            ),
            paper_zero_load=16,
        ),
        CurveSpec(
            "VC single-cycle (2vcsX4bufs)",
            SimConfig(
                router_kind=RouterKind.SINGLE_CYCLE_VC,
                num_vcs=2, buffers_per_vc=4, seed=seed,
            ),
            paper_zero_load=16, paper_saturation=0.65,
        ),
    ]
    return _run_figure("Figure 17 (single-cycle vs pipelined models)", specs,
                       measurement, loads, experiment)


def fig18(
    measurement: Optional[MeasurementConfig] = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: int = 1,
    experiment: Optional[Experiment] = None,
) -> SimFigureResult:
    """Figure 18: credit propagation delay 1 vs 4 cycles (specVC 2vcsX4bufs).

    Paper: raising credit propagation from 1 to 4 cycles cuts saturation
    throughput from 55% to 45% of capacity (an 18% reduction).
    """
    specs = [
        CurveSpec(
            "specVC, 1-cycle credits",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=4, credit_propagation=1, seed=seed,
            ),
            paper_zero_load=30, paper_saturation=0.55,
        ),
        CurveSpec(
            "specVC, 4-cycle credits",
            SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC,
                num_vcs=2, buffers_per_vc=4, credit_propagation=4, seed=seed,
            ),
            paper_saturation=0.45,
        ),
    ]
    return _run_figure("Figure 18 (credit propagation delay)", specs,
                       measurement, loads, experiment)
