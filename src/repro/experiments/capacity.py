"""Network capacity analysis for the evaluation mesh.

The paper expresses injection rates as fractions of network capacity.
For a k x k mesh under uniform random traffic, capacity is
bisection-limited at ``4/k`` flits per node per cycle (0.5 at k=8);
this module derives that bound from first principles (channel loads
under dimension-ordered routing) so the figure more-general sweeps can
use other radices and patterns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..sim.routing import RoutingFunction, dimension_order_route, route_path
from ..sim.topology import LOCAL, Mesh


@dataclass(frozen=True)
class CapacityAnalysis:
    """Channel-load analysis of a mesh under a traffic matrix."""

    mesh: Mesh
    max_channel_load: float        # flits/cycle on the busiest channel
    capacity_flits_per_node: float  # 1 / max_channel_load (per unit injection)
    bottleneck: Tuple[int, int]    # (node, port) of the busiest channel


def analyze_uniform_capacity(
    mesh: Mesh, routing: RoutingFunction = dimension_order_route
) -> CapacityAnalysis:
    """Exact channel loads under uniform traffic and a routing function.

    Walks every source-destination pair's path and accumulates the load
    each channel would carry per unit injection rate (flits/node/cycle).
    Capacity is the injection rate at which the busiest channel reaches
    one flit per cycle.
    """
    loads: Dict[Tuple[int, int], float] = {}
    n = mesh.num_nodes
    pair_weight = 1.0 / (n - 1)  # uniform over destinations != source
    for source in mesh.nodes():
        for destination in mesh.nodes():
            if source == destination:
                continue
            node = source
            for port in route_path(mesh, source, destination, routing):
                if port == LOCAL:
                    break
                key = (node, port)
                loads[key] = loads.get(key, 0.0) + pair_weight
                node = mesh.neighbor(node, port)
    bottleneck, channel_load = max(loads.items(), key=lambda kv: kv[1])
    return CapacityAnalysis(
        mesh=mesh,
        max_channel_load=channel_load,
        capacity_flits_per_node=1.0 / channel_load,
        bottleneck=bottleneck,
    )


def theoretical_capacity(mesh: Mesh) -> float:
    """The closed-form bisection bound: ``4/k`` flits/node/cycle."""
    return mesh.capacity_flits_per_node_cycle()
