"""Export experiment results to CSV and JSON.

The figure drivers return structured Python objects; downstream users
plotting with their own tools want flat files.  These writers cover the
three result shapes:

* :func:`sweep_to_csv` / :func:`figure_to_csv` -- latency-throughput
  curves (Figures 13-15, 17, 18), one row per (curve, load) point;
* :func:`fig11_to_csv` -- pipeline stage maps;
* :func:`fig12_to_csv` -- the allocation-delay surface;
* :func:`results_to_json` -- any of the above, losslessly.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import List, Union

from ..sim.metrics import RunResult, SweepResult
from .figures import Fig11Result, Fig12Result, SimFigureResult

PathLike = Union[str, Path]


def _run_row(label: str, run: RunResult) -> dict:
    return {
        "curve": label,
        "offered_fraction": run.injection_fraction,
        "avg_latency_cycles": (
            "" if math.isinf(run.average_latency) else round(run.average_latency, 3)
        ),
        "accepted_fraction": round(run.accepted_fraction, 4),
        "saturated": run.saturated,
        "sample_packets": run.sample_packets,
        "cycles_simulated": run.cycles_simulated,
    }


_SWEEP_FIELDS = [
    "curve", "offered_fraction", "avg_latency_cycles", "accepted_fraction",
    "saturated", "sample_packets", "cycles_simulated",
]


def sweep_to_csv(curves: List[SweepResult], path: PathLike) -> Path:
    """Write latency-throughput curves as CSV; returns the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=_SWEEP_FIELDS)
        writer.writeheader()
        for curve in curves:
            for run in sorted(curve.points, key=lambda r: r.injection_fraction):
                writer.writerow(_run_row(curve.label, run))
    return path


def figure_to_csv(figure: SimFigureResult, path: PathLike) -> Path:
    """Write one simulation figure's curves as CSV."""
    return sweep_to_csv([curve for _, curve in figure.curves], path)


def fig11_to_csv(result: Fig11Result, path: PathLike) -> Path:
    """Write the Figure 11 pipeline maps as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["router", "p", "v", "stages", "stage_occupancies"]
        )
        writer.writerow(
            ["wormhole", result.wormhole.p, result.wormhole.v,
             result.wormhole.stages,
             "|".join(f"{f:.3f}" for f in result.wormhole.design.stage_occupancies())]
        )
        for kind, bars in (
            ("nonspeculative_vc", result.nonspeculative),
            ("speculative_vc", result.speculative),
        ):
            for bar in bars:
                writer.writerow(
                    [kind, bar.p, bar.v, bar.stages,
                     "|".join(f"{f:.3f}" for f in bar.design.stage_occupancies())]
                )
    return path


def fig12_to_csv(result: Fig12Result, path: PathLike) -> Path:
    """Write the Figure 12 delay surface as CSV."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["routing_range", "p", "v", "delay_tau4"])
        for (rng, p, v), delay in sorted(result.delays_tau4.items()):
            writer.writerow([rng, p, v, round(delay, 3)])
    return path


def results_to_json(result, path: PathLike) -> Path:
    """Serialise any figure/sweep result to JSON."""
    path = Path(path)
    path.write_text(json.dumps(_jsonable(result), indent=2) + "\n")
    return path


def _jsonable(value):
    """Recursively convert result objects to JSON-safe structures."""
    if isinstance(value, SimFigureResult):
        return {
            "figure": value.figure,
            "curves": [
                {
                    "label": spec.label,
                    "paper_zero_load": spec.paper_zero_load,
                    "paper_saturation": spec.paper_saturation,
                    "points": [_run_row(spec.label, r) for r in curve.points],
                }
                for spec, curve in value.curves
            ],
        }
    if isinstance(value, SweepResult):
        return {
            "label": value.label,
            "points": [_run_row(value.label, r) for r in value.points],
        }
    if isinstance(value, Fig12Result):
        return {
            f"{rng},p={p},v={v}": round(delay, 3)
            for (rng, p, v), delay in sorted(value.delays_tau4.items())
        }
    if isinstance(value, Fig11Result):
        return {
            "wormhole_stages": value.wormhole.stages,
            "nonspeculative": {
                bar.label: bar.stages for bar in value.nonspeculative
            },
            "speculative": {bar.label: bar.stages for bar in value.speculative},
        }
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")
