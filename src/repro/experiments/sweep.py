"""Injection-rate sweeps producing latency-throughput curves.

Each of the paper's Figures 13-15, 17 and 18 is a set of
latency-vs-offered-load curves over the 8x8 mesh.  :func:`sweep` runs
one curve; :func:`find_saturation` reads the saturation point off a
curve the way the paper quotes them (the load where average latency
diverges).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.engine import simulate
from ..sim.metrics import AggregateResult, SweepResult

#: Offered loads used when a sweep doesn't specify its own grid.
DEFAULT_LOADS: Sequence[float] = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75)

#: A run is called saturated when its average latency exceeds this
#: multiple of the curve's zero-load latency (the knee of the curve).
SATURATION_LATENCY_MULTIPLE = 3.0


def sweep(
    base_config: SimConfig,
    label: str,
    loads: Iterable[float] = DEFAULT_LOADS,
    measurement: Optional[MeasurementConfig] = None,
    stop_after_saturation: bool = True,
) -> SweepResult:
    """Run one latency-throughput curve.

    ``stop_after_saturation`` skips the remaining (higher) loads once a
    point saturates -- they are strictly more expensive to simulate and
    add no information beyond "the curve is vertical here".
    """
    result = SweepResult(label=label)
    for load in sorted(loads):
        config = replace(base_config, injection_fraction=load)
        point = simulate(config, measurement)
        result.points.append(point)
        if stop_after_saturation and point.saturated:
            break
    return result


def run_with_seeds(
    base_config: SimConfig,
    load: float,
    seeds: Sequence[int] = (1, 2, 3),
    measurement: Optional[MeasurementConfig] = None,
) -> AggregateResult:
    """Run one configuration/load across several seeds and aggregate.

    Gives mean latency with a 95% confidence interval -- use it when a
    comparison's margin is within a few cycles and a single-seed result
    would be ambiguous.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    runs = [
        simulate(
            replace(base_config, injection_fraction=load, seed=seed),
            measurement,
        )
        for seed in seeds
    ]
    return AggregateResult(injection_fraction=load, runs=runs)


def find_saturation(
    curve: SweepResult, latency_multiple: float = SATURATION_LATENCY_MULTIPLE
) -> float:
    """Saturation load: the highest load still on the flat part of the curve."""
    zero_load = curve.zero_load_latency()
    if zero_load == float("inf"):
        return 0.0
    return curve.saturation_fraction(latency_multiple * zero_load)


def compare_curves(curves: List[SweepResult]) -> str:
    """Render several curves side by side, with saturation estimates."""
    lines = []
    for curve in curves:
        lines.append(curve.describe())
        lines.append(
            f"  -> zero-load latency {curve.zero_load_latency():.1f} cycles, "
            f"saturation ~{find_saturation(curve):.0%} of capacity"
        )
    return "\n".join(lines)
