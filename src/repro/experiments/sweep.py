"""Injection-rate sweeps producing latency-throughput curves.

Each of the paper's Figures 13-15, 17 and 18 is a set of
latency-vs-offered-load curves over the 8x8 mesh.  These module-level
functions are **thin deprecated shims** over the unified
:class:`repro.runtime.Experiment` façade -- :func:`sweep` is
``Experiment.sweep`` and :func:`run_with_seeds` is
``Experiment.aggregate``; new code should construct an ``Experiment``
directly (it adds parallel workers and result caching).
:func:`find_saturation` reads the saturation point off a curve the way
the paper quotes them (the load where average latency diverges).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from ..runtime.experiment import DEFAULT_LOADS, Experiment
from ..sim.config import MeasurementConfig, SimConfig
from ..sim.metrics import AggregateResult, SweepResult

__all__ = [
    "DEFAULT_LOADS",
    "SATURATION_LATENCY_MULTIPLE",
    "compare_curves",
    "find_saturation",
    "run_with_seeds",
    "sweep",
]

#: A run is called saturated when its average latency exceeds this
#: multiple of the curve's zero-load latency (the knee of the curve).
SATURATION_LATENCY_MULTIPLE = 3.0


def sweep(
    base_config: SimConfig,
    label: str,
    loads: Iterable[float] = DEFAULT_LOADS,
    measurement: Optional[MeasurementConfig] = None,
    stop_after_saturation: bool = True,
) -> SweepResult:
    """Run one latency-throughput curve.

    .. deprecated:: use ``Experiment(measurement).sweep(config,
       label=...)``, which adds parallel execution and result caching.

    ``stop_after_saturation`` skips the remaining (higher) loads once a
    point saturates -- they are strictly more expensive to simulate and
    add no information beyond "the curve is vertical here".
    """
    return Experiment(measurement).sweep(
        base_config, label=label, loads=loads,
        stop_after_saturation=stop_after_saturation,
    )


def run_with_seeds(
    base_config: SimConfig,
    load: float,
    seeds: Sequence[int] = (1, 2, 3),
    measurement: Optional[MeasurementConfig] = None,
) -> AggregateResult:
    """Run one configuration/load across several seeds and aggregate.

    .. deprecated:: use ``Experiment(measurement).aggregate(config,
       load=..., seeds=...)``.

    Gives mean latency with a 95% confidence interval -- use it when a
    comparison's margin is within a few cycles and a single-seed result
    would be ambiguous.
    """
    return Experiment(measurement).aggregate(
        base_config, load=load, seeds=seeds
    )


def find_saturation(
    curve: SweepResult,
    latency_multiple: float = SATURATION_LATENCY_MULTIPLE,
    *,
    config: Optional[SimConfig] = None,
    calibration=None,
) -> float:
    """Saturation load: the highest load still on the flat part of the curve.

    Robust to degenerate curves: an empty sweep, or one whose *first*
    point already saturated (no finite zero-load latency exists to
    anchor the knee), reports a saturation load of 0.0 instead of
    raising.

    Surrogate-seeded mode (off unless ``config`` is passed): when the
    measured curve is degenerate, fall back to the analytical
    surrogate's predicted saturation for ``config`` (with
    ``calibration`` coefficients when given) instead of reporting 0.0.
    This is what lets ``sweep``/``capacity`` callers pre-prune
    deeply-saturated load grids before measuring anything -- the
    default path (no ``config``) is bit-identical to before.
    """
    measured: Optional[float] = None
    if curve.points:
        zero_load = curve.zero_load_latency()
        if math.isfinite(zero_load):
            measured = curve.saturation_fraction(
                latency_multiple * zero_load
            )
    if measured is not None:
        return measured
    if config is not None:
        from ..surrogate import DEFAULT_COEFFICIENTS, predicted_saturation

        coefficients = (
            calibration.for_config(config) if calibration is not None
            else DEFAULT_COEFFICIENTS
        )
        return predicted_saturation(config, coefficients, latency_multiple)
    return 0.0


def compare_curves(curves: List[SweepResult]) -> str:
    """Render several curves side by side, with saturation estimates."""
    lines = []
    for curve in curves:
        lines.append(curve.describe())
        lines.append(
            f"  -> zero-load latency {curve.zero_load_latency():.1f} cycles, "
            f"saturation ~{find_saturation(curve):.0%} of capacity"
        )
    return "\n".join(lines)
