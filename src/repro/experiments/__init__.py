"""Per-table/figure reproduction drivers (see DESIGN.md's experiment index).

* :func:`table1 <repro.experiments.figures.table1>` -- the delay-equation table.
* :func:`fig11 <repro.experiments.figures.fig11>` -- pipeline depths vs (p, v).
* :func:`fig12 <repro.experiments.figures.fig12>` -- combined allocation delay.
* :func:`fig13`-:func:`fig15`, :func:`fig17`, :func:`fig18` -- simulated
  latency-throughput curves.
* :func:`fig16 <repro.experiments.figures.fig16>` -- buffer-turnaround timeline.
"""

from .capacity import CapacityAnalysis, analyze_uniform_capacity, theoretical_capacity
from .figures import (
    CurveSpec,
    Fig11Result,
    Fig12Result,
    SimFigureResult,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    render_table1_report,
    table1,
)
from .sweep import (
    DEFAULT_LOADS,
    run_with_seeds,
    SATURATION_LATENCY_MULTIPLE,
    compare_curves,
    find_saturation,
    sweep,
)
from .report import delay_model_report, simulation_report
from .ablations import (
    AblationResult,
    allocator_ablation,
    arbiter_ablation,
    buffer_depth_sweep,
    burstiness_study,
    flow_control_trio,
    many_vcs_study,
    o1turn_study,
    pipeline_depth_study,
    routing_policy_study,
    speculation_priority_ablation,
    topology_study,
    vc_partition_sweep,
    traffic_pattern_study,
)
from .export import (
    fig11_to_csv,
    fig12_to_csv,
    figure_to_csv,
    results_to_json,
    sweep_to_csv,
)
from .analysis import (
    ROUTER_DEPTHS,
    ZeroLoadPrediction,
    paper_zero_load_predictions,
    predicted_zero_load_latency,
    sustainable_vc_rate,
    zero_load_latency_for_path,
)

__all__ = [
    "AblationResult",
    "CapacityAnalysis",
    "CurveSpec",
    "ROUTER_DEPTHS",
    "ZeroLoadPrediction",
    "allocator_ablation",
    "arbiter_ablation",
    "buffer_depth_sweep",
    "burstiness_study",
    "flow_control_trio",
    "many_vcs_study",
    "o1turn_study",
    "pipeline_depth_study",
    "routing_policy_study",
    "speculation_priority_ablation",
    "vc_partition_sweep",
    "fig11_to_csv",
    "fig12_to_csv",
    "figure_to_csv",
    "results_to_json",
    "sweep_to_csv",
    "paper_zero_load_predictions",
    "topology_study",
    "predicted_zero_load_latency",
    "sustainable_vc_rate",
    "traffic_pattern_study",
    "zero_load_latency_for_path",
    "DEFAULT_LOADS",
    "Fig11Result",
    "Fig12Result",
    "SATURATION_LATENCY_MULTIPLE",
    "SimFigureResult",
    "analyze_uniform_capacity",
    "compare_curves",
    "delay_model_report",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "find_saturation",
    "render_table1_report",
    "simulation_report",
    "run_with_seeds",
    "sweep",
    "table1",
    "theoretical_capacity",
]
