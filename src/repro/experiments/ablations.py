"""Ablation studies for the design choices DESIGN.md calls out.

Four knobs the paper fixes by argument rather than measurement, each
made measurable here:

* **Allocator efficiency** (Section 3.2): separable two-stage allocation
  vs an exact maximum matching -- how much saturation throughput does
  the simple circuit really sacrifice?
* **Arbiter policy**: the matrix (least-recently-served) arbiter vs
  round-robin.
* **Buffer depth vs the credit loop** (Figures 14/15): sweep buffers per
  VC across the credit-loop boundary and watch throughput saturate.
* **Traffic pattern** (footnote 13): the paper argues flow-control
  comparisons are "relatively invariant to traffic patterns"; we rerun
  the wormhole-vs-speculative comparison under transpose and
  bit-complement traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..runtime.experiment import Experiment
from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..sim.metrics import RunResult


@dataclass
class AblationResult:
    """Results of one ablation: variant label -> per-load results."""

    name: str
    runs: Dict[str, List[RunResult]]

    def render(self) -> str:
        lines = [f"Ablation: {self.name}"]
        for label, results in self.runs.items():
            lines.append(f"  {label}:")
            for result in results:
                lines.append("    " + result.describe())
        return "\n".join(lines)


def _run_variants(
    name: str,
    variants: Dict[str, SimConfig],
    loads: Sequence[float],
    measurement: Optional[MeasurementConfig],
    experiment: Optional[Experiment] = None,
) -> AblationResult:
    """Run every (variant, load) point as one Experiment batch.

    Honors ``$REPRO_WORKERS`` / ``$REPRO_CACHE`` when no experiment is
    passed, so the whole ablation fans out in parallel for free.
    """
    if experiment is None:
        experiment = Experiment.from_env(measurement)
    flat = [
        replace(config, injection_fraction=load)
        for config in variants.values()
        for load in loads
    ]
    results = experiment.map(flat)
    runs = {}
    for index, label in enumerate(variants):
        start = index * len(loads)
        runs[label] = results[start:start + len(loads)]
    return AblationResult(name, runs)


def allocator_ablation(
    loads: Sequence[float] = (0.45, 0.55),
    measurement: Optional[MeasurementConfig] = None,
    num_vcs: int = 2,
    buffers_per_vc: int = 4,
    seed: int = 1,
) -> AblationResult:
    """Separable vs maximum-matching allocation in the spec-VC router."""
    base = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=num_vcs,
        buffers_per_vc=buffers_per_vc, seed=seed,
    )
    return _run_variants(
        "separable vs maximum-matching allocation",
        {
            "separable (paper)": replace(base, allocator_kind="separable"),
            "maximum matching": replace(base, allocator_kind="maximum"),
        },
        loads, measurement,
    )


def arbiter_ablation(
    loads: Sequence[float] = (0.45, 0.55),
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Matrix (LRU) vs round-robin arbiters in the spec-VC router."""
    base = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        seed=seed,
    )
    return _run_variants(
        "matrix vs round-robin arbiters",
        {
            "matrix (paper)": replace(base, arbiter_kind="matrix"),
            "round-robin": replace(base, arbiter_kind="round_robin"),
        },
        loads, measurement,
    )


def buffer_depth_sweep(
    buffers: Sequence[int] = (2, 3, 4, 5, 6, 8),
    load: float = 0.55,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Latency vs buffers/VC across the credit-loop coverage boundary.

    The speculative router's credit loop is 5 cycles (DESIGN.md section
    4), so latency at a demanding load should improve sharply up to ~5
    buffers per VC and flatten beyond -- the Figure 14/15 mechanism
    isolated.
    """
    variants = {
        f"{b} buffers/VC": SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=b, seed=seed,
        )
        for b in buffers
    }
    return _run_variants(
        "buffers per VC vs the 5-cycle credit loop",
        variants, (load,), measurement,
    )


def traffic_pattern_study(
    patterns: Sequence[str] = ("uniform", "transpose", "bit_complement"),
    load: float = 0.35,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> Dict[str, AblationResult]:
    """Wormhole vs speculative VC under several traffic patterns.

    Tests the paper's footnote-13 premise: the *relative* ranking of
    flow-control methods should hold across patterns (unlike routing
    strategies, which are pattern-sensitive).
    """
    results = {}
    for pattern in patterns:
        variants = {
            "wormhole (8 bufs)": SimConfig(
                router_kind=RouterKind.WORMHOLE, buffers_per_vc=8,
                traffic_pattern=pattern, seed=seed,
            ),
            "specVC (2vcsX4bufs)": SimConfig(
                router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
                buffers_per_vc=4, traffic_pattern=pattern, seed=seed,
            ),
        }
        results[pattern] = _run_variants(
            f"flow control under {pattern} traffic",
            variants, (load,), measurement,
        )
    return results


def topology_study(
    loads: Sequence[float] = (0.05, 0.25),
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Mesh vs torus ("other topologies", the paper's conclusion).

    The torus needs dateline VC classes for deadlock freedom, which
    halves the VC choice per hop, but its wrap links cut the average
    path from 5.33 to 4.06 hops at k=8 -- a ~5-cycle zero-load win for
    the 3-stage speculative router.  Loads are fractions of each
    topology's own capacity (0.5 vs 1.0 flits/node/cycle).
    """
    base = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        seed=seed,
    )
    return _run_variants(
        "mesh vs torus (speculative VC router)",
        {
            "8x8 mesh (paper)": replace(base, topology="mesh"),
            "8x8 torus (dateline VCs)": replace(base, topology="torus"),
        },
        loads, measurement,
    )


def o1turn_study(
    load: float = 0.40,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 2,
) -> AblationResult:
    """Routing policies under transpose traffic (the paper's "other
    routing policies" direction).

    Three policies on the speculative VC router: the paper's XY
    dimension order; O1TURN (per-packet XY/YX, VC-class separated); and
    minimal adaptive routing with a Duato escape VC and footnote-5
    re-iteration.  Under the adversarial transpose pattern the oblivious
    XY order concentrates load, o1turn halves it, and adaptivity routes
    around it.
    """
    base = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        traffic_pattern="transpose", seed=seed,
    )
    return _run_variants(
        "routing policies under transpose traffic",
        {
            "xy (paper)": replace(base, routing_function="xy"),
            "o1turn": replace(base, routing_function="o1turn"),
            "adaptive (escape VC)": replace(base, routing_function="adaptive"),
        },
        (load,), measurement,
    )


#: Alias reflecting the broadened scope of :func:`o1turn_study`.
routing_policy_study = o1turn_study


def speculation_priority_ablation(
    loads: Sequence[float] = (0.45, 0.55),
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Conservative vs equal-priority speculation (Section 3.1's claim).

    The paper asserts speculation has "no adverse impact on throughput"
    *because* non-speculative requests win the switch.  Dropping that
    priority lets failed speculations displace certain flits; this
    ablation measures the cost of doing so.
    """
    base = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2, buffers_per_vc=4,
        seed=seed,
    )
    return _run_variants(
        "conservative vs equal-priority speculation",
        {
            "conservative (paper)": replace(
                base, speculation_priority="conservative"
            ),
            "equal priority": replace(base, speculation_priority="equal"),
        },
        loads, measurement,
    )


def vc_partition_sweep(
    partitions: Sequence[tuple] = ((2, 8), (4, 4), (8, 2)),
    load: float = 0.60,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """How to split a fixed 16-flit buffer budget across VCs.

    Figures 14/15 compare 2x8 and 4x4; this sweep adds 8x2 to expose the
    full trade-off -- more VCs decouple more packets, but below the
    credit loop (~4-5 flits) each VC can no longer stream at full rate.
    """
    variants = {
        f"{v}vcs x {b}bufs": SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=v,
            buffers_per_vc=b, seed=seed,
        )
        for v, b in partitions
    }
    return _run_variants(
        "partitioning 16 buffers across virtual channels",
        variants, (load,), measurement,
    )


def flow_control_trio(
    loads: Sequence[float] = (0.35, 0.45),
    buffers: int = 8,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 3,
) -> AblationResult:
    """Wormhole vs virtual cut-through vs speculative VC.

    Adds the Related Work's third flow-control method to the paper's
    comparison: with buffers near the packet size, VCT's whole-packet
    admission costs it against plain wormhole, while the speculative VC
    router beats both -- reinforcing the paper's case for virtual
    channels over deeper single queues.
    """
    variants = {
        "wormhole": SimConfig(
            router_kind=RouterKind.WORMHOLE, buffers_per_vc=buffers,
            seed=seed,
        ),
        "virtual cut-through": SimConfig(
            router_kind=RouterKind.VIRTUAL_CUT_THROUGH,
            buffers_per_vc=buffers, seed=seed,
        ),
        "speculative VC": SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=buffers // 2, seed=seed,
        ),
    }
    return _run_variants(
        "wormhole vs virtual cut-through vs speculative VC",
        variants, loads, measurement,
    )


def burstiness_study(
    load: float = 0.30,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 6,
) -> AblationResult:
    """Constant-rate vs bursty sources at equal average load.

    The paper uses constant-rate sources; bursty arrivals at the same
    mean stress the buffers and source queues, shifting the whole
    latency curve up -- a robustness check on the flow-control ranking.
    """
    variants = {}
    for kind_label, kind, vcs, bufs in (
        ("wormhole", RouterKind.WORMHOLE, 1, 8),
        ("specVC", RouterKind.SPECULATIVE_VC, 2, 4),
    ):
        for process in ("constant", "bursty"):
            variants[f"{kind_label}, {process}"] = SimConfig(
                router_kind=kind, num_vcs=vcs, buffers_per_vc=bufs,
                injection_process=process, seed=seed,
            )
    return _run_variants(
        "constant vs bursty injection", variants, (load,), measurement
    )


def pipeline_depth_study(
    extras: Sequence[int] = (0, 1, 2),
    loads: Sequence[float] = (0.05, 0.45),
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Cost of extra allocation-pipeline stages, isolated.

    The delay model prescribes extra stages when allocators straddle
    cycle boundaries (Figure 11's 5-stage router at v=16); this study
    deepens the same v=2 speculative router artificially, showing the
    zero-load cost (+1 cycle per hop per stage) and the load behaviour
    -- the quantity the paper's whole pipeline-vs-clock argument trades
    against.
    """
    variants = {
        f"+{extra} allocation stage(s)": SimConfig(
            router_kind=RouterKind.SPECULATIVE_VC, num_vcs=2,
            buffers_per_vc=4, va_extra_cycles=extra, seed=seed,
        )
        for extra in extras
    }
    return _run_variants(
        "extra allocation-pipeline stages (speculative VC router)",
        variants, loads, measurement,
    )


def many_vcs_study(
    load: float = 0.60,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> AblationResult:
    """Are 16 VCs worth their fifth pipeline stage? (Figure 11 -> Section 5.)

    The model says a 16-VC non-speculative router needs 5 stages; the
    paper never simulates one.  This study does, against the paper's
    4-stage 2-VC router at matched 16-flit total buffering: the extra
    stage costs ~5 zero-load cycles while the VC-count throughput gain
    has already saturated (Figure 15's lesson) -- vindicating the
    paper's focus on small VC counts.
    """
    variants = {
        "2 VCs x 8 bufs (4-stage)": SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=2,
            buffers_per_vc=8, seed=seed,
        ),
        "16 VCs x 1 buf (5-stage)": SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=16,
            buffers_per_vc=1, va_extra_cycles=1, seed=seed,
        ),
        "16 VCs x 4 bufs (5-stage)": SimConfig(
            router_kind=RouterKind.VIRTUAL_CHANNEL, num_vcs=16,
            buffers_per_vc=4, va_extra_cycles=1, seed=seed,
        ),
    }
    return _run_variants(
        "many VCs vs the extra pipeline stage they cost",
        variants, (0.05, load), measurement,
    )


def render_all(
    measurement: Optional[MeasurementConfig] = None,
) -> str:
    """Run every ablation at default scale and render a combined report.

    Each study batches its points through the experiment runtime, so
    ``REPRO_WORKERS=4 python -m repro.experiments --ablations`` runs
    every batch in parallel.
    """
    sections = [
        allocator_ablation(measurement=measurement).render(),
        arbiter_ablation(measurement=measurement).render(),
        buffer_depth_sweep(measurement=measurement).render(),
        topology_study(measurement=measurement).render(),
        o1turn_study(measurement=measurement).render(),
        speculation_priority_ablation(measurement=measurement).render(),
        vc_partition_sweep(measurement=measurement).render(),
        flow_control_trio(measurement=measurement).render(),
        burstiness_study(measurement=measurement).render(),
    ]
    for pattern, result in traffic_pattern_study(measurement=measurement).items():
        sections.append(result.render())
    return "\n\n".join(sections)
