"""AST-based invariant linter for the reproduction's conventions.

The headline claims of this repository -- bit-identical fast-vs-reference
steppers, telemetry-on-vs-off oracles, a content-addressed result cache
-- rest on conventions the test suite only *samples* dynamically:

* randomness flows exclusively through seeded :class:`random.Random`
  instances (never the module-level RNG, never the wall clock);
* hot-path iteration order is stable (no iteration over ``set`` values
  where order can leak into simulated results);
* every ``SimConfig`` / ``MeasurementConfig`` / ``TelemetryConfig``
  field participates in the result cache's content key;
* the string-named attributes that validation probes and telemetry
  collectors wrap keep matching real methods on the sim classes;
* ``__slots__`` declarations cover every assigned attribute, and
  slotted or pool-pickled classes are never patched per instance;
* :mod:`repro.delaymodel` stays pure (no global writes, no module-state
  mutation, no I/O).

Since PR 9 the conventions are also *whole-program*: the hybrid
estimator shares state with a daemon drain thread (lock discipline,
checked by the CONC family) and the specialized step closures are only
fast while they stay allocation-free per cycle (hot-path discipline,
checked by the HOT family over everything reachable from
``Network.step``).

This package turns those conventions into machine-checked invariants: a
dependency-free static-analysis framework (:mod:`repro.analysis.core`),
a cross-file project index with a conservative call graph
(:mod:`repro.analysis.index`), seven project-specific checker families
(:mod:`repro.analysis.checkers`), an incremental parallel driver with a
content-addressed finding cache (:mod:`repro.analysis.driver` /
:mod:`repro.analysis.cache`), and a CLI::

    python -m repro.analysis --check src tests benchmarks

Findings can be suppressed inline with ``# repro: allow[RULE-ID] reason``
or grandfathered in a committed JSON baseline (``analysis-baseline.json``).
See ``docs/ANALYSIS.md`` for the rule catalogue.
"""

from __future__ import annotations

from .baseline import Baseline
from .cache import AnalysisCache
from .checkers import default_checkers
from .core import Checker, Finding, Rule, SourceFile
from .driver import AnalysisResult, AnalysisStats, analyze
from .index import ClassInfo, ProjectIndex

__all__ = [
    "AnalysisCache",
    "AnalysisResult",
    "AnalysisStats",
    "Baseline",
    "Checker",
    "ClassInfo",
    "Finding",
    "ProjectIndex",
    "Rule",
    "SourceFile",
    "analyze",
    "default_checkers",
]
