"""Command-line entry point for the invariant linter.

Usage::

    python -m repro.analysis                          # lint src tests benchmarks
    python -m repro.analysis --check src tests        # CI gate (quiet)
    python -m repro.analysis --json src               # machine-readable
    python -m repro.analysis --baseline b.json src    # explicit baseline
    python -m repro.analysis --write-baseline src     # grandfather findings
    python -m repro.analysis --list-rules             # rule catalogue
    python -m repro.analysis --no-cache src           # force a cold run
    python -m repro.analysis --stats --check src      # timings to stderr
    python -m repro.analysis --workers 4 src          # parallel cold pass

Exit status is 0 when no *new* (non-baselined, non-suppressed) findings
remain, 1 otherwise, 2 on usage errors.  The default baseline is
``analysis-baseline.json`` in the current directory when it exists; the
incremental finding cache lives in ``./.analysis-cache`` (override with
``$REPRO_ANALYSIS_CACHE_DIR``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .cache import AnalysisCache
from .driver import analyze, iter_rules
from .reporters import render_json, render_stats, render_text

DEFAULT_BASELINE = "analysis-baseline.json"
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based invariant linter: determinism, cache-key "
                    "completeness, probe-point drift, __slots__ hygiene, "
                    "delay-model purity, lock discipline, hot-path "
                    "discipline.",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tests benchmarks, "
             "whichever exist)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: print only failures and the summary line",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the full report as JSON",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="PATH",
        help=f"baseline of grandfathered findings "
             f"(default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also list baselined findings in the text report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="analyze every module cold, ignoring the incremental cache "
             "($REPRO_ANALYSIS_CACHE_DIR, default ./.analysis-cache)",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-checker timings and cache behaviour to stderr",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="analysis worker threads for the cold per-file pass "
             "(default: up to 8, capped by CPU count)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id:10s} {rule.severity:8s} {rule.summary}")
        return 0

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        print("repro.analysis: no paths given and none of "
              f"{', '.join(DEFAULT_PATHS)} exist", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = Path(DEFAULT_BASELINE)

    baseline = None
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    cache = None if args.no_cache else AnalysisCache()
    try:
        result = analyze(
            paths, baseline=baseline, cache=cache, workers=args.workers,
        )
    except FileNotFoundError as exc:
        print(f"repro.analysis: {exc}", file=sys.stderr)
        return 2

    if args.stats:
        print(render_stats(result), file=sys.stderr)

    if args.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        merged = Baseline.from_findings(result.all_findings)
        merged.save(target)
        print(
            f"repro.analysis: wrote {len(merged)} finding(s) to {target}"
        )
        return 0

    if args.as_json:
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
