"""Framework primitives: rules, findings, parsed sources, checker base.

Everything here is pure stdlib (``ast`` + ``re``): the analyzer must be
importable and fast in any environment the simulator runs in, including
the dependency-free CI container.

Suppressions
------------
A finding is suppressed by an inline comment on the finding's line or on
a comment-only line directly above it::

    t0 = time.perf_counter()  # repro: allow[DET002] wall-clock stats only

The bracketed id may be a full rule id (``DET002``) or a rule-family
prefix (``DET``).  A reason is required -- a bare ``allow[...]`` is
itself reported as a malformed suppression (rule ``SUP001``) so silent
blanket waivers cannot accumulate, and a suppression that no longer
matches any finding is reported as stale (rule ``SUP002``).

The hot-path checker has a dedicated escape spelled
``# repro: hot-ok[reason]``: the bracket content *is* the reason, and
the marker suppresses every HOT rule on that line.  It parses into the
same :class:`Suppression` machinery (``rule_id="HOT"``), so staleness
and missing-reason detection apply to it identically.

Scopes
------
Checkers decide where a rule applies by *domain* (``sim``, ``delaymodel``,
``surrogate``, ``runtime``, ``analysis``, ``hot``, ``wrap-site``),
normally derived from the file's repository path.  A fixture outside the
real tree can opt into a domain explicitly with a
``# repro: scope[sim, hot]`` comment, which is how the checker test
fixtures exercise path-scoped rules from ``tests/analysis/``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: Basenames whose modules are order-sensitive hot paths: routers,
#: allocators, arbiters, and the stepper -- anywhere unordered iteration
#: can change which request wins a cycle and leak into results.
HOT_BASENAMES = (
    "allocators.py",
    "arbiters.py",
    "matching.py",
    "network.py",
    "engine.py",
    "channel.py",
    "credit.py",
    "buffers.py",
)

#: Basenames of the modules that wrap string-named attributes on sim
#: objects (probe/collector monkeypatch sites).
WRAP_SITE_BASENAMES = ("probes.py", "collectors.py")

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_-]+)\]\s*(\S?)")
_HOT_OK_RE = re.compile(r"#\s*repro:\s*hot-ok\[([^\]]*)\]")
_SCOPE_RE = re.compile(r"#\s*repro:\s*scope\[([A-Za-z0-9_,\s-]+)\]")
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable id, one-line summary, default severity."""

    id: str
    summary: str
    severity: str = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a location.

    ``path`` is repository-relative (posix separators) so findings --
    and the baseline keys derived from them -- are stable across
    machines and working directories.
    """

    rule: str
    severity: str
    path: str
    line: int
    message: str
    checker: str = ""

    @property
    def key(self) -> str:
        """Line-number-free identity used for baseline matching.

        Unrelated edits shift line numbers constantly; keying on
        (path, rule, message) keeps a grandfathered finding matched to
        its baseline entry until the finding itself changes.
        """
        return f"{self.path}::{self.rule}::{self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "checker": self.checker,
        }

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"{self.severity}: {self.message}"
        )


@dataclass(frozen=True)
class Suppression:
    """One parsed suppression comment.

    ``kind`` distinguishes the general ``allow[ID] reason`` marker from
    the hot-path ``hot-ok[reason]`` escape (which always has
    ``rule_id="HOT"``); it only affects how driver messages about the
    suppression are phrased.
    """

    rule_id: str
    line: int
    has_reason: bool
    kind: str = "allow"

    @property
    def spelling(self) -> str:
        """How the marker is written in source (for driver messages)."""
        if self.kind == "hot-ok":
            return "hot-ok[...]"
        return f"allow[{self.rule_id}]"

    def matches(self, rule: str) -> bool:
        return rule == self.rule_id or rule.startswith(self.rule_id)


class SourceFile:
    """One parsed Python source: text, AST, suppressions, domains."""

    def __init__(self, path: Path, root: Optional[Path] = None) -> None:
        self.path = Path(path)
        base = root if root is not None else Path.cwd()
        try:
            rel = self.path.resolve().relative_to(Path(base).resolve())
        except ValueError:
            rel = self.path
        self.relpath = rel.as_posix()
        self.text = self.path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: ast.Module = ast.parse(self.text, filename=str(path))
        except SyntaxError as exc:
            self.syntax_error = exc
            self.tree = ast.Module(body=[], type_ignores=[])
        comments = _comments(self.text, self.lines)
        self.suppressions: List[Suppression] = _parse_suppressions(comments)
        self._by_line: Dict[int, List[Suppression]] = {}
        for sup in self.suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)
        self.domains: FrozenSet[str] = frozenset(
            _derive_domains(self.relpath) | _explicit_scopes(comments)
        )

    def in_domain(self, *domains: str) -> bool:
        return any(d in self.domains for d in domains)

    def suppressed(self, rule: str, line: int) -> bool:
        """True if ``rule`` is allowed on ``line`` (or the comment line
        directly above it)."""
        return bool(self.suppressors(rule, line))

    def suppressors(self, rule: str, line: int) -> List[Suppression]:
        """Every suppression that allows ``rule`` on ``line``.

        The driver marks each returned suppression as load-bearing;
        ones that never match any finding are reported stale (SUP002).
        """
        found: List[Suppression] = []
        for candidate in (line, line - 1):
            for sup in self._by_line.get(candidate, ()):
                if not sup.has_reason:
                    continue
                if candidate == line - 1 and not _comment_only(
                    self.lines, candidate
                ):
                    continue
                if sup.matches(rule):
                    found.append(sup)
        return found

    def segment(self, node: ast.AST) -> str:
        """Best-effort source text for ``node`` (for messages)."""
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"


def _comments(text: str, lines: List[str]) -> List[Tuple[int, str]]:
    """``(lineno, comment_text)`` for every real comment token.

    Tokenizing (rather than regexing raw lines) sees through string
    literals, so a marker-*shaped* string -- e.g. a bad-code snippet
    embedded in a checker test -- is not treated as a marker.  Files
    that do not tokenize fall back to whole-line scanning; they are
    reported as PARSE001 regardless.
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return [
            (lineno, line)
            for lineno, line in enumerate(lines, start=1)
            if "#" in line
        ]


def _parse_suppressions(comments: List[Tuple[int, str]]) -> List[Suppression]:
    found: List[Suppression] = []
    for lineno, comment in comments:
        if "repro:" not in comment:
            continue
        for match in _ALLOW_RE.finditer(comment):
            found.append(
                Suppression(
                    rule_id=match.group(1),
                    line=lineno,
                    has_reason=bool(match.group(2)),
                )
            )
        for match in _HOT_OK_RE.finditer(comment):
            found.append(
                Suppression(
                    rule_id="HOT",
                    line=lineno,
                    has_reason=bool(match.group(1).strip()),
                    kind="hot-ok",
                )
            )
    return found


def _comment_only(lines: List[str], lineno: int) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    return bool(_COMMENT_ONLY_RE.match(lines[lineno - 1]))


def _explicit_scopes(comments: List[Tuple[int, str]]) -> Set[str]:
    scopes: Set[str] = set()
    for _lineno, comment in comments:
        if "repro:" not in comment:
            continue
        match = _SCOPE_RE.search(comment)
        if match:
            scopes.update(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
    return scopes


def _derive_domains(relpath: str) -> Set[str]:
    """Domains implied by a file's repository path."""
    parts = relpath.split("/")
    name = parts[-1]
    domains: Set[str] = set()
    if "sim" in parts:
        domains.add("sim")
    if "delaymodel" in parts:
        domains.add("delaymodel")
    if "surrogate" in parts:
        domains.add("surrogate")
    if "runtime" in parts:
        domains.add("runtime")
    if "analysis" in parts and "src" in parts:
        domains.add("analysis")
    if "routers" in parts or any(name.endswith(h) for h in HOT_BASENAMES):
        if "sim" in parts:
            domains.add("hot")
    if any(name.endswith(w) for w in WRAP_SITE_BASENAMES):
        domains.add("wrap-site")
    if name == "cache.py" and "runtime" in parts:
        domains.add("cache-module")
    return domains


class Checker:
    """Base checker: per-file visit plus a cross-file finalize pass.

    Subclasses declare their :class:`Rule` catalogue in ``rules`` and
    yield :class:`Finding` objects from :meth:`check_file` (one call per
    parsed source) and :meth:`finalize` (one call after every file has
    been seen, with the completed :class:`~repro.analysis.index.ProjectIndex`
    for cross-file resolution).  Checkers must not keep state between
    :meth:`reset` calls -- the driver reuses instances across runs.
    """

    name = "checker"
    rules: Tuple[Rule, ...] = ()

    def reset(self) -> None:
        """Clear accumulated state before a fresh analysis run."""

    def check_file(self, source: SourceFile, index) -> Iterable[Finding]:
        return ()

    def finalize(self, index) -> Iterable[Finding]:
        return ()

    def rule(self, rule_id: str) -> Rule:
        for rule in self.rules:
            if rule.id == rule_id:
                return rule
        raise KeyError(rule_id)

    def finding(self, rule_id: str, source: SourceFile, node: ast.AST,
                message: str) -> Finding:
        rule = self.rule(rule_id)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=source.relpath,
            line=getattr(node, "lineno", 1),
            message=message,
            checker=self.name,
        )

    def finding_at(self, rule_id: str, path: str, line: int,
                   message: str) -> Finding:
        rule = self.rule(rule_id)
        return Finding(
            rule=rule.id,
            severity=rule.severity,
            path=path,
            line=line,
            message=message,
            checker=self.name,
        )


def call_name(node: ast.AST) -> Optional[str]:
    """Dotted name of a call target: ``a.b.c(...)`` -> ``"a.b.c"``."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_names(node: ast.AST) -> Set[str]:
    """Flat + dotted names of a def/class's decorators."""
    names: Set[str] = set()
    for deco in getattr(node, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = call_name(target)
        if dotted:
            names.add(dotted)
            names.add(dotted.rsplit(".", 1)[-1])
    return names
