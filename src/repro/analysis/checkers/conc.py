"""Lock-discipline rules over the threaded runtime (CONC family).

The serving path (:mod:`repro.runtime.estimator`) shares state between
the caller's thread and a daemon drain worker; these rules enforce the
discipline that keeps that sharing sound, the same lock-set shape
RacerD-style race detectors use:

* ``CONC001`` -- in a class that owns a ``threading.Lock`` /
  ``Condition``, every field *write* outside ``__init__`` must happen
  under ``with self.<lock>`` (the specific lock, when ``LOCKED_BY``
  names one) or the field must be declared in ``LOCKED_BY`` /
  ``THREAD_CONFINED`` next to the class.
* ``CONC002`` -- in a class that owns *no* lock, field writes in code
  reachable from a ``threading.Thread(target=...)`` entry point are
  flagged unless some lock-like context is held (two threads touch the
  instance; lock-owning classes are CONC001's territory).
* ``CONC003`` -- ``Condition.wait`` discipline: ``wait``/``wait_for``
  must run inside ``with self.<condition>``, and a bare ``wait()``
  additionally needs an enclosing ``while`` predicate loop
  (``wait_for`` carries its own predicate).
* ``CONC004`` -- mutable module-level state mutated by code reachable
  from a process-pool worker entry (``pool.submit(f, ...)``) silently
  forks per process; declare intentional per-process memos in a
  module-level ``PROCESS_LOCAL`` set.

Declarations mirror the scheduler's ``RESULT_NEUTRAL`` convention --
plain module-level literals the analyzer reads syntactically::

    LOCKED_BY = {"Estimator.calibration": "_lock"}
    THREAD_CONFINED = {"Estimator._local_scratch"}
    PROCESS_LOCAL = {"_PLAN_CACHE"}

Reads are deliberately not checked: flagging every unguarded read
drowns the signal, and the torn states that matter here come from
unguarded writes.  Fields built by thread-safe constructors
(``queue.Queue`` and friends) are exempt.

The rules run over the ``runtime`` domain (fixtures opt in with
``# repro: scope[runtime]``); CONC004's reachability may land findings
on any analyzed module a worker entry can reach.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, Rule, SourceFile, call_name
from ..index import ClassInfo, FunctionNode, ProjectIndex

#: Constructor names whose instances are guarding primitives.
LOCK_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "Lock", "RLock",
})
CONDITION_CTORS = frozenset({
    "threading.Condition", "Condition",
})

#: Constructors whose instances are intrinsically thread-safe, so
#: unguarded mutation is fine (the queue hand-off in the estimator).
THREADSAFE_CTORS = frozenset({
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue",
})

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "extend", "insert", "remove", "clear", "pop",
    "popleft", "appendleft", "update", "discard", "setdefault",
    "sort", "reverse", "put",
})

#: Module-level declaration names the checker reads.
LOCKED_BY_NAME = "LOCKED_BY"
THREAD_CONFINED_NAME = "THREAD_CONFINED"
PROCESS_LOCAL_NAME = "PROCESS_LOCAL"

#: Constructor calls producing mutable module-level containers.
_MUTABLE_CTOR_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "deque", "OrderedDict",
    "Counter", "collections.defaultdict", "collections.deque",
    "collections.OrderedDict", "collections.Counter",
})


class ConcurrencyChecker(Checker):
    """CONC001-004: lock discipline over the threaded/pooled runtime."""

    name = "conc"
    rules = (
        Rule(
            "CONC001",
            "field write in a lock-owning class outside the owning lock",
        ),
        Rule(
            "CONC002",
            "unguarded field write reachable from a Thread target",
        ),
        Rule(
            "CONC003",
            "Condition.wait without held condition or predicate loop",
        ),
        Rule(
            "CONC004",
            "mutable module-level state reachable from pool workers",
        ),
    )

    # ------------------------------------------------------------------
    # Per-file pass: CONC001 (class-local) and CONC003 (lexical).
    # ------------------------------------------------------------------

    def check_file(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterable[Finding]:
        if source.tree is None or not source.in_domain("runtime"):
            return
        locked_by = _string_map(source.tree, LOCKED_BY_NAME)
        confined = _string_set(source.tree, THREAD_CONFINED_NAME)
        for node in source.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(
                    source, node, locked_by, confined
                )

    def _check_class(
        self,
        source: SourceFile,
        node: ast.ClassDef,
        locked_by: Dict[str, str],
        confined: Set[str],
    ) -> Iterable[Finding]:
        locks, conditions, safe = _owned_primitives(node)
        guards = locks | conditions
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_waits(source, item, conditions)
            if item.name == "__init__" or not guards:
                continue
            for write in _field_writes(item, guards):
                field = write.field
                if field in guards or field in safe:
                    continue
                qualified = f"{node.name}.{field}"
                if qualified in confined:
                    continue
                required = locked_by.get(qualified)
                if required is not None:
                    if required in write.held:
                        continue
                    yield self.finding_at(
                        "CONC001", source.relpath, write.line,
                        f"'{qualified}' is declared LOCKED_BY "
                        f"'{required}' but written without "
                        f"'with self.{required}'",
                    )
                    continue
                if write.held:
                    continue
                yield self.finding_at(
                    "CONC001", source.relpath, write.line,
                    f"'{qualified}' written outside any owned lock in "
                    f"'{item.name}'; guard the write or declare the "
                    f"field in {LOCKED_BY_NAME}/{THREAD_CONFINED_NAME}",
                )

    def _check_waits(
        self,
        source: SourceFile,
        func: ast.AST,
        conditions: Set[str],
    ) -> Iterable[Finding]:
        """CONC003 over one method: wait discipline is lexical."""

        def walk(node: ast.AST, held: FrozenSet[str],
                 in_while: bool) -> Iterable[Finding]:
            for child in ast.iter_child_nodes(node):
                child_held = held
                child_while = in_while
                if isinstance(child, ast.With):
                    child_held = held | _with_locks(child, conditions)
                elif isinstance(child, ast.While):
                    child_while = True
                elif isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    child_held = frozenset()
                    child_while = False
                if isinstance(child, ast.Call):
                    target = child.func
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in ("wait", "wait_for")
                        and isinstance(target.value, ast.Attribute)
                        and isinstance(target.value.value, ast.Name)
                        and target.value.value.id == "self"
                        and target.value.attr in conditions
                    ):
                        cond = target.value.attr
                        if cond not in held:
                            yield self.finding_at(
                                "CONC003", source.relpath, child.lineno,
                                f"'self.{cond}.{target.attr}' called "
                                f"without holding 'with self.{cond}'",
                            )
                        elif target.attr == "wait" and not in_while:
                            yield self.finding_at(
                                "CONC003", source.relpath, child.lineno,
                                f"bare 'self.{cond}.wait()' outside a "
                                f"'while' predicate loop; re-check the "
                                f"predicate after wakeup or use wait_for",
                            )
                yield from walk(child, child_held, child_while)

        yield from walk(func, frozenset(), False)

    # ------------------------------------------------------------------
    # Cross-file pass: CONC002 (thread reachability), CONC004 (pools).
    # ------------------------------------------------------------------

    def finalize(self, index: ProjectIndex) -> Iterable[Finding]:
        yield from self._check_thread_targets(index)
        yield from self._check_worker_globals(index)

    def _check_thread_targets(
        self, index: ProjectIndex
    ) -> Iterable[Finding]:
        emitted: Set[Tuple[str, int]] = set()
        for source in index.files:
            if source.tree is None or not source.in_domain("runtime"):
                continue
            confined = _string_set(source.tree, THREAD_CONFINED_NAME)
            for node in source.tree.body:
                if not isinstance(node, ast.ClassDef):
                    continue
                locks, conditions, _safe = _owned_primitives(node)
                if locks | conditions:
                    continue  # CONC001 owns lock-owning classes.
                entries = _thread_targets(node, index)
                if not entries:
                    continue
                same_class = index.reachable(
                    entries,
                    keep=lambda n, cls=node.name: n.class_name == cls,
                )
                for reached in same_class.values():
                    if reached.name == "__init__":
                        continue
                    for write in _field_writes(
                        reached.node, guards=None
                    ):
                        qualified = f"{node.name}.{write.field}"
                        if qualified in confined:
                            continue
                        if write.held:
                            continue
                        key = (source.relpath, write.line)
                        if key in emitted:
                            continue
                        emitted.add(key)
                        yield self.finding_at(
                            "CONC002", source.relpath, write.line,
                            f"'{qualified}' written in "
                            f"'{reached.name}', reachable from a "
                            f"Thread target, without any lock held; "
                            f"guard it or declare the field in "
                            f"{THREAD_CONFINED_NAME}",
                        )

    def _check_worker_globals(
        self, index: ProjectIndex
    ) -> Iterable[Finding]:
        entries: List[FunctionNode] = []
        for source in index.files:
            if source.tree is None or not source.in_domain("runtime"):
                continue
            entries.extend(_pool_entries(source, index))
        if not entries:
            return
        reachable = index.reachable(entries)
        for source in index.files:
            if source.tree is None:
                continue
            process_local = _string_set(source.tree, PROCESS_LOCAL_NAME)
            globals_ = _mutable_globals(source.tree)
            if not globals_:
                continue
            mutators = _global_mutators(index, source, set(globals_))
            for name, line in sorted(globals_.items()):
                if name in process_local:
                    continue
                hit = next(
                    (
                        fn for fn in mutators.get(name, ())
                        if fn.qualname in reachable
                    ),
                    None,
                )
                if hit is None:
                    continue
                yield self.finding_at(
                    "CONC004", source.relpath, line,
                    f"module-level mutable '{name}' is mutated by "
                    f"'{hit.name}', which process-pool workers reach; "
                    f"per-process copies fork silently -- declare it "
                    f"in {PROCESS_LOCAL_NAME} if that is intended",
                )


# ----------------------------------------------------------------------
# Write-site extraction.
# ----------------------------------------------------------------------


class _Write:
    """One ``self.<field>`` write site with the locks held around it."""

    __slots__ = ("field", "line", "held")

    def __init__(self, field: str, line: int,
                 held: FrozenSet[str]) -> None:
        self.field = field
        self.line = line
        self.held = held


def _field_writes(
    func: ast.AST, guards: Optional[Set[str]]
) -> List[_Write]:
    """Every ``self.<field>`` write in ``func`` with held-lock context.

    ``guards`` names the owned lock attributes to track; ``None`` means
    "track any lock-looking context" (CONC002's generous mode for
    classes that own no primitive: ``with self.<attr>`` or ``with
    <name>`` where the name smells like a lock).
    """
    writes: List[_Write] = []

    def self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def target_fields(node: ast.AST) -> Iterable[Tuple[str, int]]:
        attr = self_attr(node)
        if attr is not None:
            yield attr, node.lineno
            return
        if isinstance(node, ast.Subscript):
            attr = self_attr(node.value)
            if attr is not None:
                yield attr, node.lineno
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                yield from target_fields(element)

    def walk(node: ast.AST, held: FrozenSet[str]) -> None:
        for child in ast.iter_child_nodes(node):
            child_held = held
            if isinstance(child, ast.With):
                child_held = held | _with_locks(child, guards)
            elif isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                child_held = frozenset()
            if isinstance(child, ast.Assign):
                for target in child.targets:
                    for field, line in target_fields(target):
                        writes.append(_Write(field, line, held))
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                if not (isinstance(child, ast.AnnAssign)
                        and child.value is None):
                    for field, line in target_fields(child.target):
                        writes.append(_Write(field, line, held))
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    for field, line in target_fields(target):
                        writes.append(_Write(field, line, held))
            elif isinstance(child, ast.Call):
                target = child.func
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in MUTATOR_METHODS
                ):
                    attr = self_attr(target.value)
                    if attr is not None:
                        writes.append(
                            _Write(attr, child.lineno, held)
                        )
            walk(child, child_held)

    walk(func, frozenset())
    return writes


def _with_locks(
    node: ast.With, guards: Optional[Set[str]]
) -> FrozenSet[str]:
    """Guard attributes acquired by one ``with`` statement."""
    held: Set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            if guards is not None:
                if expr.attr in guards:
                    held.add(expr.attr)
            elif _lock_like(expr.attr):
                held.add(expr.attr)
        elif guards is None and isinstance(expr, ast.Name):
            if _lock_like(expr.id):
                held.add(expr.id)
    return frozenset(held)


def _lock_like(name: str) -> bool:
    lowered = name.lower()
    return any(tag in lowered for tag in ("lock", "cond", "mutex", "sem"))


# ----------------------------------------------------------------------
# Class/module fact extraction.
# ----------------------------------------------------------------------


def _owned_primitives(
    node: ast.ClassDef,
) -> Tuple[Set[str], Set[str], Set[str]]:
    """(lock attrs, condition attrs, thread-safe container attrs)."""
    locks: Set[str] = set()
    conditions: Set[str] = set()
    safe: Set[str] = set()
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for stmt in ast.walk(item):
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
                value = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
                value = stmt.value
            else:
                continue
            ctor = call_name(value)
            if ctor is None:
                continue
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if ctor in LOCK_CTORS:
                    locks.add(target.attr)
                elif ctor in CONDITION_CTORS:
                    conditions.add(target.attr)
                elif ctor in THREADSAFE_CTORS:
                    safe.add(target.attr)
    return locks, conditions, safe


def _thread_targets(
    node: ast.ClassDef, index: ProjectIndex
) -> List[FunctionNode]:
    """FunctionNodes passed as ``Thread(target=...)`` inside ``node``."""
    entries: List[FunctionNode] = []
    for stmt in ast.walk(node):
        if not isinstance(stmt, ast.Call):
            continue
        ctor = call_name(stmt.func)
        if ctor not in ("threading.Thread", "Thread"):
            continue
        for keyword in stmt.keywords:
            if keyword.arg != "target":
                continue
            value = keyword.value
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                resolved = index.function_node(node.name, value.attr)
                if resolved is not None:
                    entries.append(resolved)
    return entries


def _pool_entries(
    source: SourceFile, index: ProjectIndex
) -> List[FunctionNode]:
    """Functions handed to ``pool.submit(f, ...)`` / ``pool.map(f, ...)``."""
    entries: List[FunctionNode] = []
    for stmt in ast.walk(source.tree):
        if not isinstance(stmt, ast.Call):
            continue
        func = stmt.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("submit", "map")
        ):
            continue
        if not stmt.args:
            continue
        candidate = stmt.args[0]
        resolved: Optional[FunctionNode] = None
        if isinstance(candidate, ast.Name):
            resolved = index.function_node(
                None, candidate.id, relpath=source.relpath
            ) or index.function_node(None, candidate.id)
        if resolved is not None:
            entries.append(resolved)
    return entries


def _mutable_globals(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable container literals/ctors."""
    found: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets = [stmt.target]
            value = stmt.value
        else:
            continue
        mutable = isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
             ast.SetComp),
        )
        if not mutable and isinstance(value, ast.Call):
            mutable = call_name(value) in _MUTABLE_CTOR_CALLS
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                found.setdefault(target.id, stmt.lineno)
    return found


def _global_mutators(
    index: ProjectIndex, source: SourceFile, names: Set[str]
) -> Dict[str, List[FunctionNode]]:
    """Which functions in ``source`` mutate which module globals."""
    by_name: Dict[str, List[FunctionNode]] = {}
    for fn in index.nodes.values():
        if fn.relpath != source.relpath:
            continue
        locals_: Set[str] = {
            arg.arg for arg in getattr(
                fn.node, "args", ast.arguments(
                    posonlyargs=[], args=[], kwonlyargs=[],
                    kw_defaults=[], defaults=[],
                )
            ).args
        }
        for stmt in ast.walk(fn.node):
            mutated: Optional[str] = None
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names
                    ):
                        mutated = target.value.id
                    elif (
                        isinstance(target, ast.Name)
                        and isinstance(stmt, ast.AugAssign)
                        and target.id in names
                    ):
                        mutated = target.id
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in names
                    ):
                        mutated = target.value.id
            elif isinstance(stmt, ast.Call):
                func = stmt.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in names
                ):
                    mutated = func.value.id
            if mutated is not None and mutated not in locals_:
                by_name.setdefault(mutated, []).append(fn)
    return by_name


# ----------------------------------------------------------------------
# Declaration parsing (module-level literal maps/sets).
# ----------------------------------------------------------------------


def _string_map(tree: ast.Module, name: str) -> Dict[str, str]:
    """Module-level ``NAME = {"k": "v", ...}`` literal, or empty."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ):
            continue
        if not isinstance(stmt.value, ast.Dict):
            continue
        parsed: Dict[str, str] = {}
        for key, value in zip(stmt.value.keys, stmt.value.values):
            if (
                isinstance(key, ast.Constant)
                and isinstance(key.value, str)
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
            ):
                parsed[key.value] = value.value
        return parsed
    return {}


def _string_set(tree: ast.Module, name: str) -> Set[str]:
    """Module-level ``NAME = {"a", ...}`` (set/frozenset/tuple/list)."""
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ):
            continue
        value = stmt.value
        if isinstance(value, ast.Call) and value.args:
            ctor = call_name(value)
            if ctor in ("frozenset", "set"):
                value = value.args[0]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return {
                el.value for el in value.elts
                if isinstance(el, ast.Constant)
                and isinstance(el.value, str)
            }
    return set()
