"""DET: determinism rules for the simulator, delay model and surrogate.

Bit-identical reruns -- the property every differential oracle
(fast-vs-reference, telemetry-on-vs-off, cached-vs-uncached) asserts --
require that all randomness flows through seeded :class:`random.Random`
instances and that nothing order-unstable feeds simulated results.

* ``DET001`` -- a module-level RNG call (``random.random()``,
  ``from random import randint``) inside ``repro.sim`` /
  ``repro.delaymodel`` / ``repro.surrogate``: the process-global RNG
  is shared, unseeded by default, and invisible to the result cache's
  content key.
* ``DET002`` -- a wall-clock / entropy source (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, ...) in the same
  scope.  Wall-clock *instrumentation* that provably never reaches
  simulated state is fine -- annotate it
  ``# repro: allow[DET002] wall-clock stats only``.
* ``DET003`` -- iteration over a ``set``/``frozenset`` value in a hot
  path (routers, allocators, arbiters, matching, the stepper), where
  Python's hash-order can decide which request wins a cycle.  Wrap the
  iterable in ``sorted(...)`` or use an order-stable container instead;
  membership tests on sets are untouched.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, Rule, SourceFile, call_name

#: ``module.attr`` call targets that read wall clocks or OS entropy.
CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "secrets.token_bytes",
    "secrets.token_hex",
    "secrets.randbelow",
})

#: Names importable from :mod:`random` that are *not* the seeded
#: instance constructor (importing any of these binds the global RNG).
_SEEDED_OK = frozenset({"Random", "SystemRandom"})


class DeterminismChecker(Checker):
    name = "det"
    rules = (
        Rule("DET001",
             "module-level random.* call (unseeded, process-global RNG)"),
        Rule("DET002",
             "wall-clock or OS-entropy source in deterministic code"),
        Rule("DET003",
             "iteration over a set/frozenset value in a hot path"),
    )

    def check_file(self, source: SourceFile, index) -> Iterable[Finding]:
        deterministic = source.in_domain(
            "sim", "delaymodel", "surrogate", "analysis"
        )
        hot = source.in_domain("hot")
        if not deterministic and not hot:
            return
        if deterministic:
            yield from self._check_rng(source)
        if hot:
            yield from self._check_set_iteration(source)

    # -- DET001 / DET002 ------------------------------------------------

    def _check_rng(self, source: SourceFile) -> Iterable[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    for alias in node.names:
                        if alias.name not in _SEEDED_OK:
                            yield self.finding(
                                "DET001", source, node,
                                f"'from random import {alias.name}' binds "
                                f"the process-global RNG; construct a "
                                f"seeded random.Random instead",
                            )
                elif node.module in ("time", "datetime", "os", "uuid",
                                     "secrets"):
                    for alias in node.names:
                        dotted = f"{node.module}.{alias.name}"
                        if dotted in CLOCK_CALLS:
                            yield self.finding(
                                "DET002", source, node,
                                f"'from {node.module} import {alias.name}' "
                                f"imports a wall-clock/entropy source into "
                                f"deterministic code",
                            )
            elif isinstance(node, ast.Call):
                dotted = call_name(node)
                if dotted is None:
                    continue
                if (
                    dotted.startswith("random.")
                    and dotted.count(".") == 1
                    and dotted.split(".", 1)[1] not in _SEEDED_OK
                ):
                    yield self.finding(
                        "DET001", source, node,
                        f"call to {dotted}() uses the process-global RNG; "
                        f"route randomness through a seeded random.Random",
                    )
                elif dotted in CLOCK_CALLS:
                    yield self.finding(
                        "DET002", source, node,
                        f"call to {dotted}() is wall-clock/entropy-"
                        f"dependent; deterministic code must not read it",
                    )

    # -- DET003 ---------------------------------------------------------

    def _check_set_iteration(self, source: SourceFile) -> Iterable[Finding]:
        for scope in _scopes(source.tree):
            set_locals = _set_typed_locals(scope)
            for node in _walk_scope(scope):
                for iter_node, context in _iteration_sites(node):
                    reason = _set_valued(iter_node, set_locals)
                    if reason is not None:
                        yield self.finding(
                            "DET003", source, iter_node,
                            f"{context} iterates over {reason}; hash order "
                            f"is not part of the simulated contract -- "
                            f"sort it or use an ordered container",
                        )


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _scopes(tree: ast.AST) -> List[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    return [tree] + [
        node for node in ast.walk(tree) if isinstance(node, _SCOPE_NODES)
    ]


def _walk_scope(scope: ast.AST) -> List[ast.AST]:
    """All nodes of ``scope`` without descending into nested functions
    (each nested function is its own scope and is visited separately)."""
    collected: List[ast.AST] = []
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)
    return collected


def _set_typed_locals(func: ast.AST) -> Set[str]:
    """Local names bound to a set expression directly in ``func``."""
    names: Set[str] = set()
    for node in _walk_scope(func):
        value: Optional[ast.AST] = None
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        if value is None or not _is_set_expr(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        return name in ("set", "frozenset")
    return False


def _iteration_sites(
    node: ast.AST,
) -> List[Tuple[ast.AST, str]]:
    """(iterated expression, human context) pairs introduced by ``node``."""
    sites: List[Tuple[ast.AST, str]] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        sites.append((node.iter, "for loop"))
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                           ast.GeneratorExp)):
        for gen in node.generators:
            sites.append((gen.iter, "comprehension"))
    return sites


def _set_valued(node: ast.AST, set_locals: Set[str]) -> Optional[str]:
    """If ``node`` evaluates to a set, a description of it; else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in ("set", "frozenset"):
            return f"a {name}(...) value"
    if isinstance(node, ast.Name) and node.id in set_locals:
        return f"local set '{node.id}'"
    return None
