"""The project-specific checker set.

Each module holds one checker family; :func:`default_checkers` is the
set the CLI, CI, and the self-lint test all run.
"""

from __future__ import annotations

from typing import List

from ..core import Checker
from .cache import CacheKeyChecker
from .det import DeterminismChecker
from .pure import PurityChecker
from .slots import SlotsChecker
from .wrap import WrapTargetChecker


def default_checkers() -> List[Checker]:
    """Fresh instances of every project checker (DET, CACHE, WRAP,
    SLOTS, PURE)."""
    return [
        DeterminismChecker(),
        CacheKeyChecker(),
        WrapTargetChecker(),
        SlotsChecker(),
        PurityChecker(),
    ]


__all__ = [
    "CacheKeyChecker",
    "DeterminismChecker",
    "PurityChecker",
    "SlotsChecker",
    "WrapTargetChecker",
    "default_checkers",
]
