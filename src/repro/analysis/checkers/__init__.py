"""The project-specific checker set.

Each module holds one checker family; :func:`default_checkers` is the
set the CLI, CI, and the self-lint test all run.
"""

from __future__ import annotations

from typing import List

from ..core import Checker
from .cache import CacheKeyChecker
from .conc import ConcurrencyChecker
from .det import DeterminismChecker
from .hot import HotPathChecker
from .pure import PurityChecker
from .slots import SlotsChecker
from .wrap import WrapTargetChecker


def default_checkers() -> List[Checker]:
    """Fresh instances of every project checker (DET, CACHE, WRAP,
    SLOTS, PURE, CONC, HOT)."""
    return [
        DeterminismChecker(),
        CacheKeyChecker(),
        WrapTargetChecker(),
        SlotsChecker(),
        PurityChecker(),
        ConcurrencyChecker(),
        HotPathChecker(),
    ]


__all__ = [
    "CacheKeyChecker",
    "ConcurrencyChecker",
    "DeterminismChecker",
    "HotPathChecker",
    "PurityChecker",
    "SlotsChecker",
    "WrapTargetChecker",
    "default_checkers",
]
