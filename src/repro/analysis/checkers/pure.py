"""PURE: the analytical libraries stay pure function libraries.

``repro.delaymodel`` is the analytical half of the reproduction: given a
router configuration it *computes* Table 1 delays, pipeline structures,
and derived figures; ``repro.surrogate`` layers the queueing estimator
and its calibration on top and promises the same contract (the hybrid
serving path answers queries straight from these functions, so a hidden
input would silently skew every answer).  Everything downstream (the
optimizer, the figure generators, the result cache's assumption that
config -> result is a function) relies on those computations having no
hidden inputs or outputs.  Three rules keep it that way:

* ``PURE001`` -- a ``global`` declaration inside a function: rebinding
  module state from call sites makes results order-dependent;
* ``PURE002`` -- I/O from model code (``open``, ``print``, ``input``,
  file writes, subprocess/os process calls): rendering belongs in
  ``repro.experiments``, not in the model;
* ``PURE003`` -- in-place mutation of a module-level object
  (``TABLE.append(...)``, ``_CACHE[key] = ...``, ``STATE += ...``):
  call-order-dependent module state is the classic source of
  "works in the REPL, differs in the sweep" bugs.  Memoization belongs
  in ``functools.lru_cache``, which is explicitly fine (pure
  memoization of a pure function).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from ..core import Checker, Finding, Rule, SourceFile, call_name

#: Bare calls that perform I/O.
IO_CALL_NAMES = frozenset({"open", "print", "input", "breakpoint"})

#: Attribute-call suffixes that perform I/O or spawn processes.
IO_ATTR_SUFFIXES = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes",
    "mkdir", "unlink", "rmdir", "touch", "system", "popen", "remove",
    "makedirs",
})

#: Dotted prefixes that perform I/O or spawn processes.
IO_DOTTED_PREFIXES = ("subprocess.", "shutil.", "sys.stdout", "sys.stderr")

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "sort", "reverse",
})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


class PurityChecker(Checker):
    name = "pure"
    rules = (
        Rule("PURE001", "global declaration inside pure-model function"),
        Rule("PURE002", "I/O performed by pure-model code"),
        Rule("PURE003", "in-place mutation of pure-model module state"),
    )

    def check_file(self, source: SourceFile, index) -> Iterable[Finding]:
        if not source.in_domain("delaymodel", "surrogate"):
            return
        module_names = _module_level_names(source.tree)
        for func in _functions(source.tree):
            local_names = _local_bindings(func)
            for node in _walk_scope(func):
                if isinstance(node, ast.Global):
                    yield self.finding(
                        "PURE001", source, node,
                        f"function '{func.name}' declares "
                        f"'global {', '.join(node.names)}'; the delay "
                        f"model must not rebind module state",
                    )
                elif isinstance(node, ast.Call):
                    yield from self._check_io(source, func, node)
                    yield from self._check_mutator(
                        source, func, node, module_names, local_names
                    )
                elif isinstance(node, (ast.AugAssign, ast.Assign)):
                    yield from self._check_subscript_store(
                        source, func, node, module_names, local_names
                    )

    def _check_io(self, source: SourceFile, func: ast.AST,
                  node: ast.Call) -> Iterable[Finding]:
        dotted = call_name(node)
        if dotted is None:
            return
        is_io = (
            dotted in IO_CALL_NAMES
            or dotted.rsplit(".", 1)[-1] in IO_ATTR_SUFFIXES
            or any(dotted.startswith(p) for p in IO_DOTTED_PREFIXES)
        )
        if is_io:
            yield self.finding(
                "PURE002", source, node,
                f"call to {dotted}() performs I/O inside the delay "
                f"model; move rendering/persistence to repro.experiments",
            )

    def _check_mutator(
        self, source: SourceFile, func, node: ast.Call,
        module_names: Set[str], local_names: Set[str],
    ) -> Iterable[Finding]:
        if not isinstance(node.func, ast.Attribute):
            return
        if node.func.attr not in MUTATOR_METHODS:
            return
        receiver = node.func.value
        if (
            isinstance(receiver, ast.Name)
            and receiver.id in module_names
            and receiver.id not in local_names
        ):
            yield self.finding(
                "PURE003", source, node,
                f"'{receiver.id}.{node.func.attr}(...)' mutates module-"
                f"level state from inside '{func.name}'; results become "
                f"call-order dependent (use functools.lru_cache for "
                f"memoization)",
            )

    def _check_subscript_store(
        self, source: SourceFile, func, node,
        module_names: Set[str], local_names: Set[str],
    ) -> Iterable[Finding]:
        targets = (
            [node.target] if isinstance(node, ast.AugAssign)
            else list(node.targets)
        )
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Name)
                and base.id in module_names
                and base.id not in local_names
                and (isinstance(target, ast.Subscript)
                     or isinstance(node, ast.AugAssign))
            ):
                kind = (
                    "augments" if isinstance(node, ast.AugAssign)
                    else "writes into"
                )
                yield self.finding(
                    "PURE003", source, node,
                    f"'{func.name}' {kind} module-level '{base.id}'; "
                    f"the delay model must not accumulate module state",
                )


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def _functions(tree: ast.AST) -> List[ast.AST]:
    return [
        node for node in ast.walk(tree) if isinstance(node, _SCOPE_NODES)
    ]


def _walk_scope(scope: ast.AST) -> List[ast.AST]:
    collected: List[ast.AST] = []
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                continue
            stack.append(child)
    return collected


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names bound locally in ``func`` (params, assignments, loops)."""
    names: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    for node in _walk_scope(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names
