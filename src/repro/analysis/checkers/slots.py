"""SLOTS: ``__slots__`` coverage and per-instance patching hazards.

Three ways a slotted or pool-pickled class silently loses data:

* ``SLOTS001`` -- a class declares ``__slots__`` but a method assigns a
  ``self.attr`` the slot tuple does not cover.  On a fully-slotted
  inheritance chain that assignment raises ``AttributeError`` at
  runtime -- but only on the (possibly rare) path that executes it.
* ``SLOTS002`` -- a probe/collector wrap site patches an attribute on
  instances whose every provider class is fully slotted: the patch
  raises at attach time.  The sim deliberately leaves router/sink/source
  classes un-slotted so wrappers can intercept them (see
  ``network.py``); this rule keeps that contract honest when someone
  later adds ``__slots__`` for speed.
* ``SLOTS003`` -- a non-field attribute assigned on an instance of a
  config/result dataclass that crosses process-pool pickles.  Slotted
  or not, the extra attribute is not part of the dataclass contract:
  it vanishes or desynchronizes across cache/pool hops.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, Rule, SourceFile, call_name
from ..index import ClassInfo, ProjectIndex
from .wrap import all_wrap_sites

#: Dataclasses whose instances cross ProcessPool / result-cache pickle
#: boundaries; instance state outside their fields does not survive.
PICKLED_CLASSES = (
    "SimConfig",
    "MeasurementConfig",
    "TelemetryConfig",
    "RunResult",
)


class SlotsChecker(Checker):
    name = "slots"
    rules = (
        Rule("SLOTS001",
             "self attribute assigned outside the class's __slots__"),
        Rule("SLOTS002",
             "instance patch targets a fully-__slots__ class"),
        Rule("SLOTS003",
             "non-field attribute set on a pool-pickled dataclass"),
    )

    def check_file(self, source: SourceFile, index) -> Iterable[Finding]:
        yield from self._check_pickled_instances(source, index)

    def finalize(self, index: ProjectIndex) -> Iterable[Finding]:
        yield from self._check_slot_coverage(index)
        yield from self._check_patched_slotted(index)

    # -- SLOTS001 -------------------------------------------------------

    def _check_slot_coverage(
        self, index: ProjectIndex
    ) -> Iterable[Finding]:
        for info in index.all_classes():
            if info.slots is None:
                continue
            chain = index.slots_chain(info)
            if chain is None:
                # Some base carries a __dict__ (or is unresolvable):
                # stray assignments land there legally.
                continue
            allowed = set(chain) | index.properties_chain(info)
            for attr in sorted(info.self_attrs - allowed):
                if attr.startswith("__"):
                    continue
                line = _self_store_line(index, info, attr)
                yield self.finding_at(
                    "SLOTS001", info.relpath, line,
                    f"{info.name}.{attr} is assigned on self but missing "
                    f"from __slots__ (chain covers: "
                    f"{', '.join(sorted(allowed)) or 'nothing'}); this "
                    f"raises AttributeError on the path that executes it",
                )

    # -- SLOTS002 -------------------------------------------------------

    def _check_patched_slotted(
        self, index: ProjectIndex
    ) -> Iterable[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for site in all_wrap_sites(index):
            if not site.patches:
                continue
            dedupe = (site.relpath, site.line, site.attr)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            providers = [
                info for info in index.providers(site.attr)
                if info.relpath != site.relpath
            ]
            if not providers:
                continue  # WRAP001's problem, not ours
            slotted = [
                info for info in providers
                if index.slots_chain(info) is not None
            ]
            if len(slotted) == len(providers):
                names = ", ".join(sorted(info.name for info in slotted))
                yield self.finding_at(
                    "SLOTS002", site.relpath, site.line,
                    f"instance patch of '{site.attr}' targets only "
                    f"fully-__slots__ classes ({names}); the assignment "
                    f"raises AttributeError at attach time -- drop the "
                    f"__slots__ or wrap at the class/call site instead",
                )

    # -- SLOTS003 -------------------------------------------------------

    def _check_pickled_instances(
        self, source: SourceFile, index: ProjectIndex
    ) -> Iterable[Finding]:
        for scope in _scopes(source.tree):
            bindings: Dict[str, str] = {}
            for node in _ordered_scope_nodes(scope):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name):
                        cls = _pickled_ctor(node.value)
                        if cls is not None:
                            bindings[target.id] = cls
                        else:
                            bindings.pop(target.id, None)
                elif (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Store)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in bindings
                ):
                    cls_name = bindings[node.value.id]
                    info = index.resolve_base(cls_name)
                    if info is None or not info.fields:
                        continue
                    if node.attr not in info.fields:
                        yield self.finding(
                            "SLOTS003", source, node,
                            f"'{node.value.id}.{node.attr}' sets an "
                            f"attribute that is not a field of "
                            f"{cls_name}; instances cross pool/cache "
                            f"pickle boundaries and non-field state does "
                            f"not survive them",
                        )


def _pickled_ctor(value: ast.AST) -> Optional[str]:
    """Class name if ``value`` constructs a pickled dataclass."""
    candidates = [value]
    if isinstance(value, ast.IfExp):
        candidates = [value.body, value.orelse]
    for candidate in candidates:
        if isinstance(candidate, ast.Call):
            name = call_name(candidate)
            if name is not None and name.rsplit(".", 1)[-1] in PICKLED_CLASSES:
                return name.rsplit(".", 1)[-1]
    return None


def _scopes(tree: ast.AST) -> List[ast.AST]:
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef)
    return [tree] + [
        node for node in ast.walk(tree) if isinstance(node, scope_nodes)
    ]


def _ordered_scope_nodes(scope: ast.AST) -> List[ast.AST]:
    """Source-ordered nodes of ``scope``, excluding nested functions."""
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef)
    collected: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, scope_nodes):
                continue
            visit(child)

    for child in ast.iter_child_nodes(scope):
        if isinstance(child, scope_nodes):
            continue
        visit(child)
    return collected


def _self_store_line(index: ProjectIndex, info: ClassInfo,
                     attr: str) -> int:
    """Line of the first ``self.<attr>`` store inside ``info``'s body."""
    for source in index.files:
        if source.relpath != info.relpath:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == info.name:
                for sub in ast.walk(node):
                    if (
                        isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, (ast.Store, ast.Del))
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"
                        and sub.attr == attr
                    ):
                        return sub.lineno
                return node.lineno
    return info.line
