"""WRAP: string-named wrap targets must resolve to real attributes.

Validation probes and telemetry collectors instrument the simulator by
monkeypatching *named* attributes on live objects at attach time
(``router._traverse = wrapper``, ``sink.accept = wrapped``,
``getattr(router, "_spec_switch_allocator", None)``).  Nothing ties
those names to the definitions in ``sim/``: rename ``_traverse`` and
every collector silently stops collecting -- the failure surfaces hours
later as a telemetry-on-vs-off oracle mismatch, not as a lint error.

``WRAP001`` closes that gap.  In the wrap-site modules (``probes.py``,
``collectors.py``, or any file scoped ``# repro: scope[wrap-site]``) it
collects every wrap target:

* ``getattr(obj, "name", ...)`` / ``setattr(obj, "name", ...)`` with a
  literal name;
* the read-then-reassign monkeypatch idiom: an attribute both loaded
  and stored (or deleted) on the same non-``self`` object within one
  function;
* ``"name" in obj.__dict__`` membership probes.

Each target must be provided (method, ``self.x`` assignment, property,
``__slots__`` entry, or dataclass field) by at least one class in the
analyzed set; unresolved names fail the lint at the wrap site.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from ..core import Checker, Finding, Rule, SourceFile, call_name
from ..index import ProjectIndex


@dataclass(frozen=True)
class WrapSite:
    """One attribute name a probe/collector wraps, and where."""

    attr: str
    relpath: str
    line: int
    kind: str  # "getattr" | "monkeypatch" | "dict-probe" | "setattr"
    #: True when the site *assigns* the attribute on instances (the
    #: SLOTS checker flags these when every provider is slotted).
    patches: bool = False


def collect_wrap_sites(source: SourceFile) -> List[WrapSite]:
    """Every wrap target named in ``source`` (a wrap-site module)."""
    sites: List[WrapSite] = []
    for scope in _scopes(source.tree):
        loads: Dict[Tuple[str, str], int] = {}
        stores: Dict[Tuple[str, str], int] = {}
        for node in _walk_scope(scope):
            if isinstance(node, ast.Call):
                dotted = call_name(node)
                if dotted in ("getattr", "setattr", "delattr") and len(
                    node.args
                ) >= 2:
                    name_arg = node.args[1]
                    if isinstance(name_arg, ast.Constant) and isinstance(
                        name_arg.value, str
                    ):
                        sites.append(WrapSite(
                            attr=name_arg.value,
                            relpath=source.relpath,
                            line=node.lineno,
                            kind=dotted,
                            patches=dotted == "setattr",
                        ))
            elif isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name
            ):
                base = node.value.id
                if base in ("self", "cls"):
                    continue
                if node.attr == "__dict__":
                    continue
                key = (base, node.attr)
                if isinstance(node.ctx, ast.Load):
                    loads.setdefault(key, node.lineno)
                else:  # Store or Del: both are instance patches
                    stores.setdefault(key, node.lineno)
            elif isinstance(node, ast.Compare):
                sites.extend(_dict_probe_sites(node, source))
        for key in sorted(set(loads) & set(stores)):
            base, attr = key
            if attr.startswith("__"):
                continue
            sites.append(WrapSite(
                attr=attr,
                relpath=source.relpath,
                line=stores[key],
                kind="monkeypatch",
                patches=True,
            ))
    return sites


def _dict_probe_sites(
    node: ast.Compare, source: SourceFile
) -> List[WrapSite]:
    """``"attr" in obj.__dict__`` membership probes."""
    sites: List[WrapSite] = []
    if not any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
        return sites
    operands = [node.left] + list(node.comparators)
    has_dunder_dict = any(
        isinstance(operand, ast.Attribute) and operand.attr == "__dict__"
        for operand in operands
    )
    if not has_dunder_dict:
        return sites
    for operand in operands:
        if isinstance(operand, ast.Constant) and isinstance(
            operand.value, str
        ):
            sites.append(WrapSite(
                attr=operand.value,
                relpath=source.relpath,
                line=node.lineno,
                kind="dict-probe",
            ))
    return sites


def _scopes(tree: ast.AST) -> List[ast.AST]:
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef)
    return [tree] + [
        node for node in ast.walk(tree) if isinstance(node, scope_nodes)
    ]


def _walk_scope(scope: ast.AST) -> List[ast.AST]:
    scope_nodes = (ast.FunctionDef, ast.AsyncFunctionDef)
    collected: List[ast.AST] = []
    stack: List[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        collected.append(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, scope_nodes):
                continue
            stack.append(child)
    return collected


def all_wrap_sites(index: ProjectIndex) -> List[WrapSite]:
    """Every wrap site in the indexed wrap-site modules.

    Computed from the completed index (not accumulated per file) so the
    checkers stay stateless -- the parallel driver runs ``check_file``
    concurrently and caches its findings per module.
    """
    sites: List[WrapSite] = []
    for source in index.files:
        if source.in_domain("wrap-site"):
            sites.extend(collect_wrap_sites(source))
    return sites


class WrapTargetChecker(Checker):
    name = "wrap"
    rules = (
        Rule("WRAP001",
             "wrapped attribute name resolves to no class in the tree"),
    )

    def finalize(self, index: ProjectIndex) -> Iterable[Finding]:
        seen: Set[Tuple[str, str, int]] = set()
        for site in all_wrap_sites(index):
            dedupe = (site.relpath, site.attr, site.line)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            providers = [
                info for info in index.providers(site.attr)
                # A wrapper defined in the wrap-site module itself (e.g.
                # a proxy class) must not satisfy its own resolution.
                if info.relpath != site.relpath
            ]
            if not providers:
                yield self.finding_at(
                    "WRAP001", site.relpath, site.line,
                    f"wrapped attribute '{site.attr}' ({site.kind}) does "
                    f"not resolve to any method, self-assigned attribute, "
                    f"property, slot, or field of a class in the analyzed "
                    f"tree -- a rename has orphaned this probe point",
                )
