"""CACHE: every config field must participate in the result-cache key.

``runtime/cache.py`` addresses cached :class:`RunResult` payloads by a
SHA-256 over the run's configuration.  A config field that does *not*
ride the key is a stale-cache bug waiting to happen: two runs differing
only in that field collapse onto one cache entry and the second run is
served the first run's results.

``CACHE001`` cross-references the fields of the tracked config
dataclasses (``SimConfig``, ``MeasurementConfig``, ``TelemetryConfig``)
against the body of the key function (``config_key``):

* ``asdict(param)`` covers every field of the parameter's annotated
  class, *recursively* -- a covered class whose field annotation names
  another tracked dataclass covers that class too (``SimConfig.telemetry:
  Optional[TelemetryConfig]`` carries TelemetryConfig into the key);
* a direct ``param.field`` attribute read covers that single field;
* a field can be exempted by name in a module-level
  ``CACHE_KEY_EXEMPT = {"Class.field", ...}`` set next to the key
  function, or inline on the field with ``# repro: allow[CACHE001] why``.

``CACHE002`` flags class-level state on a tracked config class: a plain
class attribute or ``ClassVar`` is not a dataclass field, so
``asdict()`` -- and therefore an asdict-built key -- silently skips it
even though it can steer behaviour.  Such a knob must become a real
field, be read into the key explicitly, or be exempted like a field.

``CACHE003`` guards the scheduler's purity contract from the other
side.  Execution-plan dataclasses (``Plan``) deliberately stay *out* of
the cache key -- scheduling must never change results -- so every one
of their fields must be accounted for explicitly: either it rides the
key (a param of the key function reads it), or it is declared
scheduling-only in a module-level ``RESULT_NEUTRAL = {"Plan.field",
...}`` set next to the class.  A new Plan knob that is neither keyed
nor declared fails the lint, so a future field that *does* change
results cannot silently alias cached entries.

If the analyzed set contains tracked dataclasses but no key function
(e.g. linting a single file), the checker stays silent rather than
flagging everything: completeness is only decidable over a set that
includes the key construction.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, Rule, call_name
from ..index import ClassInfo, FunctionInfo, ProjectIndex

#: Dataclasses whose fields must all participate in the cache key.
TRACKED_CONFIG_CLASSES = (
    "SimConfig",
    "MeasurementConfig",
    "TelemetryConfig",
)

#: Execution-plan dataclasses: fields steer scheduling, never results,
#: and each must be keyed or declared in ``RESULT_NEUTRAL`` (CACHE003).
SCHEDULER_CONFIG_CLASSES = ("Plan",)

#: Name of the function that builds the cache key payload.
KEY_FUNCTION = "config_key"

#: Module-level set naming deliberately-unfingerprinted fields.
EXEMPT_SET_NAME = "CACHE_KEY_EXEMPT"

#: Module-level set declaring scheduling-only plan fields.
NEUTRAL_SET_NAME = "RESULT_NEUTRAL"


class CacheKeyChecker(Checker):
    name = "cache"
    rules = (
        Rule("CACHE001",
             "config dataclass field missing from the cache key"),
        Rule("CACHE002",
             "class-level state on a config dataclass is invisible to "
             "asdict() and so to the cache key"),
        Rule("CACHE003",
             "execution-plan field neither rides the cache key nor is "
             "declared result-neutral"),
    )

    def finalize(self, index: ProjectIndex) -> Iterable[Finding]:
        tracked: Dict[str, ClassInfo] = {}
        for name in TRACKED_CONFIG_CLASSES:
            info = index.resolve_base(name)
            if info is not None and info.is_dataclass:
                tracked[name] = info
        plans: Dict[str, ClassInfo] = {}
        for name in SCHEDULER_CONFIG_CLASSES:
            info = index.resolve_base(name)
            if info is not None and info.is_dataclass:
                plans[name] = info
        if not tracked and not plans:
            return

        key_functions = index.functions.get(KEY_FUNCTION, [])
        if not key_functions:
            return

        yield from self._plan_findings(index, plans, key_functions)
        if not tracked:
            return

        covered_classes: Set[str] = set()
        covered_fields: Set[Tuple[str, str]] = set()
        exempt: Set[str] = set()
        for func in key_functions:
            file_classes, file_fields = _coverage(func, tracked)
            covered_classes |= file_classes
            covered_fields |= file_fields
            exempt |= _exemptions(func)

        # asdict() recurses into nested dataclasses: a covered class
        # whose field annotation mentions a tracked class covers it too.
        changed = True
        while changed:
            changed = False
            for name in list(covered_classes):
                info = tracked.get(name)
                if info is None:
                    continue
                for annotation in info.fields.values():
                    for other in tracked:
                        if other in annotation and other not in covered_classes:
                            covered_classes.add(other)
                            changed = True

        for name, info in sorted(tracked.items()):
            for field_name, _annotation in info.fields.items():
                if name in covered_classes:
                    continue
                if (name, field_name) in covered_fields:
                    continue
                if f"{name}.{field_name}" in exempt:
                    continue
                yield self.finding_at(
                    "CACHE001", info.relpath,
                    _field_line(index, info, field_name),
                    f"{name}.{field_name} does not participate in the "
                    f"cache key built by {KEY_FUNCTION}(); a run differing "
                    f"only in this field would be served a stale cached "
                    f"result (add it to the key or to {EXEMPT_SET_NAME})",
                )
            # Class-level attributes never ride asdict(), so full-class
            # coverage does not cover them -- only an explicit read does.
            for attr in sorted(info.class_attrs):
                if attr.startswith("__"):
                    continue
                if (name, attr) in covered_fields:
                    continue
                if f"{name}.{attr}" in exempt:
                    continue
                yield self.finding_at(
                    "CACHE002", info.relpath,
                    _field_line(index, info, attr),
                    f"{name}.{attr} is class-level state: asdict() skips "
                    f"it, so it never reaches the cache key built by "
                    f"{KEY_FUNCTION}() even though it can steer behaviour "
                    f"(make it a field, key it explicitly, or add it to "
                    f"{EXEMPT_SET_NAME})",
                )

    def _plan_findings(
        self,
        index: ProjectIndex,
        plans: Dict[str, ClassInfo],
        key_functions: List[FunctionInfo],
    ) -> Iterable[Finding]:
        """CACHE003: each plan field is keyed or declared result-neutral."""
        covered_classes: Set[str] = set()
        covered_fields: Set[Tuple[str, str]] = set()
        for func in key_functions:
            file_classes, file_fields = _coverage(func, plans)
            covered_classes |= file_classes
            covered_fields |= file_fields
        for name, info in sorted(plans.items()):
            neutral = _neutral_declarations(index, info)
            for field_name in info.fields:
                if name in covered_classes:
                    continue
                if (name, field_name) in covered_fields:
                    continue
                if f"{name}.{field_name}" in neutral:
                    continue
                yield self.finding_at(
                    "CACHE003", info.relpath,
                    _field_line(index, info, field_name),
                    f"{name}.{field_name} neither rides the cache key "
                    f"built by {KEY_FUNCTION}() nor is declared "
                    f"scheduling-only in {NEUTRAL_SET_NAME}; a knob that "
                    f"changes results outside the key would alias cached "
                    f"entries (key it, or declare "
                    f"'{name}.{field_name}' in {NEUTRAL_SET_NAME})",
                )


def _coverage(
    func: FunctionInfo, tracked: Dict[str, ClassInfo]
) -> Tuple[Set[str], Set[Tuple[str, str]]]:
    """(classes fully covered, (class, field) pairs covered) by ``func``."""
    param_class: Dict[str, str] = {}
    for arg in (
        list(func.node.args.posonlyargs)
        + list(func.node.args.args)
        + list(func.node.args.kwonlyargs)
    ):
        if arg.annotation is None:
            continue
        annotation = _text(arg.annotation)
        for name in tracked:
            if name in annotation:
                param_class[arg.arg] = name

    classes: Set[str] = set()
    fields: Set[Tuple[str, str]] = set()
    for node in ast.walk(func.node):
        if isinstance(node, ast.Call):
            dotted = call_name(node)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == "asdict":
                for inner in node.args:
                    for sub in ast.walk(inner):
                        if (
                            isinstance(sub, ast.Name)
                            and sub.id in param_class
                        ):
                            classes.add(param_class[sub.id])
                        elif isinstance(sub, ast.Call):
                            ctor = call_name(sub)
                            if ctor in tracked:
                                classes.add(ctor)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id in param_class
        ):
            fields.add((param_class[node.value.id], node.attr))
    return classes, fields


def _exemptions(func: FunctionInfo) -> Set[str]:
    """``CACHE_KEY_EXEMPT`` entries from the key function's module."""
    return _string_set(func.source.tree, EXEMPT_SET_NAME)


def _neutral_declarations(index: ProjectIndex, info: ClassInfo) -> Set[str]:
    """``RESULT_NEUTRAL`` entries from the plan class's own module.

    The declaration must sit next to the class it describes -- a neutral
    set in some other file does not count -- so adding a plan field and
    blessing it are always one reviewable diff.
    """
    for source in index.files:
        if source.relpath == info.relpath:
            return _string_set(source.tree, NEUTRAL_SET_NAME)
    return set()


def _string_set(tree: ast.Module, set_name: str) -> Set[str]:
    """String elements of a module-level ``NAME = {...}`` assignment."""
    found: Set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == set_name:
                for element in getattr(node.value, "elts", ()):
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        found.add(element.value)
    return found


def _field_line(index: ProjectIndex, info: ClassInfo,
                field_name: str) -> int:
    """Line of ``field_name``'s declaration inside ``info``'s class."""
    for source in index.files:
        if source.relpath != info.relpath:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and node.name == info.name:
                for item in node.body:
                    if (
                        isinstance(item, ast.AnnAssign)
                        and isinstance(item.target, ast.Name)
                        and item.target.id == field_name
                    ):
                        return item.lineno
                    if isinstance(item, ast.Assign) and any(
                        isinstance(t, ast.Name) and t.id == field_name
                        for t in item.targets
                    ):
                        return item.lineno
                return node.lineno
    return info.line


def _text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover
        return ""
