"""Hot-path discipline rules (HOT family).

The saturation-speed steppers (PRs 3 and 7) are fast because the
per-cycle closures allocate nothing and chase no long attribute chains;
these rules keep that property as the hot set grows.  "Hot" is a
whole-program fact: the set of functions reachable over the project
call graph from the stepper roots --

* ``Network.step`` / ``Network._step_fast`` / ``Network._step_reference``
  (and ``step``/``cycle``-shaped methods of classes in hot-domain
  files), and
* every *nested* function defined in a hot-domain file: the compiled
  step closures in ``sim/routers/specialized.py`` are nested defs
  returned by cold module-level factories, so the factories stay
  un-checked while the closures they emit are roots.

Reachability expands only through ``sim``/``hot``-domain files -- a
config ``validate()`` or a telemetry exporter shared with cold code
does not drag its whole module into the hot set.

Rules, each escapable with ``# repro: hot-ok[reason]`` on (or directly
above) the line:

* ``HOT001`` -- comprehension/generator allocation anywhere in a hot
  function, and list/dict/set display literals inside its loops (a
  fresh container per cycle per iteration).
* ``HOT002`` -- ``lambda``/nested ``def`` creation inside a hot
  function (a new code object binding per call).
* ``HOT003`` -- string formatting and logging (f-strings, ``print``,
  ``str.format``, ``logging``/``logger`` calls) in hot functions,
  except inside ``raise``/``assert`` error paths.
* ``HOT004`` -- multi-level attribute chains (``self.a.b`` and deeper)
  in loop bodies, one finding per distinct chain per loop; hoist the
  lookup into a local before the loop.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core import Checker, Finding, Rule, SourceFile, call_name
from ..index import FunctionNode, ProjectIndex

#: Method names that make a class's method a hot root when its class
#: lives in a hot-domain file.
ROOT_METHOD_NAMES = frozenset({
    "step", "_step_fast", "_step_reference", "cycle",
})

#: Logging receiver names: ``log.debug(...)``, ``logger.info(...)``.
_LOG_RECEIVERS = frozenset({"log", "logger", "logging"})
_LOG_METHODS = frozenset({
    "debug", "info", "warning", "warn", "error", "exception",
    "critical", "log",
})


class HotPathChecker(Checker):
    """HOT001-004: allocation-free discipline over the stepper's reach."""

    name = "hot"
    rules = (
        Rule(
            "HOT001",
            "per-cycle container allocation in a hot function",
        ),
        Rule(
            "HOT002",
            "lambda/closure creation in a hot function",
        ),
        Rule(
            "HOT003",
            "string formatting or logging in a hot function",
        ),
        Rule(
            "HOT004",
            "uncached multi-level attribute chain in a hot loop",
        ),
    )

    def finalize(self, index: ProjectIndex) -> Iterable[Finding]:
        hot = _hot_functions(index)
        for fn in sorted(hot.values(), key=lambda n: n.source_key):
            source = index.modules[fn.relpath].source
            yield from self._check_function(source, fn)

    # ------------------------------------------------------------------
    # Per-function rule scan.
    # ------------------------------------------------------------------

    def _check_function(
        self, source: SourceFile, fn: FunctionNode
    ) -> Iterable[Finding]:
        label = fn.qualname.split("::", 1)[-1]
        chains_seen: Set[Tuple[int, str]] = set()
        loop_bound: Dict[int, Set[str]] = {}

        def handle(node: ast.AST, in_loop: bool, in_raise: bool,
                   loop: Optional[ast.AST]) -> Iterable[Finding]:
            if isinstance(node, (ast.Raise, ast.Assert)):
                in_raise = True
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield self.finding(
                    "HOT002", source, node,
                    f"nested def '{node.name}' created on every "
                    f"call of hot '{label}'; define it once outside",
                )
                return  # Its body is its own graph node.
            if isinstance(node, ast.Lambda):
                yield self.finding(
                    "HOT002", source, node,
                    f"lambda allocated on every call of hot "
                    f"'{label}'; hoist it to module/class scope",
                )
                return
            if in_loop and loop is not None:
                chain = _maximal_chain(node)
                if chain is not None:
                    # The subtree is pure attribute hops; flag the
                    # maximal chain once and do not descend (the
                    # sub-chains would double-report).
                    bound = loop_bound.setdefault(
                        id(loop), _bound_names(loop)
                    )
                    if chain.split(".", 1)[0] not in bound:
                        yield from self._check_chain(
                            source, label, node, chain, loop,
                            chains_seen,
                        )
                    return
            yield from self._check_expr(
                source, label, node, in_loop, in_raise,
            )
            yield from walk(node, in_loop, in_raise, loop)

        def walk(node: ast.AST, in_loop: bool, in_raise: bool,
                 loop: Optional[ast.AST]) -> Iterable[Finding]:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                # The iterator expression evaluates once; only the body
                # (and else) runs per iteration.
                yield from handle(node.target, in_loop, in_raise, loop)
                yield from handle(node.iter, in_loop, in_raise, loop)
                for stmt in list(node.body) + list(node.orelse):
                    yield from handle(stmt, True, in_raise, node)
                return
            if isinstance(node, ast.While):
                # The test re-evaluates every iteration.
                for stmt in [node.test] + list(node.body) + list(
                    node.orelse
                ):
                    yield from handle(stmt, True, in_raise, node)
                return
            for child in ast.iter_child_nodes(node):
                yield from handle(child, in_loop, in_raise, loop)

        yield from walk(fn.node, False, False, None)

    def _check_expr(
        self,
        source: SourceFile,
        label: str,
        node: ast.AST,
        in_loop: bool,
        in_raise: bool,
    ) -> Iterable[Finding]:
        if isinstance(
            node, (ast.ListComp, ast.DictComp, ast.SetComp,
                   ast.GeneratorExp)
        ) and not in_raise:
            kind = type(node).__name__
            yield self.finding(
                "HOT001", source, node,
                f"{kind} allocates a fresh container on every call of "
                f"hot '{label}'; precompute or reuse a scratch buffer",
            )
            return
        if (
            in_loop
            and not in_raise
            and isinstance(node, (ast.List, ast.Dict, ast.Set))
        ):
            kind = type(node).__name__.lower()
            yield self.finding(
                "HOT001", source, node,
                f"{kind} literal allocated per iteration in a loop of "
                f"hot '{label}'; hoist or reuse a scratch container",
            )
            return
        if isinstance(node, ast.JoinedStr) and not in_raise:
            yield self.finding(
                "HOT003", source, node,
                f"f-string formatted on the hot path in '{label}'; "
                f"move formatting to the error/reporting path",
            )
            return
        if isinstance(node, ast.Call) and not in_raise:
            yield from self._check_call(source, label, node)

    def _check_call(
        self, source: SourceFile, label: str, node: ast.Call
    ) -> Iterable[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "print":
            yield self.finding(
                "HOT003", source, node,
                f"print() on the hot path in '{label}'",
            )
            return
        if isinstance(func, ast.Attribute):
            receiver = func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in _LOG_RECEIVERS
                and func.attr in _LOG_METHODS
            ):
                yield self.finding(
                    "HOT003", source, node,
                    f"logging call on the hot path in '{label}'; "
                    f"gate it behind a cold branch or drop it",
                )
                return
            dotted = call_name(func)
            if dotted is not None and dotted.startswith("logging."):
                yield self.finding(
                    "HOT003", source, node,
                    f"logging call on the hot path in '{label}'",
                )
                return
            if func.attr == "format" and isinstance(
                receiver, (ast.Constant, ast.JoinedStr)
            ):
                yield self.finding(
                    "HOT003", source, node,
                    f"str.format on the hot path in '{label}'",
                )

    def _check_chain(
        self,
        source: SourceFile,
        label: str,
        node: ast.AST,
        chain: str,
        loop: ast.AST,
        chains_seen: Set[Tuple[int, str]],
    ) -> Iterable[Finding]:
        key = (id(loop), chain)
        if key in chains_seen:
            return
        chains_seen.add(key)
        yield self.finding(
            "HOT004", source, node,
            f"attribute chain '{chain}' re-resolved per iteration in a "
            f"loop of hot '{label}'; cache it in a local before the "
            f"loop",
        )


# ----------------------------------------------------------------------
# Hot-set computation.
# ----------------------------------------------------------------------


def _eligible(relpath: str) -> bool:
    """Files whose code can be 'hot' at all.

    Test modules exercise hot code but do not run per cycle, and the
    checked-mode validation probes are instrumentation that is
    deliberately off the fast path -- both stay out of the hot set.
    """
    name = relpath.rsplit("/", 1)[-1]
    if name.startswith("test_") or name == "conftest.py":
        return False
    if "/validation/" in relpath:
        return False
    return True


def _hot_domain(index: ProjectIndex, relpath: str) -> bool:
    record = index.modules.get(relpath)
    return (
        record is not None
        and _eligible(relpath)
        and record.source.in_domain("hot")
    )


def _sim_domain(index: ProjectIndex, relpath: str) -> bool:
    record = index.modules.get(relpath)
    return (
        record is not None
        and _eligible(relpath)
        and record.source.in_domain("sim", "hot")
    )


def _hot_roots(index: ProjectIndex) -> List[FunctionNode]:
    roots: List[FunctionNode] = []
    for fn in index.nodes.values():
        if not _hot_domain(index, fn.relpath):
            continue
        if fn.nested:
            roots.append(fn)
        elif fn.class_name is not None and fn.name in ROOT_METHOD_NAMES:
            roots.append(fn)
    return roots


def _hot_functions(index: ProjectIndex) -> Dict[str, FunctionNode]:
    """Roots plus everything they reach inside sim/hot-domain files."""
    roots = _hot_roots(index)
    return index.reachable(
        roots, keep=lambda n: _sim_domain(index, n.relpath)
    )


def _bound_names(loop: ast.AST) -> Set[str]:
    """Names (re)bound anywhere inside ``loop`` -- chains rooted at
    these are loop-varying, so "hoist before the loop" does not apply."""
    bound: Set[str] = set()
    for node in ast.walk(loop):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(node.name)
    return bound


def _maximal_chain(node: ast.AST) -> Optional[str]:
    """Dotted text of a >=2-hop Load attribute chain rooted at a name.

    Only *maximal* chains count (the walk hands us every node; a chain's
    sub-chains are reached as children of an Attribute parent and are
    filtered by the caller's traversal order): for ``self.a.b`` the
    outermost Attribute yields ``"self.a.b"`` and the inner ``self.a``
    is skipped because its parent was already an Attribute.  Call
    receivers count too -- ``self.a.b.m()`` re-resolves ``self.a.b``
    per iteration just the same.
    """
    if not isinstance(node, ast.Attribute):
        return None
    if not isinstance(node.ctx, ast.Load):
        return None
    hops = 0
    probe: ast.AST = node
    while isinstance(probe, ast.Attribute):
        hops += 1
        probe = probe.value
    if hops < 2 or not isinstance(probe, ast.Name):
        return None
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return None
