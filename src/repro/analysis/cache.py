"""Content-addressed on-disk cache of per-module analysis findings.

Mirrors the result-cache shape from :mod:`repro.runtime.cache`: one
JSON file per entry, sharded by key prefix, written atomically (temp
file + rename) so concurrent runs cannot corrupt each other.

Two kinds of entry share the store:

* **per-module** -- the raw (pre-suppression, pre-baseline) findings
  every checker's ``check_file`` produced for one module, keyed on the
  module's content fingerprint, the whole-project index signature, and
  the rule-set fingerprint;
* **project** -- the combined ``finalize`` findings of one analysis
  run, keyed on the sorted set of module fingerprints plus the same
  index/rule-set components.

The index signature hashes *indexed facts* (class shapes, call edges,
domains), not source bytes, so a comment-only edit re-analyzes exactly
one module: its own fingerprint rotates, every other module's key is
unchanged.  Editing anything under ``repro/analysis`` rotates the
rule-set fingerprint and with it every key, so a checker change can
never serve stale findings -- the same invariant
:func:`repro.runtime.cache.code_fingerprint` gives the result cache.

Suppression filtering, SUP001/SUP002, and baseline matching are *not*
cached: they are recomputed from the raw findings on every run, so a
warm run is byte-for-byte identical to a cold one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .core import Finding

#: Analysis-cache format version; bump to invalidate every entry.
ANALYSIS_CACHE_FORMAT = 1

_ruleset_fingerprint: Optional[str] = None


def ruleset_fingerprint() -> str:
    """Hash of every source file the cached findings depend on.

    Covers the whole ``repro.analysis`` package -- core, index, driver,
    and every checker -- because a finding is a function of all of
    them.  Computed once per process.
    """
    global _ruleset_fingerprint
    if _ruleset_fingerprint is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(path.relative_to(package_root).as_posix().encode())
            digest.update(path.read_bytes())
        _ruleset_fingerprint = digest.hexdigest()
    return _ruleset_fingerprint


def _key(payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def module_key(module_fingerprint: str, index_signature: str,
               ruleset: Optional[str] = None) -> str:
    """Content address of one module's ``check_file`` findings."""
    return _key({
        "format": ANALYSIS_CACHE_FORMAT,
        "kind": "module",
        "module": module_fingerprint,
        "index": index_signature,
        "ruleset": ruleset if ruleset is not None else ruleset_fingerprint(),
    })


def project_key(module_fingerprints: Sequence[str], index_signature: str,
                ruleset: Optional[str] = None) -> str:
    """Content address of one run's combined ``finalize`` findings.

    Order-independent over the module set: the same tree analyzed from
    a different argument order hits the same entry.
    """
    return _key({
        "format": ANALYSIS_CACHE_FORMAT,
        "kind": "project",
        "modules": sorted(set(module_fingerprints)),
        "index": index_signature,
        "ruleset": ruleset if ruleset is not None else ruleset_fingerprint(),
    })


def default_analysis_cache_dir() -> Path:
    """``$REPRO_ANALYSIS_CACHE_DIR``, else ``./.analysis-cache``."""
    env = os.environ.get("REPRO_ANALYSIS_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".analysis-cache")


class AnalysisCache:
    """On-disk raw-finding store addressed by :func:`module_key` /
    :func:`project_key`."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = (
            Path(directory) if directory else default_analysis_cache_dir()
        )
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Finding]]:
        """The cached findings for ``key``, or None (a recorded miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            findings = [Finding(**entry) for entry in data["findings"]]
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return findings

    def put(self, key: str, findings: Sequence[Finding]) -> Path:
        """Store ``findings`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": ANALYSIS_CACHE_FORMAT,
            "key": key,
            "findings": [finding.to_dict() for finding in findings],
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(
            1 for p in self.directory.glob("*/*.json")
            if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*/*.json"):
                path.unlink()
                removed += 1
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
