"""Text and JSON rendering of an analysis run."""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Finding


def render_text(result, verbose: bool = False) -> str:
    """Human-readable report: one line per new finding, then a summary.

    ``verbose`` also lists baselined (grandfathered) findings, marked
    so they are visually distinct from failures.
    """
    lines: List[str] = []
    for finding in sorted(result.new_findings, key=Finding.sort_key):
        lines.append(str(finding))
    if verbose:
        for finding in sorted(result.baselined, key=Finding.sort_key):
            lines.append(f"{finding}  [baselined]")
    lines.append(render_summary(result))
    return "\n".join(lines)


def render_summary(result) -> str:
    per_rule: Dict[str, int] = {}
    for finding in result.new_findings:
        per_rule[finding.rule] = per_rule.get(finding.rule, 0) + 1
    breakdown = (
        " (" + ", ".join(
            f"{rule}:{count}" for rule, count in sorted(per_rule.items())
        ) + ")"
        if per_rule else ""
    )
    return (
        f"repro.analysis: {len(result.new_findings)} new finding(s)"
        f"{breakdown}, {len(result.baselined)} baselined, "
        f"{result.suppressed_count} suppressed, "
        f"{len(result.files)} file(s), "
        f"{result.checker_count} checker(s), "
        f"{result.elapsed_seconds:.2f}s"
    )


def render_json(result) -> str:
    """Machine-readable report (stable key order) for CI artifacts."""
    payload = {
        "findings": [
            f.to_dict()
            for f in sorted(result.new_findings, key=Finding.sort_key)
        ],
        "baselined": [
            f.to_dict()
            for f in sorted(result.baselined, key=Finding.sort_key)
        ],
        "summary": {
            # No timings here: a warm (cached) run must render
            # byte-identically to a cold one; --stats carries them.
            "new": len(result.new_findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed_count,
            "files": len(result.files),
            "checkers": result.checker_count,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_stats(result) -> str:
    """Per-checker timings and cache behaviour (for ``--stats``).

    Goes to stderr so it never perturbs the machine-readable report.
    """
    stats = result.stats
    lines = [
        f"modules: {stats.modules_analyzed} analyzed, "
        f"{stats.modules_cached} cached"
        + (", finalize cached" if stats.finalize_cached else "")
        + f", {stats.workers} worker(s), {stats.elapsed_seconds:.2f}s"
    ]
    for name in sorted(
        stats.checker_seconds, key=stats.checker_seconds.get, reverse=True
    ):
        lines.append(f"  {name:8s} {stats.checker_seconds[name]:7.3f}s")
    return "\n".join(lines)
