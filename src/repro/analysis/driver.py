"""Analysis driver: collect, index, check -- incrementally, in parallel.

The driver owns the framework-level rules:

* ``PARSE001`` -- a file in the analyzed set does not parse;
* ``SUP001`` -- a ``# repro: allow[...]`` suppression without a reason
  (silent blanket waivers are themselves findings);
* ``SUP002`` -- a suppression (``allow[...]`` or ``hot-ok[...]``) that
  no longer matches any finding: stale escapes cannot accumulate.

Incrementality: when an :class:`~repro.analysis.cache.AnalysisCache`
is attached, each module's raw ``check_file`` findings are cached under
a key built from the module's content fingerprint, the project index
signature, and the rule-set fingerprint; the combined ``finalize``
findings are cached per project under the sorted module-fingerprint
set.  A warm run re-analyzes zero unchanged modules and renders
byte-identical JSON, because suppression filtering, SUP001/SUP002, and
baseline matching always run fresh over the (cached) raw findings.

Parallelism: cold modules fan out through the runtime's work-stealing
:class:`~repro.runtime.scheduler.JobQueue` on a small thread pool.
Checkers are stateless (``check_file`` is a pure function of the source
and the completed index), so per-file passes run concurrently and the
findings merge deterministically in collection order.

Directories named ``fixtures`` (and caches/VCS internals) are excluded
by default: the checker test fixtures under ``tests/analysis/fixtures``
contain deliberately-bad code that must not fail the repository's own
``--check`` run.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union,
)

from .baseline import Baseline
from .cache import AnalysisCache, module_key, project_key, ruleset_fingerprint
from .core import Checker, Finding, SourceFile, Suppression
from .index import ProjectIndex

#: Directory names never descended into.
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "fixtures", "build", "dist",
     ".analysis-cache"}
)

#: Upper bound on analysis worker threads; per-file checking is cheap
#: enough that more threads only add scheduling overhead.
MAX_WORKERS = 8


@dataclass
class AnalysisStats:
    """Where one run's time went and what the cache did.

    Never part of the JSON report -- warm and cold runs must render
    identically; ``--stats`` prints this to stderr instead.
    """

    modules_analyzed: int = 0
    modules_cached: int = 0
    finalize_cached: bool = False
    workers: int = 1
    #: Attributed seconds per checker name (summed across threads, so
    #: totals can exceed wall time); ``check_file`` and ``finalize``
    #: time both land on the checker that spent it.
    checker_seconds: Dict[str, float] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def merge_timings(self, timings: Dict[str, float]) -> None:
        for name, seconds in timings.items():
            self.checker_seconds[name] = (
                self.checker_seconds.get(name, 0.0) + seconds
            )


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    files: List[SourceFile] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    checker_count: int = 0
    stats: AnalysisStats = field(default_factory=AnalysisStats)

    @property
    def ok(self) -> bool:
        return not self.new_findings

    @property
    def all_findings(self) -> List[Finding]:
        return self.new_findings + self.baselined

    @property
    def elapsed_seconds(self) -> float:
        return self.stats.elapsed_seconds


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            relative_parts = candidate.relative_to(path).parts[:-1]
            if any(part in EXCLUDED_DIR_NAMES for part in relative_parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return list(seen)


def resolve_workers(workers: Optional[int], jobs: int) -> int:
    """Thread count for the cold per-file pass."""
    if workers is not None:
        return max(1, workers)
    return max(1, min(MAX_WORKERS, os.cpu_count() or 1, jobs))


def analyze(
    paths: Sequence[Union[str, Path]],
    checkers: Optional[Sequence[Checker]] = None,
    root: Union[str, Path, None] = None,
    baseline: Optional[Baseline] = None,
    cache: Optional[AnalysisCache] = None,
    workers: Optional[int] = None,
) -> AnalysisResult:
    """Run ``checkers`` (default: the full project set) over ``paths``.

    ``cache`` is opt-in: without one every module is analyzed cold
    (the hermetic default the test suite relies on).
    """
    from .checkers import default_checkers

    # repro: allow[DET002] wall-clock stats reporting only; never in findings
    started = time.perf_counter()
    stats = AnalysisStats()
    active = list(checkers) if checkers is not None else default_checkers()
    for checker in active:
        checker.reset()
    base = Path(root) if root is not None else Path.cwd()

    sources: List[SourceFile] = []
    driver_findings: List[Finding] = []
    for path in collect_files(paths):
        source = SourceFile(path, root=base)
        sources.append(source)
        if source.syntax_error is not None:
            driver_findings.append(Finding(
                rule="PARSE001",
                severity="error",
                path=source.relpath,
                line=source.syntax_error.lineno or 1,
                message=f"file does not parse: {source.syntax_error.msg}",
                checker="driver",
            ))
        for suppression in source.suppressions:
            if not suppression.has_reason:
                if suppression.kind == "hot-ok":
                    hint = ("the bracket content is the reason; write "
                            "'# repro: hot-ok[<why>]'")
                else:
                    hint = (f"write '# repro: allow[{suppression.rule_id}]"
                            f" <why>'")
                driver_findings.append(Finding(
                    rule="SUP001",
                    severity="error",
                    path=source.relpath,
                    line=suppression.line,
                    message=(
                        f"suppression {suppression.spelling} has no "
                        f"reason; {hint}"
                    ),
                    checker="driver",
                ))

    index = ProjectIndex()
    for source in sources:
        index.add_file(source)

    signature = index.signature() if cache is not None else ""
    ruleset = ruleset_fingerprint() if cache is not None else ""

    file_findings = _check_files(
        sources, index, active, cache, signature, ruleset, workers, stats,
    )
    finalize_findings = _finalize(
        index, active, cache, signature, ruleset, stats,
    )

    raw_findings = list(driver_findings)
    for source in sources:
        raw_findings.extend(file_findings.get(source.relpath, ()))
    raw_findings.extend(finalize_findings)

    by_path: Dict[str, SourceFile] = {s.relpath: s for s in sources}
    kept: List[Finding] = []
    suppressed = 0
    used: Set[Tuple[str, Suppression]] = set()
    for finding in raw_findings:
        source = by_path.get(finding.path)
        if (
            source is not None
            and finding.rule not in ("SUP001", "SUP002", "PARSE001")
        ):
            matching = source.suppressors(finding.rule, finding.line)
            if matching:
                suppressed += 1
                for sup in matching:
                    used.add((source.relpath, sup))
                continue
        kept.append(finding)
    active_rules = {
        rule.id for checker in active for rule in checker.rules
    }
    kept.extend(_stale_suppressions(sources, used, active_rules))
    kept.sort(key=Finding.sort_key)

    new, old = (baseline or Baseline()).split(kept)
    stats.elapsed_seconds = time.perf_counter() - started  # repro: allow[DET002] wall-clock stats reporting only
    return AnalysisResult(
        files=sources,
        new_findings=new,
        baselined=old,
        suppressed_count=suppressed,
        checker_count=len(active),
        stats=stats,
    )


def _check_files(
    sources: List[SourceFile],
    index: ProjectIndex,
    active: List[Checker],
    cache: Optional[AnalysisCache],
    signature: str,
    ruleset: str,
    workers: Optional[int],
    stats: AnalysisStats,
) -> Dict[str, List[Finding]]:
    """Per-file pass: serve warm modules from the cache, fan the cold
    ones out through the runtime scheduler's chunked job queue."""
    from ..runtime.scheduler import Job, JobQueue, Plan

    file_findings: Dict[str, List[Finding]] = {}
    cold: List[Tuple[SourceFile, Optional[str]]] = []
    for source in sources:
        key: Optional[str] = None
        if cache is not None:
            record = index.modules[source.relpath]
            key = module_key(record.fingerprint, signature, ruleset)
            cached = cache.get(key)
            if cached is not None:
                file_findings[source.relpath] = cached
                stats.modules_cached += 1
                continue
        cold.append((source, key))

    stats.modules_analyzed = len(cold)
    if not cold:
        stats.workers = 0
        return file_findings

    worker_count = resolve_workers(workers, len(cold))
    stats.workers = worker_count
    jobs = [
        Job(index=i, key=key or "", payload=(source, key))
        for i, (source, key) in enumerate(cold)
    ]
    plan = Plan(manifest=False)
    queue = JobQueue(
        jobs,
        chunk_size=plan.resolve_chunk_size(len(jobs), worker_count),
        workers=worker_count,
    )
    queue_lock = threading.Lock()
    merge_lock = threading.Lock()

    def drain(worker: int) -> None:
        timings: Dict[str, float] = {}
        local: Dict[str, List[Finding]] = {}
        while True:
            with queue_lock:
                chunk = queue.pull(worker)
            if chunk is None:
                break
            # repro: allow[DET002] wall-clock stats reporting only
            chunk_started = time.perf_counter()
            for job in chunk.jobs:
                source, key = job.payload
                findings: List[Finding] = []
                for checker in active:
                    # repro: allow[DET002] wall-clock stats reporting only
                    t0 = time.perf_counter()
                    findings.extend(checker.check_file(source, index))
                    timings[checker.name] = (
                        timings.get(checker.name, 0.0)
                        # repro: allow[DET002] wall-clock stats reporting only
                        + time.perf_counter() - t0
                    )
                local[source.relpath] = findings
                if cache is not None and key is not None:
                    cache.put(key, findings)
            with queue_lock:
                queue.chunk_done(
                    chunk, worker,
                    # repro: allow[DET002] wall-clock stats reporting only
                    time.perf_counter() - chunk_started,
                )
        with merge_lock:
            file_findings.update(local)
            stats.merge_timings(timings)

    if worker_count == 1:
        drain(0)
    else:
        threads = [
            threading.Thread(
                target=drain, args=(i,), name=f"repro-analysis-{i}",
            )
            for i in range(worker_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    return file_findings


def _finalize(
    index: ProjectIndex,
    active: List[Checker],
    cache: Optional[AnalysisCache],
    signature: str,
    ruleset: str,
    stats: AnalysisStats,
) -> List[Finding]:
    """Cross-file pass, cached per project (sorted module fingerprints)."""
    key: Optional[str] = None
    if cache is not None:
        key = project_key(
            [record.fingerprint for record in index.modules.values()],
            signature, ruleset,
        )
        cached = cache.get(key)
        if cached is not None:
            stats.finalize_cached = True
            return cached

    findings: List[Finding] = []
    for checker in active:
        # repro: allow[DET002] wall-clock stats reporting only
        t0 = time.perf_counter()
        findings.extend(checker.finalize(index))
        stats.merge_timings(
            # repro: allow[DET002] wall-clock stats reporting only
            {checker.name: time.perf_counter() - t0}
        )
    if cache is not None and key is not None:
        cache.put(key, findings)
    return findings


def _stale_suppressions(
    sources: List[SourceFile],
    used: Set[Tuple[str, Suppression]],
    active_rules: Set[str],
) -> Iterable[Finding]:
    """SUP002 for every reasoned suppression that matched no finding.

    Staleness is judged against the *active* rule set: a ``hot-ok``
    escape is not stale just because a partial run left the HOT checker
    out -- only a full run can prove a marker dead.
    """
    for source in sources:
        for sup in source.suppressions:
            if not sup.has_reason:
                continue  # already SUP001
            if (source.relpath, sup) in used:
                continue
            if not any(sup.matches(rule) for rule in active_rules):
                continue  # the suppressed family did not run
            yield Finding(
                rule="SUP002",
                severity="error",
                path=source.relpath,
                line=sup.line,
                message=(
                    f"stale suppression: {sup.spelling} matches no finding"
                    f" on this line; remove the marker (or fix the code it"
                    f" was excusing)"
                ),
                checker="driver",
            )


def iter_rules(checkers: Optional[Iterable[Checker]] = None):
    """Every rule the analyzer can emit (for ``--list-rules`` and docs)."""
    from .checkers import default_checkers

    from .core import Rule

    yield Rule("PARSE001", "file in the analyzed set does not parse")
    yield Rule("SUP001", "allow[...] suppression without a reason")
    yield Rule("SUP002", "suppression that no longer matches any finding")
    for checker in (checkers if checkers is not None else default_checkers()):
        for rule in checker.rules:
            yield rule
