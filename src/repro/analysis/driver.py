"""Analysis driver: collect files, build the index, run the checkers.

The driver owns the two framework-level rules:

* ``PARSE001`` -- a file in the analyzed set does not parse;
* ``SUP001`` -- a ``# repro: allow[...]`` suppression without a reason
  (silent blanket waivers are themselves findings).

Directories named ``fixtures`` (and caches/VCS internals) are excluded
by default: the checker test fixtures under ``tests/analysis/fixtures``
contain deliberately-bad code that must not fail the repository's own
``--check`` run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .baseline import Baseline
from .core import Checker, Finding, SourceFile
from .index import ProjectIndex

#: Directory names never descended into.
EXCLUDED_DIR_NAMES = frozenset(
    {"__pycache__", ".git", ".venv", "fixtures", "build", "dist"}
)


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    files: List[SourceFile] = field(default_factory=list)
    new_findings: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    suppressed_count: int = 0
    checker_count: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.new_findings

    @property
    def all_findings(self) -> List[Finding]:
        return self.new_findings + self.baselined


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: Dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                seen.setdefault(path.resolve(), None)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            relative_parts = candidate.relative_to(path).parts[:-1]
            if any(part in EXCLUDED_DIR_NAMES for part in relative_parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return list(seen)


def analyze(
    paths: Sequence[Union[str, Path]],
    checkers: Optional[Sequence[Checker]] = None,
    root: Union[str, Path, None] = None,
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Run ``checkers`` (default: the full project set) over ``paths``."""
    from .checkers import default_checkers

    started = time.perf_counter()
    active = list(checkers) if checkers is not None else default_checkers()
    base = Path(root) if root is not None else Path.cwd()

    sources: List[SourceFile] = []
    raw_findings: List[Finding] = []
    for path in collect_files(paths):
        source = SourceFile(path, root=base)
        sources.append(source)
        if source.syntax_error is not None:
            raw_findings.append(Finding(
                rule="PARSE001",
                severity="error",
                path=source.relpath,
                line=source.syntax_error.lineno or 1,
                message=f"file does not parse: {source.syntax_error.msg}",
                checker="driver",
            ))
        for suppression in source.suppressions:
            if not suppression.has_reason:
                raw_findings.append(Finding(
                    rule="SUP001",
                    severity="error",
                    path=source.relpath,
                    line=suppression.line,
                    message=(
                        f"suppression allow[{suppression.rule_id}] has no "
                        f"reason; write '# repro: allow[{suppression.rule_id}]"
                        f" <why>'"
                    ),
                    checker="driver",
                ))

    index = ProjectIndex()
    for source in sources:
        index.add_file(source)

    for checker in active:
        checker.reset()
    for checker in active:
        for source in sources:
            raw_findings.extend(checker.check_file(source, index))
    for checker in active:
        raw_findings.extend(checker.finalize(index))

    by_path: Dict[str, SourceFile] = {s.relpath: s for s in sources}
    kept: List[Finding] = []
    suppressed = 0
    for finding in raw_findings:
        source = by_path.get(finding.path)
        if (
            source is not None
            and finding.rule not in ("SUP001", "PARSE001")
            and source.suppressed(finding.rule, finding.line)
        ):
            suppressed += 1
            continue
        kept.append(finding)
    kept.sort(key=Finding.sort_key)

    new, old = (baseline or Baseline()).split(kept)
    return AnalysisResult(
        files=sources,
        new_findings=new,
        baselined=old,
        suppressed_count=suppressed,
        checker_count=len(active),
        elapsed_seconds=time.perf_counter() - started,
    )


def iter_rules(checkers: Optional[Iterable[Checker]] = None):
    """Every rule the analyzer can emit (for ``--list-rules`` and docs)."""
    from .checkers import default_checkers

    from .core import Rule

    yield Rule("PARSE001", "file in the analyzed set does not parse")
    yield Rule("SUP001", "allow[...] suppression without a reason")
    for checker in (checkers if checkers is not None else default_checkers()):
        for rule in checker.rules:
            yield rule
