"""Committed JSON baseline of grandfathered findings.

A baseline maps finding keys (``path::rule::message`` -- deliberately
line-number-free, see :attr:`repro.analysis.core.Finding.key`) to an
allowed occurrence count.  ``--check`` fails only on findings *beyond*
the baseline, so a legacy violation can be grandfathered without
blinding the linter to a second copy of the same mistake.

The file round-trips exactly (sorted keys, stable JSON) so regenerating
an unchanged baseline produces a byte-identical file and a clean diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .core import Finding

BASELINE_FORMAT = 1


class Baseline:
    """Allowed-finding counts keyed by line-free finding identity."""

    def __init__(self, counts: Union[Dict[str, int], None] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if data.get("format") != BASELINE_FORMAT:
            raise ValueError(
                f"unsupported baseline format {data.get('format')!r} "
                f"in {path} (expected {BASELINE_FORMAT})"
            )
        counts = data.get("findings", {})
        if not isinstance(counts, dict):
            raise ValueError(f"malformed baseline {path}: 'findings' "
                             "must be an object")
        return cls({str(k): int(v) for k, v in counts.items()})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.key] = counts.get(finding.key, 0) + 1
        return cls(counts)

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "format": BASELINE_FORMAT,
            "findings": {k: self.counts[k] for k in sorted(self.counts)},
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into (new, baselined).

        Each baseline entry absorbs up to its recorded count of matching
        findings; any excess (or any unknown key) is new.
        """
        remaining = dict(self.counts)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    def __len__(self) -> int:
        return sum(self.counts.values())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Baseline) and self.counts == other.counts
