"""Cross-file symbol index the checkers resolve names against.

One pass over every parsed source collects, per class: methods,
``self.x`` attribute assignments (including inside nested closures,
which is where probe wrappers assign), properties, literal ``__slots__``
tuples, dataclass fields with their annotation text, and base-class
names.  Top-level functions are indexed by name so cross-file checkers
(e.g. the cache-key checker looking for ``config_key``) can find their
definition wherever it lives in the analyzed set.

On top of the symbol tables the index builds the whole-program
machinery the CONC and HOT checkers need:

* a :class:`FunctionNode` per function definition -- top-level,
  method, or nested closure -- with the call references its body makes;
* a conservative call graph over those nodes.  A bare call resolves to
  every top-level function (and, via ``__init__``, every class) of that
  name; ``self.m()`` resolves within the enclosing class and its
  resolvable bases; ``obj.m()`` resolves to every indexed class method
  named ``m`` (the same any-provider semantics WRAP uses), except that
  a constructor receiver (``Simulator(...).run()``) or a class-name
  receiver (``Network.step``) resolves precisely;
* a content fingerprint per module and a :meth:`ProjectIndex.signature`
  digest over the *indexed facts* -- the incremental driver keys cached
  per-module findings on it, so a comment-only edit elsewhere does not
  invalidate them while any symbol or call-edge change does.

The index is purely syntactic -- no imports are executed -- so it works
identically on the real tree and on throwaway fixture trees.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .core import SourceFile, call_name, decorator_names

#: Method names too ubiquitous for any-provider call resolution: a
#: ``.items()`` or ``.format()`` call says nothing about which class is
#: the receiver, so resolving it to every provider would glue unrelated
#: subsystems into one reachability blob.  Project-meaningful names
#: (``cycle``, ``drain``, ``inject``, ...) stay resolvable.
UBIQUITOUS_METHODS = frozenset({
    "items", "keys", "values", "copy", "join", "split", "rsplit",
    "strip", "lstrip", "rstrip", "encode", "decode", "format",
    "startswith", "endswith", "sort", "reverse", "count", "index",
    "lower", "upper", "title", "replace", "setdefault", "isdigit",
    "partition", "rpartition", "splitlines", "to_dict", "from_dict",
})


@dataclass
class ClassInfo:
    """Everything the checkers need to know about one class definition."""

    name: str
    relpath: str
    line: int
    bases: Tuple[str, ...] = ()
    #: Literal ``__slots__`` entries, or None when the class declares no
    #: ``__slots__`` (or declares one the analyzer cannot read
    #: statically, which is treated as "no slots" -- conservative).
    slots: Optional[Tuple[str, ...]] = None
    methods: Set[str] = field(default_factory=set)
    self_attrs: Set[str] = field(default_factory=set)
    properties: Set[str] = field(default_factory=set)
    class_attrs: Set[str] = field(default_factory=set)
    is_dataclass: bool = False
    #: Dataclass fields in declaration order: name -> annotation source.
    fields: Dict[str, str] = field(default_factory=dict)
    #: ``self.x = Ctor(...)`` assignments: attr -> dotted constructor
    #: name.  How CONC finds the locks/conditions a class owns.
    attr_ctors: Dict[str, str] = field(default_factory=dict)
    #: Method name -> its AST node (first definition wins).
    method_nodes: Dict[str, ast.AST] = field(default_factory=dict)

    def provides(self, attr: str) -> bool:
        """Does an instance of this class expose ``attr``?"""
        return (
            attr in self.methods
            or attr in self.self_attrs
            or attr in self.properties
            or attr in self.class_attrs
            or attr in self.fields
            or (self.slots is not None and attr in self.slots)
        )


@dataclass
class FunctionInfo:
    """One top-level (module-scope) function definition."""

    name: str
    source: SourceFile
    node: ast.FunctionDef


@dataclass(frozen=True)
class CallRef:
    """One call reference made by a function body.

    ``kind`` is how the target was named: ``"bare"`` (``f(...)``),
    ``"self"`` (``self.m(...)``), ``"dotted"`` (``base.m(...)`` with a
    plain-name base -- possibly a class name), ``"ctor"``
    (``Cls(...).m(...)``), or ``"method"`` (``<expr>.m(...)``).
    """

    kind: str
    name: str


@dataclass
class FunctionNode:
    """One function definition in the call graph (any nesting level)."""

    qualname: str
    relpath: str
    name: str
    node: ast.AST
    class_name: Optional[str] = None
    nested: bool = False
    calls: Tuple[CallRef, ...] = ()

    @property
    def source_key(self) -> Tuple[str, int]:
        return (self.relpath, self.node.lineno)


@dataclass
class ModuleRecord:
    """Per-module bookkeeping for the incremental driver."""

    relpath: str
    fingerprint: str
    source: SourceFile


class ProjectIndex:
    """Name -> definitions map over every analyzed source file."""

    def __init__(self) -> None:
        self.files: List[SourceFile] = []
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, List[FunctionInfo]] = {}
        self.modules: Dict[str, ModuleRecord] = {}
        #: Every function definition, keyed by qualname.
        self.nodes: Dict[str, FunctionNode] = {}
        #: Method name -> nodes (any class), for any-provider resolution.
        self._methods_by_name: Dict[str, List[str]] = {}
        #: Bare function name -> nodes (top-level and nested).
        self._functions_by_name: Dict[str, List[str]] = {}
        #: Class name -> {method name -> qualname}.
        self._class_methods: Dict[str, Dict[str, str]] = {}

    def add_file(self, source: SourceFile) -> None:
        self.files.append(source)
        self.modules[source.relpath] = ModuleRecord(
            relpath=source.relpath,
            fingerprint=hashlib.sha256(source.text.encode()).hexdigest(),
            source=source,
        )
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                info = _class_info(node, source)
                self.classes.setdefault(info.name, []).append(info)
        for node in source.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions.setdefault(node.name, []).append(
                    FunctionInfo(node.name, source, node)
                )
        self._index_call_graph(source)

    # ------------------------------------------------------------------
    # Call graph.
    # ------------------------------------------------------------------

    def _index_call_graph(self, source: SourceFile) -> None:
        for fn in _function_defs(source):
            self.nodes[fn.qualname] = fn
            self._functions_by_name.setdefault(fn.name, []).append(
                fn.qualname
            )
            if fn.class_name is not None:
                self._methods_by_name.setdefault(fn.name, []).append(
                    fn.qualname
                )
                self._class_methods.setdefault(
                    fn.class_name, {}
                ).setdefault(fn.name, fn.qualname)

    def function_node(
        self, class_name: Optional[str], name: str,
        relpath: Optional[str] = None,
    ) -> Optional[FunctionNode]:
        """The unique node for ``Class.method`` / bare ``name``, if any."""
        if class_name is not None:
            qual = self._class_methods.get(class_name, {}).get(name)
            return self.nodes.get(qual) if qual else None
        candidates = [
            self.nodes[q] for q in self._functions_by_name.get(name, ())
            if relpath is None or self.nodes[q].relpath == relpath
        ]
        return candidates[0] if len(candidates) == 1 else None

    def resolve_call(
        self, node: FunctionNode, ref: CallRef
    ) -> List[FunctionNode]:
        """Every definition ``ref`` may reach, conservatively."""
        targets: List[FunctionNode] = []
        if ref.kind == "bare":
            for qual in self._functions_by_name.get(ref.name, ()):
                candidate = self.nodes[qual]
                if candidate.class_name is None:
                    targets.append(candidate)
            # A bare call of a class name constructs it.
            init = self._class_methods.get(ref.name, {}).get("__init__")
            if init:
                targets.append(self.nodes[init])
        elif ref.kind == "self":
            resolved = self._resolve_self(node, ref.name)
            if resolved is not None:
                return [resolved]
            return self._any_provider(ref.name)
        elif ref.kind in ("dotted", "ctor"):
            base, _, method = ref.name.rpartition(".")
            qual = self._class_methods.get(base, {}).get(method)
            if qual:
                return [self.nodes[qual]]
            if ref.kind == "dotted":
                return self._any_provider(method)
        elif ref.kind == "method":
            return self._any_provider(ref.name)
        return targets

    def _resolve_self(
        self, node: FunctionNode, method: str
    ) -> Optional[FunctionNode]:
        cls = node.class_name
        seen: Set[str] = set()
        while cls is not None and cls not in seen:
            seen.add(cls)
            qual = self._class_methods.get(cls, {}).get(method)
            if qual:
                return self.nodes[qual]
            info = self.resolve_base(cls)
            cls = info.bases[0] if info is not None and info.bases else None
        return None

    def _any_provider(self, method: str) -> List[FunctionNode]:
        if method in UBIQUITOUS_METHODS:
            return []
        return [
            self.nodes[q] for q in self._methods_by_name.get(method, ())
        ]

    def reachable(
        self,
        roots: Iterable[FunctionNode],
        keep=None,
    ) -> Dict[str, FunctionNode]:
        """Transitive closure over the call graph from ``roots``.

        ``keep`` filters *expansion*: a node failing the predicate is
        neither included nor followed.  Roots always pass.
        """
        frontier = list(roots)
        seen: Dict[str, FunctionNode] = {}
        for root in frontier:
            seen[root.qualname] = root
        while frontier:
            node = frontier.pop()
            for ref in node.calls:
                for target in self.resolve_call(node, ref):
                    if target.qualname in seen:
                        continue
                    if keep is not None and not keep(target):
                        continue
                    seen[target.qualname] = target
                    frontier.append(target)
        return seen

    # ------------------------------------------------------------------
    # Incremental-driver signatures.
    # ------------------------------------------------------------------

    def signature(self) -> str:
        """Digest of every indexed fact (symbols + call edges).

        Two trees with identical signatures resolve identically for
        every cross-file checker question, so cached per-module findings
        keyed on (module fingerprint, this signature) stay valid across
        edits -- comments, docstrings, formatting -- that change no
        indexed fact.
        """
        payload: Dict[str, object] = {}
        for relpath in sorted(self.modules):
            source = self.modules[relpath].source
            classes = sorted(
                (
                    info.name,
                    list(info.bases),
                    sorted(info.methods),
                    sorted(info.self_attrs),
                    sorted(info.properties),
                    sorted(info.class_attrs),
                    list(info.slots) if info.slots is not None else None,
                    sorted(info.fields.items()),
                    sorted(info.attr_ctors.items()),
                    info.is_dataclass,
                )
                for info in self.all_classes()
                if info.relpath == relpath
            )
            functions = sorted(
                (
                    fn.qualname,
                    [(ref.kind, ref.name) for ref in fn.calls],
                )
                for fn in self.nodes.values()
                if fn.relpath == relpath
            )
            payload[relpath] = {
                "classes": classes,
                "functions": functions,
                "domains": sorted(source.domains),
            }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def all_classes(self) -> List[ClassInfo]:
        return [info for infos in self.classes.values() for info in infos]

    def providers(self, attr: str) -> List[ClassInfo]:
        """Every indexed class whose instances expose ``attr``."""
        return [c for c in self.all_classes() if c.provides(attr)]

    def resolve_base(self, name: str) -> Optional[ClassInfo]:
        """The unique class definition for ``name``, if unambiguous."""
        infos = self.classes.get(name, [])
        return infos[0] if len(infos) == 1 else None

    def slots_chain(self, info: ClassInfo) -> Optional[Tuple[str, ...]]:
        """Union of ``__slots__`` over ``info`` and its resolvable bases.

        Returns None when instances may carry a ``__dict__``: the class
        itself (or any base, followed transitively) lacks a literal
        ``__slots__``, lists ``__dict__`` in it, or has a base the index
        cannot resolve (external classes are assumed dict-backed).
        ``object`` and ``Exception``-free leaves terminate the chain.
        """
        seen: Set[str] = set()
        collected: List[str] = []

        def walk(cls: ClassInfo) -> bool:
            if cls.name in seen:
                return True
            seen.add(cls.name)
            if cls.slots is None or "__dict__" in cls.slots:
                return False
            collected.extend(cls.slots)
            for base in cls.bases:
                if base == "object":
                    continue
                resolved = self.resolve_base(base)
                if resolved is None:
                    return False
                if not walk(resolved):
                    return False
            return True

        if not walk(info):
            return None
        return tuple(collected)

    def properties_chain(self, info: ClassInfo) -> Set[str]:
        props: Set[str] = set(info.properties)
        for base in info.bases:
            resolved = self.resolve_base(base)
            if resolved is not None:
                props |= self.properties_chain(resolved)
        return props


def _class_info(node: ast.ClassDef, source: SourceFile) -> ClassInfo:
    decorators = decorator_names(node)
    info = ClassInfo(
        name=node.name,
        relpath=source.relpath,
        line=node.lineno,
        bases=tuple(
            n for n in (call_name(b) for b in node.bases) if n is not None
        ),
        is_dataclass="dataclass" in decorators
        or any(d.endswith(".dataclass") for d in decorators),
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            item_decos = decorator_names(item)
            if "property" in item_decos or any(
                d.endswith(".setter") or d.endswith(".getter")
                or d.endswith(".deleter") for d in item_decos
            ):
                info.properties.add(item.name)
            else:
                info.methods.add(item.name)
                info.method_nodes.setdefault(item.name, item)
            for attr in _self_stores(item):
                info.self_attrs.add(attr)
            for attr, ctor in _self_ctor_stores(item).items():
                info.attr_ctors.setdefault(attr, ctor)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        info.slots = _literal_slots(item.value)
                    else:
                        info.class_attrs.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            name = item.target.id
            if name == "__slots__":
                info.slots = _literal_slots(item.value)
            elif info.is_dataclass and not _is_classvar(item.annotation):
                info.fields[name] = _annotation_text(item.annotation)
            else:
                info.class_attrs.add(name)
    return info


def _self_stores(func: ast.AST) -> Set[str]:
    """Attribute names assigned on ``self`` anywhere inside ``func``.

    Includes nested closures: a probe's ``attach`` assigning
    ``self._wrapped`` from inside a wrapper function still counts.
    """
    stores: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            stores.add(node.attr)
    return stores


def _self_ctor_stores(func: ast.AST) -> Dict[str, str]:
    """``self.x = Ctor(...)`` assignments: attr -> dotted ctor name."""
    ctors: Dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not isinstance(value, ast.Call):
            continue
        ctor = call_name(value.func)
        if ctor is None:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                ctors.setdefault(target.attr, ctor)
    return ctors


def _function_defs(source: SourceFile) -> List[FunctionNode]:
    """Every function definition in ``source`` as a FunctionNode."""
    nodes: List[FunctionNode] = []
    taken: Set[str] = set()

    def visit(
        body: Iterable[ast.stmt],
        class_name: Optional[str],
        prefix: str,
        nested: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{source.relpath}::{prefix}{stmt.name}"
                if qual in taken:
                    qual = f"{qual}@{stmt.lineno}"
                taken.add(qual)
                nodes.append(
                    FunctionNode(
                        qualname=qual,
                        relpath=source.relpath,
                        name=stmt.name,
                        node=stmt,
                        class_name=class_name,
                        nested=nested,
                        calls=_call_refs(stmt),
                    )
                )
                visit(
                    stmt.body, class_name,
                    f"{prefix}{stmt.name}.<locals>.", True,
                )
            elif isinstance(stmt, ast.ClassDef):
                visit(stmt.body, stmt.name, f"{prefix}{stmt.name}.", nested)
            elif not nested and isinstance(
                stmt, (ast.If, ast.Try, ast.With)
            ):
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        visit([inner], class_name, prefix, nested)

    visit(source.tree.body, None, "", False)
    return nodes


def _call_refs(func: ast.AST) -> Tuple[CallRef, ...]:
    """Call references made directly by ``func`` (not its nested defs)."""
    refs: List[CallRef] = []
    seen: Set[Tuple[str, str]] = set()

    def add(kind: str, name: str) -> None:
        if (kind, name) not in seen:
            seen.add((kind, name))
            refs.append(CallRef(kind, name))

    def walk(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                        ast.ClassDef)
            ):
                continue
            if isinstance(child, ast.Call):
                target = child.func
                if isinstance(target, ast.Name):
                    add("bare", target.id)
                elif isinstance(target, ast.Attribute):
                    receiver = target.value
                    if (
                        isinstance(receiver, ast.Name)
                        and receiver.id == "self"
                    ):
                        add("self", target.attr)
                    elif isinstance(receiver, ast.Name):
                        add("dotted", f"{receiver.id}.{target.attr}")
                    elif isinstance(receiver, ast.Call):
                        ctor = call_name(receiver.func)
                        if ctor is not None:
                            cls = ctor.rpartition(".")[2]
                            add("ctor", f"{cls}.{target.attr}")
                        else:
                            add("method", target.attr)
                    else:
                        add("method", target.attr)
            walk(child)

    body = getattr(func, "body", [])
    for stmt in body if isinstance(body, list) else [body]:
        walk(stmt)
    return tuple(refs)


def _literal_slots(value: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: List[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
            else:
                return None
        return tuple(names)
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    return None


def _is_classvar(annotation: Optional[ast.AST]) -> bool:
    text = _annotation_text(annotation)
    return text.startswith("ClassVar") or text.startswith("typing.ClassVar")


def _annotation_text(annotation: Optional[ast.AST]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover
        return ""
