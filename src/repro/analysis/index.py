"""Cross-file symbol index the checkers resolve names against.

One pass over every parsed source collects, per class: methods,
``self.x`` attribute assignments (including inside nested closures,
which is where probe wrappers assign), properties, literal ``__slots__``
tuples, dataclass fields with their annotation text, and base-class
names.  Top-level functions are indexed by name so cross-file checkers
(e.g. the cache-key checker looking for ``config_key``) can find their
definition wherever it lives in the analyzed set.

The index is purely syntactic -- no imports are executed -- so it works
identically on the real tree and on throwaway fixture trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .core import SourceFile, call_name, decorator_names


@dataclass
class ClassInfo:
    """Everything the checkers need to know about one class definition."""

    name: str
    relpath: str
    line: int
    bases: Tuple[str, ...] = ()
    #: Literal ``__slots__`` entries, or None when the class declares no
    #: ``__slots__`` (or declares one the analyzer cannot read
    #: statically, which is treated as "no slots" -- conservative).
    slots: Optional[Tuple[str, ...]] = None
    methods: Set[str] = field(default_factory=set)
    self_attrs: Set[str] = field(default_factory=set)
    properties: Set[str] = field(default_factory=set)
    class_attrs: Set[str] = field(default_factory=set)
    is_dataclass: bool = False
    #: Dataclass fields in declaration order: name -> annotation source.
    fields: Dict[str, str] = field(default_factory=dict)

    def provides(self, attr: str) -> bool:
        """Does an instance of this class expose ``attr``?"""
        return (
            attr in self.methods
            or attr in self.self_attrs
            or attr in self.properties
            or attr in self.class_attrs
            or attr in self.fields
            or (self.slots is not None and attr in self.slots)
        )


@dataclass
class FunctionInfo:
    """One top-level (module-scope) function definition."""

    name: str
    source: SourceFile
    node: ast.FunctionDef


class ProjectIndex:
    """Name -> definitions map over every analyzed source file."""

    def __init__(self) -> None:
        self.files: List[SourceFile] = []
        self.classes: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, List[FunctionInfo]] = {}

    def add_file(self, source: SourceFile) -> None:
        self.files.append(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                info = _class_info(node, source)
                self.classes.setdefault(info.name, []).append(info)
        for node in source.tree.body:
            if isinstance(node, ast.FunctionDef):
                self.functions.setdefault(node.name, []).append(
                    FunctionInfo(node.name, source, node)
                )

    def all_classes(self) -> List[ClassInfo]:
        return [info for infos in self.classes.values() for info in infos]

    def providers(self, attr: str) -> List[ClassInfo]:
        """Every indexed class whose instances expose ``attr``."""
        return [c for c in self.all_classes() if c.provides(attr)]

    def resolve_base(self, name: str) -> Optional[ClassInfo]:
        """The unique class definition for ``name``, if unambiguous."""
        infos = self.classes.get(name, [])
        return infos[0] if len(infos) == 1 else None

    def slots_chain(self, info: ClassInfo) -> Optional[Tuple[str, ...]]:
        """Union of ``__slots__`` over ``info`` and its resolvable bases.

        Returns None when instances may carry a ``__dict__``: the class
        itself (or any base, followed transitively) lacks a literal
        ``__slots__``, lists ``__dict__`` in it, or has a base the index
        cannot resolve (external classes are assumed dict-backed).
        ``object`` and ``Exception``-free leaves terminate the chain.
        """
        seen: Set[str] = set()
        collected: List[str] = []

        def walk(cls: ClassInfo) -> bool:
            if cls.name in seen:
                return True
            seen.add(cls.name)
            if cls.slots is None or "__dict__" in cls.slots:
                return False
            collected.extend(cls.slots)
            for base in cls.bases:
                if base == "object":
                    continue
                resolved = self.resolve_base(base)
                if resolved is None:
                    return False
                if not walk(resolved):
                    return False
            return True

        if not walk(info):
            return None
        return tuple(collected)

    def properties_chain(self, info: ClassInfo) -> Set[str]:
        props: Set[str] = set(info.properties)
        for base in info.bases:
            resolved = self.resolve_base(base)
            if resolved is not None:
                props |= self.properties_chain(resolved)
        return props


def _class_info(node: ast.ClassDef, source: SourceFile) -> ClassInfo:
    decorators = decorator_names(node)
    info = ClassInfo(
        name=node.name,
        relpath=source.relpath,
        line=node.lineno,
        bases=tuple(
            n for n in (call_name(b) for b in node.bases) if n is not None
        ),
        is_dataclass="dataclass" in decorators
        or any(d.endswith(".dataclass") for d in decorators),
    )
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            item_decos = decorator_names(item)
            if "property" in item_decos or any(
                d.endswith(".setter") or d.endswith(".getter")
                or d.endswith(".deleter") for d in item_decos
            ):
                info.properties.add(item.name)
            else:
                info.methods.add(item.name)
            for attr in _self_stores(item):
                info.self_attrs.add(attr)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    if target.id == "__slots__":
                        info.slots = _literal_slots(item.value)
                    else:
                        info.class_attrs.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            name = item.target.id
            if name == "__slots__":
                info.slots = _literal_slots(item.value)
            elif info.is_dataclass and not _is_classvar(item.annotation):
                info.fields[name] = _annotation_text(item.annotation)
            else:
                info.class_attrs.add(name)
    return info


def _self_stores(func: ast.AST) -> Set[str]:
    """Attribute names assigned on ``self`` anywhere inside ``func``.

    Includes nested closures: a probe's ``attach`` assigning
    ``self._wrapped`` from inside a wrapper function still counts.
    """
    stores: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, (ast.Store, ast.Del))
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            stores.add(node.attr)
    return stores


def _literal_slots(value: Optional[ast.AST]) -> Optional[Tuple[str, ...]]:
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        names: List[str] = []
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                names.append(element.value)
            else:
                return None
        return tuple(names)
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    return None


def _is_classvar(annotation: Optional[ast.AST]) -> bool:
    text = _annotation_text(annotation)
    return text.startswith("ClassVar") or text.startswith("typing.ClassVar")


def _annotation_text(annotation: Optional[ast.AST]) -> str:
    if annotation is None:
        return ""
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover
        return ""
