"""Analytical queueing surrogate for the cycle-accurate simulator.

Maps a :class:`~repro.sim.config.SimConfig` plus an offered load to a
predicted average packet latency, per-hop breakdown, delivered
throughput, and a predicted saturation load -- in microseconds instead
of the seconds a cycle-accurate run costs.  The model is in the spirit
of Mandal et al.'s analytical NoC performance models (PAPERS.md): a
deterministic service-time core derived from the delay model's pipeline
depths, an M/G/1-style contention term per hop, and a credit-turnaround
correction for buffers too shallow to cover the credit loop (the
paper's footnote 15), with worst-case sanity coming from the saturation
bound (offered load beyond the saturation point never predicts a
finite latency).

The service-time core is exact by construction:

* per-hop router latency is the pipeline depth EQ 1 prescribes for the
  router's flow-control method (:mod:`repro.delaymodel.pipeline`), plus
  any ``va_extra_cycles`` the config adds;
* link traversal costs ``flit_propagation`` cycles per hop;
* the tail of an ``L``-flit packet serializes ``L - 1`` cycles behind
  its head;
* when the per-VC buffer depth does not cover the credit loop
  (``pipeline depth + flit propagation + credit propagation + credit
  pipeline``), each buffer refill stalls the stream -- footnote 15's
  extra cycle at 4-flit buffers falls out of the same expression.

Everything on top of that core is *contention*, which no closed form
captures exactly for a wormhole mesh; the surrogate uses the M/G/1
waiting-time shape ``rho / (1 - rho)`` scaled by a handful of free
coefficients (:class:`SurrogateCoefficients`) that
:mod:`repro.surrogate.calibration` fits against cached simulated
sweeps.

Every function here is a pure function of its arguments -- no RNG, no
I/O, no module state -- and the :mod:`repro.analysis` DET/PURE rules
are enforced over this package exactly as over ``repro.delaymodel``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Any, Dict, Optional, Tuple

from ..delaymodel.pipeline import FlowControl, pipeline_for
from ..delaymodel.tau import DEFAULT_CLOCK_TAU4
from ..sim.config import RouterKind, SimConfig
from ..sim.topology import make_topology

__all__ = [
    "SurrogateCoefficients",
    "ServiceTime",
    "HopBreakdown",
    "SurrogateEstimate",
    "class_key",
    "default_saturation",
    "estimate",
    "estimate_curve",
    "predicted_saturation",
    "service_time",
]

#: Flow-control method whose EQ-1 pipeline gives each simulated router
#: kind its per-hop depth.  The single-cycle baselines ("C" simulator,
#: Section 5.2) are unit-latency by definition; virtual cut-through
#: shares the wormhole datapath.
_KIND_TO_FLOW = {
    RouterKind.WORMHOLE: FlowControl.WORMHOLE,
    RouterKind.VIRTUAL_CUT_THROUGH: FlowControl.WORMHOLE,
    RouterKind.VIRTUAL_CHANNEL: FlowControl.VIRTUAL_CHANNEL,
    RouterKind.SPECULATIVE_VC: FlowControl.SPECULATIVE_VIRTUAL_CHANNEL,
}

#: The paper's canonical port count / phit width / VC count: the delay
#: model point whose pipeline depths the simulated routers implement
#: (Figure 4; ``repro.core.design._SIMULATED_DEPTHS`` realises the same
#: depths).  Depth is looked up here rather than per-config because the
#: simulator's fixed datapaths keep these depths at every radix; deeper
#: model pipelines reach the simulator via ``va_extra_cycles``.
_CANONICAL_P = 5
_CANONICAL_W = 32
_CANONICAL_V = 2

#: Default saturation loads (fraction of capacity) per router kind on a
#: mesh, used when no calibration is attached.  Rough shapes from the
#: paper's Figure 13/15 ordering: VC routers saturate past wormhole,
#: speculation does not cost throughput, unit-latency routers clear
#: their pipelined counterparts.  Calibration replaces these with
#: per-class fits.
_DEFAULT_SATURATION_MESH = {
    RouterKind.WORMHOLE: 0.42,
    RouterKind.VIRTUAL_CUT_THROUGH: 0.42,
    RouterKind.VIRTUAL_CHANNEL: 0.62,
    RouterKind.SPECULATIVE_VC: 0.62,
    RouterKind.SINGLE_CYCLE_WORMHOLE: 0.52,
    RouterKind.SINGLE_CYCLE_VC: 0.72,
}

#: A torus normalizes offered load against a doubled bisection
#: capacity (``8/k`` vs ``4/k`` flits/node/cycle), so the same router
#: saturates at roughly half the capacity *fraction* it reaches on the
#: mesh (the absolute flit rate is comparable).
_TORUS_SATURATION_FACTOR = 0.5


@dataclass(frozen=True)
class SurrogateCoefficients:
    """The free parameters of the surrogate's contention model.

    The deterministic service-time core has no knobs; these few
    coefficients absorb what the closed form cannot derive.  Defaults
    are serviceable uncalibrated guesses;
    :func:`repro.surrogate.calibration.calibrate` fits them per
    configuration class against cached simulated sweeps.
    """

    #: Additive zero-load correction (cycles): injection/ejection
    #: register writes the hop expression does not itemize.
    zero_load_offset: float = 1.0
    #: Multiplier on the M/G/1 waiting term (absorbs the service-time
    #: variance factor ``(1 + c_s^2) / 2`` and allocator efficiency).
    contention_scale: float = 1.0
    #: Offered load (fraction of capacity) where the contention term
    #: diverges.  ``None`` falls back to :func:`default_saturation`.
    saturation_load: Optional[float] = None
    #: Weight on the credit-turnaround stall term (1.0 = the loop/buffer
    #: expression verbatim).
    credit_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.contention_scale < 0:
            raise ValueError("contention_scale must be >= 0")
        if self.saturation_load is not None and not (
            0.0 < self.saturation_load <= 1.5
        ):
            raise ValueError(
                f"saturation_load must lie in (0, 1.5], "
                f"got {self.saturation_load}"
            )
        if self.credit_weight < 0:
            raise ValueError("credit_weight must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "zero_load_offset": self.zero_load_offset,
            "contention_scale": self.contention_scale,
            "saturation_load": self.saturation_load,
            "credit_weight": self.credit_weight,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SurrogateCoefficients":
        return cls(**data)


#: The uncalibrated default coefficient set.
DEFAULT_COEFFICIENTS = SurrogateCoefficients()


@dataclass(frozen=True)
class ServiceTime:
    """Deterministic service-time core of one router configuration."""

    #: Pipeline depth per hop in cycles (EQ 1 depth + va_extra_cycles).
    per_hop_cycles: int
    #: Clock cycle the depth was designed against, in tau4.
    clock_tau4: float
    #: Mean hop count under uniform traffic on this topology.
    average_hops: float
    #: Credit-loop length in cycles (dispatch at ST to usable upstream).
    credit_loop_cycles: int
    #: Stall cycles an ``L``-flit packet accumulates when per-VC buffers
    #: do not cover the credit loop (0.0 when they do).
    credit_stall_cycles: float
    #: Effective channel occupancy of one packet, in cycles.
    packet_service_cycles: float


def _per_hop_depth(config: SimConfig) -> Tuple[int, float]:
    """(pipeline depth incl. extra VA stages, clock in tau4) per hop."""
    if config.router_kind.is_single_cycle:
        return 1, DEFAULT_CLOCK_TAU4
    depth = _base_depth(config.router_kind)
    return depth + config.va_extra_cycles, DEFAULT_CLOCK_TAU4


@lru_cache(maxsize=None)
def _base_depth(kind: RouterKind) -> int:
    """EQ-1 pipeline depth of the canonical design point for ``kind``."""
    flow = _KIND_TO_FLOW[kind]
    design = pipeline_for(
        flow, _CANONICAL_P, _CANONICAL_W, v=_CANONICAL_V
    )
    return design.depth


def service_time(
    config: SimConfig,
    coefficients: SurrogateCoefficients = DEFAULT_COEFFICIENTS,
) -> ServiceTime:
    """The deterministic service-time core for one configuration."""
    depth, clock_tau4 = _per_hop_depth(config)
    topology = make_topology(config.topology, config.mesh_radix)
    hops = topology.average_hop_distance()
    loop = (
        depth
        + config.flit_propagation
        + config.credit_propagation
        + config.effective_credit_pipeline
    )
    # Buffers shallower than the credit loop stall the stream once per
    # refill: each of the packet's L-1 tail flits pays (loop/buffers - 1)
    # extra cycles.  Footnote 15's "+1 cycle at 4-flit buffers" is this
    # expression at loop=5, buffers=4, L=5.
    shortfall = loop / config.buffers_per_vc - 1.0
    stall = (
        coefficients.credit_weight
        * max(0.0, shortfall)
        * (config.packet_length - 1)
    )
    return ServiceTime(
        per_hop_cycles=depth,
        clock_tau4=clock_tau4,
        average_hops=hops,
        credit_loop_cycles=loop,
        credit_stall_cycles=stall,
        packet_service_cycles=config.packet_length + stall,
    )


def default_saturation(config: SimConfig) -> float:
    """Uncalibrated saturation-load guess for ``config``.

    Per-kind mesh defaults scaled for the torus's capacity
    normalization; deliberately coarse -- calibration replaces it.
    """
    base = _DEFAULT_SATURATION_MESH[config.router_kind]
    if config.topology == "torus":
        base *= _TORUS_SATURATION_FACTOR
    return base


@dataclass(frozen=True)
class HopBreakdown:
    """Where the predicted latency comes from, in cycles.

    ``router`` and ``link`` cover the head flit's whole path (hops + 1
    routers, hops links); ``serialization`` is the packet tail;
    ``credit`` the turnaround stalls; ``contention`` the queueing term
    summed over all arbitration points.
    """

    router_cycles: float
    link_cycles: float
    serialization_cycles: float
    credit_cycles: float
    contention_cycles: float
    offset_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.router_cycles + self.link_cycles
            + self.serialization_cycles + self.credit_cycles
            + self.contention_cycles + self.offset_cycles
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "router_cycles": self.router_cycles,
            "link_cycles": self.link_cycles,
            "serialization_cycles": self.serialization_cycles,
            "credit_cycles": self.credit_cycles,
            "contention_cycles": self.contention_cycles,
            "offset_cycles": self.offset_cycles,
        }


@dataclass(frozen=True)
class SurrogateEstimate:
    """One surrogate answer: predicted latency/throughput at one load."""

    injection_fraction: float
    latency_cycles: float           # math.inf past the saturation load
    zero_load_cycles: float
    throughput_fraction: float      # delivered load, fraction of capacity
    utilization: float              # rho = load / saturation_load
    saturation_load: float          # load where contention diverges
    predicted_saturation: float     # knee: latency crosses 3x zero-load
    saturated: bool
    breakdown: HopBreakdown
    service: ServiceTime

    @property
    def average_latency(self) -> float:
        """Alias matching :class:`~repro.sim.metrics.RunResult`."""
        return self.latency_cycles

    def to_dict(self) -> Dict[str, Any]:
        return {
            "injection_fraction": self.injection_fraction,
            "latency_cycles": (
                self.latency_cycles
                if math.isfinite(self.latency_cycles) else None
            ),
            "zero_load_cycles": self.zero_load_cycles,
            "throughput_fraction": self.throughput_fraction,
            "utilization": self.utilization,
            "saturation_load": self.saturation_load,
            "predicted_saturation": self.predicted_saturation,
            "saturated": self.saturated,
            "breakdown": self.breakdown.to_dict(),
        }

    def describe(self) -> str:
        latency = (
            f"{self.latency_cycles:7.1f}"
            if math.isfinite(self.latency_cycles) else "    inf"
        )
        return (
            f"load {self.injection_fraction:4.0%}  latency {latency} cycles  "
            f"accepted {self.throughput_fraction:5.1%}"
            f"{'  [saturated]' if self.saturated else ''}"
        )


#: Latency multiple of zero-load used to read the saturation knee off a
#: curve -- mirrors ``repro.experiments.sweep.SATURATION_LATENCY_MULTIPLE``
#: (duplicated so the surrogate stays importable without the
#: experiments layer).
SATURATION_LATENCY_MULTIPLE = 3.0


def _zero_load_cycles(
    config: SimConfig,
    service: ServiceTime,
    coefficients: SurrogateCoefficients,
) -> Tuple[HopBreakdown, float]:
    """Zero-load breakdown (contention excluded) and its total."""
    hops = service.average_hops
    breakdown = HopBreakdown(
        router_cycles=(hops + 1.0) * service.per_hop_cycles,
        link_cycles=hops * config.flit_propagation,
        serialization_cycles=float(config.packet_length - 1),
        credit_cycles=service.credit_stall_cycles,
        contention_cycles=0.0,
        offset_cycles=coefficients.zero_load_offset,
    )
    return breakdown, breakdown.total_cycles


def _contention_cycles(
    service: ServiceTime,
    coefficients: SurrogateCoefficients,
    utilization: float,
) -> float:
    """M/G/1-style waiting summed over the head's arbitration points.

    ``W = scale * S * rho / (2 * (1 - rho))`` per hop; the variance
    factor ``(1 + c_s^2) / 2`` and the allocator's matching efficiency
    are absorbed by ``contention_scale``.
    """
    if utilization >= 1.0:
        return math.inf
    waiting = (
        coefficients.contention_scale
        * service.packet_service_cycles
        * utilization
        / (2.0 * (1.0 - utilization))
    )
    return (service.average_hops + 1.0) * waiting


def estimate(
    config: SimConfig,
    load: Optional[float] = None,
    coefficients: SurrogateCoefficients = DEFAULT_COEFFICIENTS,
) -> SurrogateEstimate:
    """Predict latency/throughput for ``config`` at ``load``.

    ``load`` defaults to ``config.injection_fraction``.  A pure
    function of ``(config, load, coefficients)``: repeated calls return
    equal estimates and never mutate the config.
    """
    if load is None:
        load = config.injection_fraction
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    service = service_time(config, coefficients)
    saturation = coefficients.saturation_load
    if saturation is None:
        saturation = default_saturation(config)
    zero_breakdown, zero_load = _zero_load_cycles(
        config, service, coefficients
    )
    utilization = load / saturation
    contention = _contention_cycles(service, coefficients, utilization)
    saturated = not math.isfinite(contention)
    breakdown = replace(zero_breakdown, contention_cycles=contention)
    knee = predicted_saturation(config, coefficients)
    return SurrogateEstimate(
        injection_fraction=load,
        latency_cycles=zero_load + contention,
        zero_load_cycles=zero_load,
        throughput_fraction=min(load, saturation),
        utilization=utilization,
        saturation_load=saturation,
        predicted_saturation=knee,
        saturated=saturated,
        breakdown=breakdown,
        service=service,
    )


def estimate_curve(
    config: SimConfig,
    loads,
    coefficients: SurrogateCoefficients = DEFAULT_COEFFICIENTS,
):
    """One :func:`estimate` per load, in ascending load order."""
    return [
        estimate(config, load, coefficients) for load in sorted(loads)
    ]


def predicted_saturation(
    config: SimConfig,
    coefficients: SurrogateCoefficients = DEFAULT_COEFFICIENTS,
    latency_multiple: float = SATURATION_LATENCY_MULTIPLE,
) -> float:
    """The load where predicted latency crosses the saturation knee.

    Solves ``L(x) = latency_multiple * L(0)`` in closed form: with
    ``A = (hops + 1) * scale * S / 2`` the contention term is
    ``A * rho / (1 - rho)``, so the crossing utilization is
    ``g / (1 + g)`` with ``g = (latency_multiple - 1) * L0 / A``.  This
    is the number comparable to ``find_saturation`` reading the knee
    off a measured curve.
    """
    if latency_multiple <= 1.0:
        raise ValueError("latency_multiple must exceed 1.0")
    service = service_time(config, coefficients)
    saturation = coefficients.saturation_load
    if saturation is None:
        saturation = default_saturation(config)
    _, zero_load = _zero_load_cycles(config, service, coefficients)
    amplitude = (
        (service.average_hops + 1.0)
        * coefficients.contention_scale
        * service.packet_service_cycles
        / 2.0
    )
    if amplitude <= 0.0:
        # No contention term at all: the curve never bends, so the
        # knee coincides with the hard saturation bound.
        return saturation
    gain = (latency_multiple - 1.0) * zero_load / amplitude
    return saturation * gain / (1.0 + gain)


def class_key(config: SimConfig) -> str:
    """Calibration-class identity of a config: everything but load/seed.

    Two configs in the same class share coefficients; the key is a
    readable string so calibration tables serialize to flat JSON.
    """
    return "|".join((
        config.router_kind.value,
        config.topology,
        f"k{config.mesh_radix}",
        f"v{config.num_vcs}",
        f"b{config.buffers_per_vc}",
        f"L{config.packet_length}",
        config.routing_function,
        config.allocator_kind,
        config.speculation_priority,
        config.traffic_pattern,
        config.injection_process,
        f"fp{config.flit_propagation}",
        f"cp{config.credit_propagation}",
        f"cpl{config.effective_credit_pipeline}",
        f"va{config.va_extra_cycles}",
    ))
