"""Analytical queueing surrogate for the cycle-accurate simulator.

Three layers (see ``docs/SURROGATE.md``):

* :mod:`~repro.surrogate.model` -- the pure estimator: SimConfig +
  offered load -> predicted latency, per-hop breakdown, throughput,
  predicted saturation.  Service times come from the delay model's
  pipeline depths; contention is M/G/1-shaped with a handful of free
  coefficients.
* :mod:`~repro.surrogate.calibration` -- deterministic fits of those
  coefficients against measured sweeps, with per-class residual error.
* :mod:`~repro.surrogate.corpus` -- the canonical set of simulated
  points the fits consume, gathered through (and replayed from) the
  content-addressed result cache.

The hybrid serving path that fronts all of this lives in
:class:`repro.runtime.Estimator`.
"""

from .calibration import (
    Calibration,
    CalibrationRecord,
    Observation,
    calibrate,
    cross_validate,
    observations_from_results,
)
from .corpus import (
    calibrate_from_cache,
    corpus_configs,
    corpus_loads,
    corpus_points,
    gather,
)
from .model import (
    DEFAULT_COEFFICIENTS,
    HopBreakdown,
    ServiceTime,
    SurrogateCoefficients,
    SurrogateEstimate,
    class_key,
    default_saturation,
    estimate,
    estimate_curve,
    predicted_saturation,
    service_time,
)

__all__ = [
    "Calibration",
    "CalibrationRecord",
    "DEFAULT_COEFFICIENTS",
    "HopBreakdown",
    "Observation",
    "ServiceTime",
    "SurrogateCoefficients",
    "SurrogateEstimate",
    "calibrate",
    "calibrate_from_cache",
    "class_key",
    "corpus_configs",
    "corpus_loads",
    "corpus_points",
    "cross_validate",
    "default_saturation",
    "estimate",
    "estimate_curve",
    "gather",
    "observations_from_results",
    "predicted_saturation",
    "service_time",
]
