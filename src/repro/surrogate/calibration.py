"""Fit the surrogate's free coefficients against simulated sweeps.

The estimator in :mod:`repro.surrogate.model` has an exact
service-time core and three free contention knobs per configuration
class (zero-load offset, contention scale, saturation load).  This
module fits those knobs against measured ``(load, latency)`` points --
typically replayed out of the content-addressed result cache by
:mod:`repro.surrogate.corpus` -- and records the residual relative
error per class, which becomes the ``error_estimate`` stamped on every
hybrid-path answer.

The fit is deliberately boring and fully deterministic: a small grid
over saturation-load candidates crossed with a closed-form
relative-error least-squares solve for the contention scale, anchored
so the lowest-load point is reproduced exactly, choosing the candidate
that minimizes the *maximum* relative error over the pre-saturation
points.  No RNG, no iterative optimizer, no I/O: the same observations
always produce the same calibration (the DET/PURE analysis rules hold
for this module).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..sim.config import SimConfig
from ..sim.metrics import RunResult
from .model import (
    DEFAULT_COEFFICIENTS,
    SATURATION_LATENCY_MULTIPLE,
    SurrogateCoefficients,
    class_key,
    default_saturation,
    estimate,
    predicted_saturation,
    service_time,
)

__all__ = [
    "Observation",
    "CalibrationRecord",
    "Calibration",
    "calibrate",
    "observations_from_results",
]

#: Fractions of the saturation load that the highest *pre-saturation*
#: measured point is hypothesised to sit at.  Each fraction yields one
#: saturation-load candidate; the fit keeps whichever minimizes the
#: worst-case relative error.
_SATURATION_FRACTIONS = tuple(f / 100.0 for f in range(50, 100, 5))

#: Fewer measured points than this and the class keeps the default
#: coefficients (a one-point "fit" would be noise).
_MIN_POINTS = 2


@dataclass(frozen=True)
class Observation:
    """One measured point: a config, its offered load, its latency."""

    config: SimConfig
    load: float
    latency_cycles: float

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"load must be >= 0, got {self.load}")
        if self.latency_cycles <= 0:
            raise ValueError(
                f"latency must be positive, got {self.latency_cycles}"
            )


def observations_from_results(
    pairs: Iterable[Tuple[SimConfig, RunResult]],
) -> List[Observation]:
    """Adapt ``(config, RunResult)`` pairs into calibration points.

    Saturated points (the sample never drained, latency is infinite)
    are dropped rather than poisoning the fit.
    """
    observations = []
    for config, result in pairs:
        if result.latency is None or result.average_latency <= 0:
            continue
        observations.append(Observation(
            config=config,
            load=config.injection_fraction,
            latency_cycles=result.average_latency,
        ))
    return observations


@dataclass(frozen=True)
class CalibrationRecord:
    """Fit outcome for one configuration class."""

    class_key: str
    coefficients: SurrogateCoefficients
    #: Number of measured points the fit consumed (pre-saturation).
    points: int
    #: Worst relative latency error over the pre-saturation points.
    max_rel_error: float
    #: Mean relative latency error over the pre-saturation points.
    mean_rel_error: float
    #: Saturation knee read off the measured curve (3x zero-load),
    #: or None when every point stayed below the knee.
    measured_saturation: Optional[float]
    #: The fitted model's analytic knee for the same class.
    predicted_saturation: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "class_key": self.class_key,
            "coefficients": self.coefficients.to_dict(),
            "points": self.points,
            "max_rel_error": self.max_rel_error,
            "mean_rel_error": self.mean_rel_error,
            "measured_saturation": self.measured_saturation,
            "predicted_saturation": self.predicted_saturation,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CalibrationRecord":
        return cls(
            class_key=data["class_key"],
            coefficients=SurrogateCoefficients.from_dict(
                dict(data["coefficients"])
            ),
            points=data["points"],
            max_rel_error=data["max_rel_error"],
            mean_rel_error=data["mean_rel_error"],
            measured_saturation=data["measured_saturation"],
            predicted_saturation=data["predicted_saturation"],
        )


@dataclass(frozen=True)
class Calibration:
    """A set of per-class fits, keyed by :func:`~.model.class_key`."""

    records: Mapping[str, CalibrationRecord] = field(default_factory=dict)

    def record_for(self, config: SimConfig) -> Optional[CalibrationRecord]:
        return self.records.get(class_key(config))

    def for_config(self, config: SimConfig) -> SurrogateCoefficients:
        """Fitted coefficients for ``config``'s class, or the defaults."""
        record = self.record_for(config)
        if record is None:
            return DEFAULT_COEFFICIENTS
        return record.coefficients

    def error_estimate(self, config: SimConfig) -> Optional[float]:
        """Residual max relative error for ``config``'s class.

        ``None`` means the class was never calibrated -- callers should
        treat the estimate as unvalidated rather than exact.
        """
        record = self.record_for(config)
        if record is None:
            return None
        return record.max_rel_error

    def to_dict(self) -> Dict[str, Any]:
        return {
            "records": {
                key: record.to_dict()
                for key, record in sorted(self.records.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Calibration":
        return cls(records={
            key: CalibrationRecord.from_dict(record)
            for key, record in data.get("records", {}).items()
        })

    def describe(self) -> str:
        if not self.records:
            return "calibration: empty (default coefficients everywhere)"
        worst = max(r.max_rel_error for r in self.records.values())
        mean = sum(
            r.mean_rel_error for r in self.records.values()
        ) / len(self.records)
        return (
            f"calibration: {len(self.records)} classes, "
            f"worst max-rel-error {worst:.1%}, mean {mean:.1%}"
        )


def _measured_knee(
    points: Sequence[Observation],
    latency_multiple: float,
) -> Tuple[List[Observation], Optional[float]]:
    """Split ``points`` at the measured saturation knee.

    Returns the pre-saturation points (latency within
    ``latency_multiple`` of the lowest-load latency, the same
    convention ``repro.experiments.sweep.find_saturation`` applies to a
    measured curve) and the knee load itself (None if no point
    crossed it).
    """
    ordered = sorted(points, key=lambda obs: obs.load)
    zero_load = ordered[0].latency_cycles
    limit = latency_multiple * zero_load
    pre = [obs for obs in ordered if obs.latency_cycles <= limit]
    knee = pre[-1].load if len(pre) < len(ordered) else None
    return pre, knee


def _contention_basis(config: SimConfig, load: float, saturation: float) -> float:
    """Unit-scale contention term at ``load`` given a saturation load."""
    service = service_time(config)
    utilization = load / saturation
    if utilization >= 1.0:
        return math.inf
    return (
        (service.average_hops + 1.0)
        * service.packet_service_cycles
        * utilization
        / (2.0 * (1.0 - utilization))
    )


def _fit_class(
    key: str,
    points: Sequence[Observation],
    latency_multiple: float,
) -> Optional[CalibrationRecord]:
    """Deterministic per-class fit; None when too few usable points."""
    pre, knee = _measured_knee(points, latency_multiple)
    if len(pre) < _MIN_POINTS:
        return None
    config = pre[0].config
    base_zero = estimate(
        config, 0.0,
        SurrogateCoefficients(zero_load_offset=0.0),
    ).zero_load_cycles
    anchor = pre[0]
    max_load = pre[-1].load

    best: Optional[Tuple[float, SurrogateCoefficients]] = None
    for fraction in _SATURATION_FRACTIONS:
        saturation = max_load / fraction
        bases = [
            _contention_basis(config, obs.load, saturation) for obs in pre
        ]
        anchor_base = bases[0]
        # Anchor the lowest-load point exactly
        # (offset = y0 - base_zero - scale * x0), which reduces the fit
        # to one unknown: minimize the relative-error-weighted residual
        # of (y_i - y_0) = scale * (x_i - x_0).
        numerator = sum(
            (obs.latency_cycles - anchor.latency_cycles)
            * (x - anchor_base) / obs.latency_cycles**2
            for obs, x in zip(pre, bases)
        )
        denominator = sum(
            (x - anchor_base) ** 2 / obs.latency_cycles**2
            for obs, x in zip(pre, bases)
        )
        scale = max(0.0, numerator / denominator) if denominator > 0 else 0.0
        offset = anchor.latency_cycles - base_zero - scale * anchor_base
        candidate = SurrogateCoefficients(
            zero_load_offset=offset,
            contention_scale=scale,
            saturation_load=saturation,
        )
        worst = max(
            abs(estimate(config, obs.load, candidate).latency_cycles
                - obs.latency_cycles) / obs.latency_cycles
            for obs in pre
        )
        if best is None or worst < best[0]:
            best = (worst, candidate)

    assert best is not None
    worst, coefficients = best
    errors = [
        abs(estimate(config, obs.load, coefficients).latency_cycles
            - obs.latency_cycles) / obs.latency_cycles
        for obs in pre
    ]
    return CalibrationRecord(
        class_key=key,
        coefficients=coefficients,
        points=len(pre),
        max_rel_error=worst,
        mean_rel_error=sum(errors) / len(errors),
        measured_saturation=knee,
        predicted_saturation=predicted_saturation(
            config, coefficients, latency_multiple
        ),
    )


def calibrate(
    observations: Iterable[Observation],
    latency_multiple: float = SATURATION_LATENCY_MULTIPLE,
) -> Calibration:
    """Fit per-class coefficients from measured points.

    Observations are grouped by :func:`~.model.class_key` (same config
    up to load/seed); each class with at least two pre-saturation
    points gets a fitted :class:`CalibrationRecord`.  Classes that
    cannot be fitted are simply absent -- :meth:`Calibration.for_config`
    falls back to the defaults for them.
    """
    by_class: Dict[str, List[Observation]] = {}
    for obs in observations:
        by_class.setdefault(class_key(obs.config), []).append(obs)

    records: Dict[str, CalibrationRecord] = {}
    for key in sorted(by_class):
        record = _fit_class(key, by_class[key], latency_multiple)
        if record is not None:
            records[key] = record
    return Calibration(records=records)


def cross_validate(
    calibration: Calibration,
    observations: Iterable[Observation],
    latency_multiple: float = SATURATION_LATENCY_MULTIPLE,
) -> Dict[str, Any]:
    """Score a calibration against (held-out or training) observations.

    Returns per-class and overall max/mean relative errors over the
    pre-saturation portion of each class's points -- the number the
    cross-validation test battery bounds at 15%.
    """
    by_class: Dict[str, List[Observation]] = {}
    for obs in observations:
        by_class.setdefault(class_key(obs.config), []).append(obs)

    per_class: Dict[str, Dict[str, float]] = {}
    all_errors: List[float] = []
    for key in sorted(by_class):
        pre, _ = _measured_knee(by_class[key], latency_multiple)
        if not pre:
            continue
        coefficients = calibration.for_config(pre[0].config)
        errors = [
            abs(estimate(obs.config, obs.load, coefficients).latency_cycles
                - obs.latency_cycles) / obs.latency_cycles
            for obs in pre
        ]
        per_class[key] = {
            "points": len(errors),
            "max_rel_error": max(errors),
            "mean_rel_error": sum(errors) / len(errors),
        }
        all_errors.extend(errors)
    return {
        "classes": per_class,
        "points": len(all_errors),
        "max_rel_error": max(all_errors) if all_errors else 0.0,
        "mean_rel_error": (
            sum(all_errors) / len(all_errors) if all_errors else 0.0
        ),
    }
