"""The calibration corpus: which simulated points anchor the surrogate.

Calibration needs measured ``(config, load, latency)`` points.  This
module defines the canonical corpus -- every router kind on the mesh,
plus the VC-based kinds on the torus, each over a small pre-saturation
load grid -- and gathers it through :class:`~repro.runtime.Experiment`,
so an experiment with a cache attached replays the corpus out of the
content-addressed store instead of re-simulating it.  Running the
gather twice against the same cache is pure replay: zero simulator
invocations, identical calibration.

Like the rest of the package this module does no I/O of its own and
holds no state; persistence of fitted calibrations is the caller's
business (the ``estimate`` CLI serializes ``Calibration.to_dict()``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional, Sequence, Tuple

from ..sim.config import RouterKind, SimConfig
from ..sim.metrics import RunResult
from .calibration import Calibration, calibrate, observations_from_results
from .model import default_saturation

__all__ = [
    "corpus_configs",
    "corpus_loads",
    "corpus_points",
    "gather",
    "calibrate_from_cache",
]

#: Load grid, as fractions of the class's default saturation guess:
#: dense enough below the knee to pin the contention curve, with the
#: top point close to it so the saturation-load fit is anchored.
_LOAD_FRACTIONS = (0.1, 0.3, 0.5, 0.65, 0.8, 0.9)

#: Router kinds exercised on the torus as well as the mesh.  The
#: VC-based kinds are where topology changes routing freedom most;
#: non-VC kinds calibrate on the mesh alone.
_TORUS_KINDS = (RouterKind.VIRTUAL_CHANNEL, RouterKind.SPECULATIVE_VC)


def corpus_configs(
    *,
    mesh_radix: int = 4,
    num_vcs: int = 2,
    seed: int = 42,
) -> List[SimConfig]:
    """The canonical calibration corpus: one config per class.

    Every router kind on the mesh; the VC kinds additionally on the
    torus.  ``injection_fraction`` is a placeholder -- the gather step
    sweeps it over :func:`corpus_loads`.
    """
    configs = []
    for kind in RouterKind:
        configs.append(SimConfig(
            router_kind=kind,
            mesh_radix=mesh_radix,
            num_vcs=num_vcs if kind.uses_vcs else 1,
            injection_fraction=0.1,
            seed=seed,
        ))
    for kind in _TORUS_KINDS:
        configs.append(SimConfig(
            router_kind=kind,
            mesh_radix=mesh_radix,
            num_vcs=num_vcs,
            injection_fraction=0.1,
            seed=seed,
            topology="torus",
        ))
    return configs


def corpus_loads(config: SimConfig) -> List[float]:
    """The load grid for one corpus config, scaled to its class.

    Fractions of the uncalibrated saturation guess, rounded so the
    grid (and therefore every cache key) is stable across platforms.
    """
    saturation = default_saturation(config)
    return [
        round(saturation * fraction, 4) for fraction in _LOAD_FRACTIONS
    ]


def corpus_points(
    configs: Optional[Sequence[SimConfig]] = None,
    loads: Optional[Iterable[float]] = None,
) -> List[SimConfig]:
    """Flatten the corpus into individual simulation points.

    ``loads=None`` uses each config's own class-scaled grid; passing an
    explicit iterable applies that grid to every config.
    """
    if configs is None:
        configs = corpus_configs()
    fixed = sorted(loads) if loads is not None else None
    points = []
    for config in configs:
        grid = fixed if fixed is not None else corpus_loads(config)
        for load in grid:
            points.append(replace(config, injection_fraction=load))
    return points


def gather(
    experiment,
    configs: Optional[Sequence[SimConfig]] = None,
    loads: Optional[Iterable[float]] = None,
) -> List[Tuple[SimConfig, RunResult]]:
    """Run (or replay from cache) the corpus through an Experiment.

    Returns ``(config, result)`` pairs in corpus order.  With a cache
    attached, previously simulated points come back as hits and only
    the missing ones execute.
    """
    points = corpus_points(configs, loads)
    results = experiment.map(points)
    return list(zip(points, results))


def calibrate_from_cache(
    experiment,
    configs: Optional[Sequence[SimConfig]] = None,
    loads: Optional[Iterable[float]] = None,
) -> Tuple[Calibration, List[Tuple[SimConfig, RunResult]]]:
    """Gather the corpus and fit a calibration in one step.

    The name says where the data comes from in steady state: an
    experiment with the shared result cache attached answers the whole
    corpus from disk, and the fit is a pure function of those cached
    sweeps.  Returns the calibration plus the underlying pairs so
    callers can cross-validate or report per-point errors.
    """
    pairs = gather(experiment, configs, loads)
    calibration = calibrate(observations_from_results(pairs))
    return calibration, pairs
