"""Design-space exploration over the delay model.

The general router model's premise is that cycle time is fixed by the
system and pipeline depth follows.  But a router architect choosing the
clock still faces a real trade-off that falls straight out of EQ 1:

* a short clock -> more pipeline stages -> more cycles per hop (and a
  longer credit loop, hence more buffers needed for full throughput);
* a long clock -> fewer stages but each hop's *absolute* latency is
  quantised up to ``depth x clock``.

:func:`sweep_clock` evaluates per-hop latency in tau4 across clock
choices; :func:`optimal_clock` picks the minimum-latency clock.
:func:`min_buffers_for_full_throughput` converts a pipeline into the
credit-loop coverage requirement the simulation figures (14/15) turn on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from .modules import RoutingRange
from .pipeline import FlowControl, pipeline_for


@dataclass(frozen=True)
class ClockPoint:
    """One point of a clock sweep."""

    clock_tau4: float
    stages: int
    per_hop_tau4: float        # stages x clock: absolute per-hop latency


def sweep_clock(
    flow_control: FlowControl,
    p: int,
    w: int,
    v: int = 1,
    routing_range: Optional[RoutingRange] = None,
    clocks_tau4: Sequence[float] = tuple(range(10, 41, 2)),
) -> List[ClockPoint]:
    """Per-hop latency across candidate clock cycles.

    Clocks at which the pipeline is infeasible (e.g. the speculative
    combiner no longer fits the crossbar stage's slack) are skipped.
    """
    points = []
    for clock in clocks_tau4:
        try:
            design = pipeline_for(
                flow_control, p, w, v=v, routing_range=routing_range,
                clock_tau4=clock,
            )
        except ValueError:
            continue
        points.append(
            ClockPoint(
                clock_tau4=clock,
                stages=design.depth,
                per_hop_tau4=design.depth * clock,
            )
        )
    if not points:
        raise ValueError(
            f"no feasible pipeline for {flow_control.value} at any of the "
            f"candidate clocks {tuple(clocks_tau4)}"
        )
    return points


def optimal_clock(
    flow_control: FlowControl,
    p: int,
    w: int,
    v: int = 1,
    routing_range: Optional[RoutingRange] = None,
    clocks_tau4: Sequence[float] = tuple(range(10, 41, 1)),
) -> ClockPoint:
    """The clock minimising absolute per-hop latency (ties -> faster clock)."""
    points = sweep_clock(flow_control, p, w, v, routing_range, clocks_tau4)
    return min(points, key=lambda pt: (pt.per_hop_tau4, pt.clock_tau4))


def credit_loop_cycles(pipeline_depth: int, credit_propagation: int = 1,
                       flit_propagation: int = 1) -> int:
    """Grant-to-grant credit loop of a router with the given depth.

    Matches the simulator's timing (DESIGN.md section 4): an upstream
    switch grant's credit is reusable after the flit reaches the next
    router (traversal + ``flit_propagation`` + buffer write), wins its
    own grant there (``depth - 1`` further cycles through the pipeline),
    and the credit returns (``credit_propagation``).  Depth-3 routers
    get 5 cycles, depth-4 routers 6, depth-1 routers 3 -- and raising
    credit propagation to 4 gives 8 (Figure 18).
    """
    if pipeline_depth < 1:
        raise ValueError("pipeline depth must be >= 1")
    downstream_grant_lag = pipeline_depth - 1 + flit_propagation + 1
    return downstream_grant_lag + credit_propagation


def min_buffers_for_full_throughput(
    pipeline_depth: int, credit_propagation: int = 1
) -> int:
    """Buffers per VC needed to stream at full rate through one hop.

    A VC can sustain ``buffers / credit_loop`` flits per cycle, so full
    bandwidth needs at least the loop's worth of buffering -- the
    mechanism behind Figures 14/15 (8 buffers cover a 5-6 cycle loop; 4
    do not).
    """
    return credit_loop_cycles(pipeline_depth, credit_propagation)


def render_clock_sweep(points: List[ClockPoint]) -> str:
    lines = [f"{'clock (tau4)':>13} {'stages':>7} {'per-hop (tau4)':>15}"]
    best = min(p.per_hop_tau4 for p in points)
    for point in points:
        marker = "  <- min" if point.per_hop_tau4 == best else ""
        lines.append(
            f"{point.clock_tau4:13.0f} {point.stages:7d} "
            f"{point.per_hop_tau4:15.0f}{marker}"
        )
    return "\n".join(lines)
