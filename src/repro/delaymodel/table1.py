"""Regeneration of the paper's Table 1.

Table 1 evaluates every atomic-module delay equation at the reference
configuration ``p=5, w=32, v=2, clk=20 tau4`` and compares the model
against a Synopsys timing analyzer in 0.18um CMOS.  We regenerate the
model column from the equations in :mod:`repro.delaymodel.modules`; the
paper's published model and Synopsys values are carried along verbatim
so EXPERIMENTS.md can report paper-vs-measured for each row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .modules import (
    ALLOCATOR_OVERHEAD_TAU,
    RoutingRange,
    combiner_delay,
    crossbar_delay,
    spec_switch_allocator_delay,
    speculative_allocation_delay,
    switch_allocator_delay,
    switch_arbiter_delay,
    vc_allocator_delay,
)
from .arbiter import switch_arbiter_overhead
from .tau import tau_to_tau4

#: Reference configuration of Table 1.
REFERENCE_P = 5
REFERENCE_W = 32
REFERENCE_V = 2
REFERENCE_CLK_TAU4 = 20.0


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1: a module's total delay ``t + h`` in tau4."""

    section: str             # which router the row belongs to
    module: str              # module label as printed in the paper
    model_tau4: float        # our regenerated model value
    paper_model_tau4: Optional[float]     # the paper's model column
    paper_synopsys_tau4: Optional[float]  # the paper's Synopsys column

    @property
    def deviation_tau4(self) -> Optional[float]:
        """Our model minus the paper's model column (None if unpublished)."""
        if self.paper_model_tau4 is None:
            return None
        return self.model_tau4 - self.paper_model_tau4


def generate_table1(
    p: int = REFERENCE_P, w: int = REFERENCE_W, v: int = REFERENCE_V
) -> List[Table1Row]:
    """Evaluate every Table 1 row at configuration ``(p, w, v)``.

    The paper's published columns are attached only at the reference
    configuration (they are meaningless elsewhere).
    """
    at_reference = (p, w, v) == (REFERENCE_P, REFERENCE_W, REFERENCE_V)

    def paper(value: float) -> Optional[float]:
        return value if at_reference else None

    def total_tau4(latency_tau: float, overhead_tau: float) -> float:
        return tau_to_tau4(latency_tau + overhead_tau)

    h_alloc = ALLOCATOR_OVERHEAD_TAU
    rows = [
        Table1Row(
            "wormhole", "switch arbiter (SB)",
            total_tau4(switch_arbiter_delay(p), switch_arbiter_overhead(p)),
            paper(9.6), paper(9.9),
        ),
        Table1Row(
            "wormhole", "crossbar traversal (XB)",
            total_tau4(crossbar_delay(p, w), 0.0),
            paper(8.4), paper(10.5),
        ),
        Table1Row(
            "virtual-channel", "vc allocator (VC: Rv)",
            total_tau4(vc_allocator_delay(p, v, RoutingRange.RV), h_alloc),
            paper(11.8), paper(11.0),
        ),
        Table1Row(
            "virtual-channel", "vc allocator (VC: Rp)",
            total_tau4(vc_allocator_delay(p, v, RoutingRange.RP), h_alloc),
            paper(13.1), paper(13.3),
        ),
        Table1Row(
            "virtual-channel", "vc allocator (VC: Rpv)",
            total_tau4(vc_allocator_delay(p, v, RoutingRange.RPV), h_alloc),
            paper(16.9), paper(15.3),
        ),
        Table1Row(
            "virtual-channel", "switch allocator (SL)",
            total_tau4(switch_allocator_delay(p, v), h_alloc),
            paper(10.9), paper(12.0),
        ),
        Table1Row(
            "speculative", "spec switch allocator (SS)",
            total_tau4(spec_switch_allocator_delay(p, v), 0.0),
            None, None,
        ),
        Table1Row(
            "speculative", "combiner (CB)",
            total_tau4(combiner_delay(p, v), 0.0),
            None, None,
        ),
        Table1Row(
            "speculative", "VC&SS combined (Rv)",
            tau_to_tau4(speculative_allocation_delay(p, v, RoutingRange.RV)),
            paper(14.6), paper(16.2),
        ),
        Table1Row(
            "speculative", "VC&SS combined (Rp)",
            tau_to_tau4(speculative_allocation_delay(p, v, RoutingRange.RP)),
            paper(14.6), paper(16.2),
        ),
        Table1Row(
            "speculative", "VC&SS combined (Rpv)",
            tau_to_tau4(speculative_allocation_delay(p, v, RoutingRange.RPV)),
            paper(18.3), paper(16.8),
        ),
    ]
    return rows


def render_table1(rows: Optional[List[Table1Row]] = None) -> str:
    """ASCII rendering of Table 1 for reports and the benchmark harness."""
    if rows is None:
        rows = generate_table1()
    header = (
        f"{'section':<16} {'module':<28} {'model':>7} {'paper':>7} "
        f"{'synopsys':>9} {'dev':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        paper_model = (
            f"{row.paper_model_tau4:7.1f}" if row.paper_model_tau4 is not None
            else "      -"
        )
        synopsys = (
            f"{row.paper_synopsys_tau4:9.1f}"
            if row.paper_synopsys_tau4 is not None else "        -"
        )
        deviation = (
            f"{row.deviation_tau4:+6.1f}" if row.deviation_tau4 is not None
            else "     -"
        )
        lines.append(
            f"{row.section:<16} {row.module:<28} {row.model_tau4:7.1f} "
            f"{paper_model} {synopsys} {deviation}"
        )
    lines.append("(delays in tau4; model = t_i + h_i of the atomic module)")
    return "\n".join(lines)
