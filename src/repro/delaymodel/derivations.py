"""Constructive gate-level derivations of the Table 1 atomic modules.

The paper derives each closed-form delay equation "through detailed
gate-level design and analysis" (Section 3.2); the printed derivation is
shown only for the switch arbiter (EQ 4-6).  This module reconstructs
the critical paths of the remaining atomic modules from the gate library
so the methodology is visible end to end:

* :func:`crossbar_path` -- select fan-out buffers + the mux tree
  (Figure 9);
* :func:`separable_allocator_path` -- a first-stage arbiter, the
  inter-stage forwarding, and a second-stage arbiter (Figures 7b/8);
* :func:`combiner_path` -- the non-speculative-over-speculative select
  (Figure 7c's final muxing).

Each path's total is validated against the corresponding Table 1 closed
form in the test suite (within ~1-2 tau4) -- close enough to show the
equations really do come out of gate-level reasoning, without
pretending to recover the paper's exact fitted constants.
"""

from __future__ import annotations

import math

from . import gates
from .arbiter import matrix_arbiter_core_path
from .logical_effort import Path, Stage


def _chain(path: Path, fanout: float, label: str, stage_effort: float = 4.0) -> None:
    """Analytic buffer chain at a given stage effort (fractional stages)."""
    if fanout <= 1.0:
        return
    per_stage = stage_effort + 1.0
    delay = per_stage * math.log(fanout, stage_effort)
    path.add(Stage(label, 1.0, max(delay - 1.0, 0.001), 1.0))


def crossbar_path(p: int, w: int) -> Path:
    """Select-signal fan-out to ``w`` bit slices, then the p:1 mux tree.

    Matches the structure of the ``t_XB = 9 log8(wp/2) + 6 log2(p) + 6``
    closed form: the first term is the select buffer chain (stage effort
    8 -> 9 tau per stage), the second the ``log2(p)``-level mux tree, the
    last the output driver.
    """
    if p < 2 or w < 1:
        raise ValueError(f"need p >= 2 and w >= 1, got p={p}, w={w}")
    path = Path(f"crossbar_{p}x{p}_w{w}")
    # select fan-out: each select drives the mux gates of w bit slices,
    # each presenting roughly half a mux load per port pair.
    _chain(path, w * p / 2.0, f"select fanout to {w} slices", stage_effort=8.0)
    # mux tree: log2(p) levels of 2:1 transmission muxes.
    levels = max(1, math.ceil(math.log2(p)))
    for level in range(levels):
        path.add(gates.mux(2).stage(1.0, f"mux level {level}"))
    # output driver onto the port wire.
    path.add(gates.inverter().stage(4.0, "output driver"))
    return path


def separable_allocator_path(
    first_stage_inputs: int, second_stage_inputs: int, fanout_between: int = 1
) -> Path:
    """Critical path through a two-stage separable allocator.

    ``first_stage_inputs``-to-1 matrix arbiter, forwarding of the winning
    request (fan-out to the second-stage arbiters), then a
    ``second_stage_inputs``-to-1 matrix arbiter.  With (v, p) this is the
    switch allocator of Figure 7b; with (v, p*v) the VC allocator of
    Figure 8b.
    """
    if first_stage_inputs < 1 or second_stage_inputs < 2:
        raise ValueError("allocator stages need >= 1 and >= 2 inputs")
    path = Path(
        f"separable_{first_stage_inputs}to1_then_{second_stage_inputs}to1"
    )
    if first_stage_inputs >= 2:
        path.extend(matrix_arbiter_core_path(first_stage_inputs).stages)
        # forward the surviving request to the second stage.
        path.add(gates.nand(2).stage(1.0, "request forward"))
        _chain(path, float(fanout_between), "inter-stage fanout")
    path.extend(matrix_arbiter_core_path(second_stage_inputs).stages)
    return path


def combiner_path(p: int, v: int) -> Path:
    """The non-speculative-over-speculative grant select (CB).

    A per-output 2:1 mux steered by the non-speculative grant valid,
    with the valid signal fanned out across the p*v grant bits --
    matching the shallow ``6.5 log4(pv) + 5 1/3`` closed form.
    """
    if p < 2 or v < 1:
        raise ValueError(f"need p >= 2 and v >= 1, got p={p}, v={v}")
    path = Path(f"combiner_p{p}_v{v}")
    # valid computation: any non-speculative grant for this output.
    path.add(gates.nor(2).stage(1.0, "grant-valid nor"))
    # fan the valid out across the grant vector.
    _chain(path, float(p * v), f"valid fanout to {p * v} grant bits")
    # the select mux itself.
    path.add(gates.mux(2).stage(1.0, "nonspec/spec select mux"))
    return path
