"""Router delay model of Peh & Dally (HPCA 2001).

Technology-independent parametric delay equations for the atomic
modules of wormhole, virtual-channel and speculative virtual-channel
routers, derived by the method of logical effort, plus the pipeline
design methodology (EQ 1) that maps those delays onto a fixed clock.

Quick use::

    from repro.delaymodel import speculative_vc_pipeline

    design = speculative_vc_pipeline(p=5, v=2, w=32)
    print(design.describe())   # 3 stages at a 20-tau4 clock
"""

from .tau import (
    CMOS_018UM,
    CMOS_08UM,
    DEFAULT_CLOCK_TAU4,
    TAU4_IN_TAU,
    Technology,
    tau4_to_tau,
    tau_to_tau4,
)
from .logical_effort import (
    Path,
    Stage as EffortStage,
    buffer_chain_delay,
    inverter_delay,
    optimal_stage_count,
)
from .modules import (
    ALLOCATOR_OVERHEAD_TAU,
    AtomicModule,
    RoutingRange,
    combiner_delay,
    crossbar_delay,
    crossbar_module,
    routing_module,
    spec_switch_allocator_delay,
    speculative_allocation_delay,
    speculative_allocation_module,
    switch_allocator_delay,
    switch_allocator_module,
    switch_arbiter_delay,
    switch_arbiter_module,
    vc_allocator_delay,
    vc_allocator_module,
)
from .arbiter import (
    matrix_arbiter_core_path,
    matrix_arbiter_path,
    matrix_arbiter_update_path,
    switch_arbiter_latency,
    switch_arbiter_overhead,
)
from .derivations import (
    combiner_path,
    crossbar_path,
    separable_allocator_path,
)
from .pipeline import (
    FlowControl,
    PipelineDesign,
    Stage,
    StageSlice,
    check_combiner_fits_crossbar_stage,
    design_pipeline,
    pipeline_for,
    speculative_vc_pipeline,
    virtual_channel_pipeline,
    wormhole_pipeline,
)
from .table1 import Table1Row, generate_table1, render_table1
from .chien import (
    ArchitectureComparison,
    ChienDelayBreakdown,
    chien_router_delay,
    compare_architectures,
    comparison_table,
    render_comparison,
)
from .optimizer import (
    ClockPoint,
    credit_loop_cycles,
    min_buffers_for_full_throughput,
    optimal_clock,
    render_clock_sweep,
    sweep_clock,
)

__all__ = [
    "ALLOCATOR_OVERHEAD_TAU",
    "ArchitectureComparison",
    "AtomicModule",
    "ChienDelayBreakdown",
    "ClockPoint",
    "chien_router_delay",
    "compare_architectures",
    "comparison_table",
    "credit_loop_cycles",
    "min_buffers_for_full_throughput",
    "optimal_clock",
    "render_clock_sweep",
    "render_comparison",
    "sweep_clock",
    "CMOS_018UM",
    "CMOS_08UM",
    "DEFAULT_CLOCK_TAU4",
    "EffortStage",
    "FlowControl",
    "Path",
    "PipelineDesign",
    "RoutingRange",
    "Stage",
    "StageSlice",
    "TAU4_IN_TAU",
    "Table1Row",
    "Technology",
    "buffer_chain_delay",
    "check_combiner_fits_crossbar_stage",
    "combiner_delay",
    "combiner_path",
    "crossbar_delay",
    "crossbar_path",
    "crossbar_module",
    "design_pipeline",
    "generate_table1",
    "inverter_delay",
    "matrix_arbiter_core_path",
    "matrix_arbiter_path",
    "matrix_arbiter_update_path",
    "optimal_stage_count",
    "pipeline_for",
    "render_table1",
    "routing_module",
    "separable_allocator_path",
    "spec_switch_allocator_delay",
    "speculative_allocation_delay",
    "speculative_allocation_module",
    "speculative_vc_pipeline",
    "switch_allocator_delay",
    "switch_allocator_module",
    "switch_arbiter_delay",
    "switch_arbiter_latency",
    "switch_arbiter_module",
    "switch_arbiter_overhead",
    "tau4_to_tau",
    "tau_to_tau4",
    "vc_allocator_delay",
    "vc_allocator_module",
    "virtual_channel_pipeline",
    "wormhole_pipeline",
]
