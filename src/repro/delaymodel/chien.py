"""Chien's router delay model (Section 2 / Figure 1), for comparison.

Chien [2, 3] proposed the first implementation-aware router delay model.
The paper criticises two of its structural assumptions:

1. **No pipelining** -- the entire critical path (address decode,
   routing, crossbar arbitration, crossbar traversal, VC allocation) is
   assumed to fit in one clock, so cycle time grows with router
   complexity instead of pipeline depth.
2. **A crossbar port per virtual channel** -- the crossbar has ``p*v``
   ports and is held per packet, so arbitration and traversal delay grow
   rapidly with ``v``; flits are also buffered at virtual-channel
   controllers whose arbitration grows with ``v``.

This module reconstructs Chien-style delay estimates *using this
repository's own gate-level cost functions* so the comparison isolates
the structural assumptions (shared vs per-VC crossbar ports, pipelined
vs single-cycle operation) rather than differences in gate libraries:
the same matrix-arbiter and crossbar equations from Table 1 are
evaluated at Chien's sizes (``p*v``-port crossbar, per-packet
arbitration) and summed into a single-cycle critical path.

:func:`compare_architectures` then quantifies the paper's argument: at
v=4 and beyond, the per-VC-port crossbar dominates router delay, while
the shared-port canonical architecture keeps per-stage delay flat
enough to pipeline at 20 tau4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .modules import crossbar_delay, switch_arbiter_delay
from .arbiter import switch_arbiter_overhead
from .tau import DEFAULT_CLOCK_TAU4, tau_to_tau4


@dataclass(frozen=True)
class ChienDelayBreakdown:
    """Single-cycle critical path of Chien's canonical router, in tau."""

    p: int
    v: int
    w: int
    address_decode_tau: float
    routing_tau: float
    crossbar_arbitration_tau: float   # arbiter for the p*v-port crossbar
    crossbar_traversal_tau: float     # p*v-port crossbar
    vc_controller_tau: float          # v:1 arbitration at the VC controller

    @property
    def total_tau(self) -> float:
        return (
            self.address_decode_tau
            + self.routing_tau
            + self.crossbar_arbitration_tau
            + self.crossbar_traversal_tau
            + self.vc_controller_tau
        )

    @property
    def total_tau4(self) -> float:
        return tau_to_tau4(self.total_tau)

    def implied_clock_tau4(self) -> float:
        """Chien's cycle time: the whole path in one clock."""
        return self.total_tau4


#: Fixed decode + routing budget, matching the paper's footnote-2
#: assumption so both models charge identical routing cost.
_DECODE_TAU = 20.0
_ROUTING_TAU = 80.0


def chien_router_delay(p: int, v: int, w: int) -> ChienDelayBreakdown:
    """Evaluate Chien's architecture with this repo's cost functions.

    * crossbar arbitration: a matrix arbiter sized for ``p*v`` ports
      (every VC owns a crossbar port and arbitrates for the output);
    * crossbar traversal: a ``p*v``-port crossbar;
    * VC controller: a ``v:1`` arbitration multiplexing the physical
      channel, modelled as a v-input matrix arbiter (skipped at v=1).
    """
    if v < 1:
        raise ValueError(f"need v >= 1, got {v}")
    ports = p * v
    vc_controller = (
        switch_arbiter_delay(v) + switch_arbiter_overhead(v) if v > 1 else 0.0
    )
    return ChienDelayBreakdown(
        p=p, v=v, w=w,
        address_decode_tau=_DECODE_TAU,
        routing_tau=_ROUTING_TAU,
        crossbar_arbitration_tau=(
            switch_arbiter_delay(ports) + switch_arbiter_overhead(ports)
        ),
        crossbar_traversal_tau=crossbar_delay(ports, w),
        vc_controller_tau=vc_controller,
    )


@dataclass(frozen=True)
class ArchitectureComparison:
    """Chien's single-cycle model vs this paper's pipelined model."""

    p: int
    v: int
    w: int
    chien_clock_tau4: float          # cycle time Chien's model implies
    chien_per_hop_tau4: float        # = clock (single cycle per hop)
    pipelined_clock_tau4: float      # the fixed system clock
    pipelined_stages: int
    pipelined_per_hop_tau4: float    # stages x clock

    @property
    def chien_frequency_penalty(self) -> float:
        """How much slower Chien's implied clock is than the fixed clock."""
        return self.chien_clock_tau4 / self.pipelined_clock_tau4


def compare_architectures(
    p: int, v: int, w: int, clock_tau4: float = DEFAULT_CLOCK_TAU4
) -> ArchitectureComparison:
    """Quantify Section 2's critique for one configuration.

    The pipelined side uses the speculative VC pipeline when it exists
    for the configuration, else the non-speculative one.
    """
    from .pipeline import speculative_vc_pipeline, virtual_channel_pipeline

    chien = chien_router_delay(p, v, w)
    if v >= 2:
        try:
            design = speculative_vc_pipeline(p, v, w, clock_tau4=clock_tau4)
        except ValueError:
            design = virtual_channel_pipeline(p, v, w, clock_tau4=clock_tau4)
    else:
        from .pipeline import wormhole_pipeline

        design = wormhole_pipeline(p, w, clock_tau4=clock_tau4)
    return ArchitectureComparison(
        p=p, v=v, w=w,
        chien_clock_tau4=chien.implied_clock_tau4(),
        chien_per_hop_tau4=chien.implied_clock_tau4(),
        pipelined_clock_tau4=clock_tau4,
        pipelined_stages=design.depth,
        pipelined_per_hop_tau4=design.depth * clock_tau4,
    )


def comparison_table(
    p: int = 5, w: int = 32, v_values=(1, 2, 4, 8, 16)
) -> List[ArchitectureComparison]:
    """The Section 2 comparison across virtual-channel counts."""
    return [compare_architectures(p, v, w) for v in v_values]


def render_comparison(comparisons: List[ArchitectureComparison]) -> str:
    lines = [
        "Chien's single-cycle model vs the pipelined model (per-hop router "
        "latency, tau4)",
        f"{'v':>4} {'Chien clock':>12} {'pipelined':>10} "
        f"{'stages':>7} {'clock penalty':>14}",
    ]
    for c in comparisons:
        lines.append(
            f"{c.v:4d} {c.chien_clock_tau4:12.1f} "
            f"{c.pipelined_per_hop_tau4:10.1f} {c.pipelined_stages:7d} "
            f"{c.chien_frequency_penalty:13.2f}x"
        )
    lines.append(
        "(Chien: whole critical path in one clock; its cycle time -- and "
        "hence every\n other component on that clock -- stretches with v. "
        "The pipelined model keeps\n the clock fixed and adds stages.)"
    )
    return "\n".join(lines)
