"""Matrix-arbiter delay derivation (EQ 4--6 and Figure 10 of the paper).

An ``n:1`` matrix arbiter keeps an upper-triangular ``n x n`` matrix of
flip-flops recording the binary priority between every pair of
requestors.  A requestor is granted if it has a higher recorded priority
than every other active requestor; on a grant its priority is set lowest.

Two views of the arbiter delay are provided:

* :func:`matrix_arbiter_path` -- a *constructive* gate-level critical
  path assembled from the gate library
  (:mod:`repro.delaymodel.gates`), following the sketch in the paper's
  Figure 10: request gating, AOI grant logic, a priority AND-tree of
  alternating NAND/NOR levels, and the fan-out of the grant to the
  priority-update circuits.  This reproduces the *derivation
  methodology* of the specific router model.

* :func:`switch_arbiter_latency` / :func:`switch_arbiter_overhead` --
  the paper's published closed forms (EQ 5 and EQ 6)::

      t_SB(p)      = t_eff(p) + t_par(p)
      t_eff(p)     = 14.5 log4(p) +  4 1/12    (status-latch fanout to p
                                                requests, 2-input NAND,
                                                fanout to p grant circuits)
      t_par(p)     =  7   log4(p) + 10         (p:1 matrix arbiter parasitics)
      => t_SB(p)   = 21.5 log4(p) + 14 1/12

      h_SB(p)      = h_eff + h_par = 4 + 5 = 9 (2-input NOR + 3-input NOR
                                                in the priority-update path)

The closed forms are what :mod:`repro.delaymodel.modules` (Table 1)
uses; the constructive path is validated against them in the test suite
(within a small tolerance -- the paper's printed derivation constants
are only partially legible, so the constructive path demonstrates the
method rather than digit-exact constants).
"""

from __future__ import annotations

import math

from . import gates
from .logical_effort import Path, log4


#: Fraction appearing in EQ 5's constant term (14 + 1/12 tau).
_EQ5_CONSTANT = 14.0 + 1.0 / 12.0
_EQ5_EFF_CONSTANT = 4.0 + 1.0 / 12.0
_EQ5_PAR_CONSTANT = 10.0


def switch_arbiter_effort_delay(p: int) -> float:
    """Effort delay ``t_eff(p)`` of the wormhole switch arbiter (EQ 5), tau."""
    _check_ports(p)
    return 14.5 * log4(p) + _EQ5_EFF_CONSTANT


def switch_arbiter_parasitic_delay(p: int) -> float:
    """Parasitic delay ``t_par(p)`` of the wormhole switch arbiter (EQ 5), tau."""
    _check_ports(p)
    return 7.0 * log4(p) + _EQ5_PAR_CONSTANT


def switch_arbiter_latency(p: int) -> float:
    """Latency ``t_SB(p) = 21.5 log4(p) + 14 1/12`` tau (EQ 5)."""
    _check_ports(p)
    return 21.5 * log4(p) + _EQ5_CONSTANT


def switch_arbiter_overhead(p: int) -> float:
    """Overhead ``h_SB(p) = 9`` tau (EQ 6): matrix priority update.

    The update path is a 2-input NOR followed by a 3-input NOR;
    ``h_eff = 5/3 + 7/3 = 4`` and ``h_par = 2 + 3 = 5``.  Independent of
    ``p`` because the matrix cell update is local.
    """
    _check_ports(p)
    return 9.0


def matrix_arbiter_path(n: int) -> Path:
    """Constructive gate-level critical path of an ``n:1`` matrix arbiter.

    Stages (Figure 10):

    1. Status latch driving the ``n`` request-gating circuits (buffered
       when the fan-out exceeds the optimal stage effort of 4).
    2. 2-input NAND gating each request with the resource status.
    3. AOI grant gate combining the request with the matrix priorities.
    4. Priority AND-tree: ``ceil(log2 n)`` alternating NAND2/NOR2 levels
       verifying the requestor beats all higher-priority requestors.
    5. Grant fan-out: an inverter chain (stage effort 4) broadcasting
       the grant to the ``n`` priority-update circuits.
    """
    _check_inputs(n)
    path = Path(f"matrix_arbiter_{n}to1")

    # 1. status latch fan-out to n requests (buffered beyond fan-out 4).
    path.add(gates.latch().stage(min(float(n), 4.0), "status latch -> requests"))
    if n > 4:
        _add_chain(path, n / 4.0, f"request fanout buffers to {n}")
    # 2. request gating NAND.
    path.add(gates.nand(2).stage(1.0, "request AND status"))
    # 3. AOI grant logic combining request and matrix priorities.
    path.add(gates.aoi(2, 2).stage(1.0, "grant aoi"))
    # 4. priority AND-tree: alternating NAND2/NOR2 levels.
    depth = max(1, math.ceil(math.log2(n)))
    for level in range(depth):
        gate = gates.nand(2) if level % 2 == 0 else gates.nor(2)
        path.add(gate.stage(2.0, f"priority tree level {level} ({gate.name})"))
    # 5. grant fan-out to n priority-update circuits.
    _add_chain(path, float(n), f"grant fanout to {n} update circuits")
    return path


def _add_chain(path: Path, fanout: float, label: str) -> None:
    """Append an analytic inverter chain covering ``fanout`` to a path.

    The chain runs at the optimal stage effort of 4, costing 5 tau per
    ``log4(fanout)`` stages; fractional stage counts are kept continuous
    to match the model's smooth closed forms.  Represented as a single
    synthetic stage whose delay equals the analytic total.
    """
    if fanout <= 1.0:
        return
    delay = 5.0 * math.log(fanout, 4.0)
    path.add(
        # g=1, h=delay-1, p=1 yields exactly `delay` tau.
        gates.GateSpec("chain", 1.0, 1.0).stage(max(delay - 1.0, 0.001), label)
    )


def matrix_arbiter_core_path(n: int) -> Path:
    """Arbitration core only: AOI grant logic, priority tree, grant fan-out.

    :func:`matrix_arbiter_path` additionally includes the resource-status
    latch and request fan-out that a *standalone* switch arbiter needs;
    inside a separable allocator the second stage receives its requests
    directly from first-stage winners, so composed paths
    (:mod:`repro.delaymodel.derivations`) use this core instead.
    """
    _check_inputs(n)
    path = Path(f"matrix_arbiter_core_{n}to1")
    path.add(gates.aoi(2, 2).stage(1.0, "grant aoi"))
    depth = max(1, math.ceil(math.log2(n)))
    for level in range(depth):
        gate = gates.nand(2) if level % 2 == 0 else gates.nor(2)
        path.add(gate.stage(2.0, f"priority tree level {level} ({gate.name})"))
    _add_chain(path, float(n), f"grant fanout to {n} update circuits")
    return path


def matrix_arbiter_update_path() -> Path:
    """Constructive priority-update (overhead) path: NOR2 then NOR3 (EQ 6)."""
    path = Path("matrix_arbiter_priority_update")
    path.add(gates.nor(2).stage(1.0, "grant row/column nor2"))
    path.add(gates.nor(3).stage(1.0, "matrix cell nor3"))
    return path


def _check_ports(p: int) -> None:
    if p < 2:
        raise ValueError(f"arbiter needs at least 2 ports, got {p}")


def _check_inputs(n: int) -> None:
    if n < 2:
        raise ValueError(f"matrix arbiter needs at least 2 inputs, got {n}")
