"""The method of logical effort (Sutherland & Sproull), EQ 2 of the paper.

The circuit delay ``T`` (in tau) along a path is the sum of the *effort
delay* and the *parasitic delay* of that path::

    T = T_eff + T_par
    T_eff = sum_i g_i * h_i      (logical effort x electrical effort per stage)
    T_par = sum_i p_i            (parasitic delay per stage)

* ``g`` (logical effort) -- ratio of a gate's delay to that of an inverter
  with identical input capacitance.
* ``h`` (electrical effort) -- fan-out: output capacitance over input
  capacitance.
* ``p`` (parasitic delay) -- intrinsic gate delay from internal
  capacitance, relative to an inverter's.

This module provides :class:`Stage` and :class:`Path` objects for
composing gate-level critical paths, and helpers used by the atomic-module
delay derivations in :mod:`repro.delaymodel.arbiter` and
:mod:`repro.delaymodel.modules`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Stage:
    """One gate stage on a critical path.

    Attributes
    ----------
    name:
        Label for reporting (e.g. ``"nand2"``, ``"inv fanout to 5 grants"``).
    logical_effort:
        ``g`` of the gate on this stage.
    electrical_effort:
        ``h``, the stage fan-out (output/input capacitance).
    parasitic:
        ``p``, the intrinsic delay of the gate.
    """

    name: str
    logical_effort: float
    electrical_effort: float
    parasitic: float

    def __post_init__(self) -> None:
        if self.logical_effort <= 0:
            raise ValueError(f"logical effort must be positive: {self}")
        if self.electrical_effort <= 0:
            raise ValueError(f"electrical effort must be positive: {self}")
        if self.parasitic < 0:
            raise ValueError(f"parasitic delay must be non-negative: {self}")

    @property
    def effort_delay(self) -> float:
        """``g * h`` for this stage, in tau."""
        return self.logical_effort * self.electrical_effort

    @property
    def delay(self) -> float:
        """Total stage delay ``g*h + p``, in tau."""
        return self.effort_delay + self.parasitic


@dataclass
class Path:
    """A chain of gate stages whose delays add (EQ 2)."""

    name: str
    stages: List[Stage] = field(default_factory=list)

    def add(self, stage: Stage) -> "Path":
        """Append a stage; returns self for chaining."""
        self.stages.append(stage)
        return self

    def extend(self, stages: Iterable[Stage]) -> "Path":
        """Append several stages; returns self for chaining."""
        self.stages.extend(stages)
        return self

    @property
    def effort_delay(self) -> float:
        """``T_eff = sum g_i h_i`` in tau."""
        return sum(s.effort_delay for s in self.stages)

    @property
    def parasitic_delay(self) -> float:
        """``T_par = sum p_i`` in tau."""
        return sum(s.parasitic for s in self.stages)

    @property
    def delay(self) -> float:
        """``T = T_eff + T_par`` in tau."""
        return self.effort_delay + self.parasitic_delay

    @property
    def path_effort(self) -> float:
        """Path effort ``F = prod(g_i * h_i)`` (useful for optimisation)."""
        product = 1.0
        for stage in self.stages:
            product *= stage.effort_delay
        return product

    def __len__(self) -> int:
        return len(self.stages)

    def describe(self) -> str:
        """Multi-line human-readable breakdown of the path delay."""
        lines = [f"path {self.name}: T = {self.delay:.2f} tau "
                 f"(T_eff = {self.effort_delay:.2f}, T_par = {self.parasitic_delay:.2f})"]
        for stage in self.stages:
            lines.append(
                f"  {stage.name}: g={stage.logical_effort:.2f} "
                f"h={stage.electrical_effort:.2f} p={stage.parasitic:.2f} "
                f"-> {stage.delay:.2f} tau"
            )
        return "\n".join(lines)


def inverter_delay(fanout: float) -> float:
    """Delay of an inverter driving ``fanout`` copies of itself (EQ 3).

    ``g = 1``, ``p = 1``, so ``T = fanout + 1``.  ``inverter_delay(4)``
    is 5 tau, the definition of tau4.
    """
    if fanout <= 0:
        raise ValueError(f"fanout must be positive, got {fanout}")
    return 1.0 * fanout + 1.0


def optimal_stage_count(path_effort: float, stage_effort: float = 4.0) -> int:
    """Number of stages minimising delay for a given path effort.

    The classic logical-effort result: the optimum per-stage effort is
    about 4 (3.6 exactly with typical parasitics), so the best stage
    count is ``log4(F)`` rounded to the nearest integer (minimum 1).
    """
    if path_effort < 1.0:
        return 1
    if stage_effort <= 1.0:
        raise ValueError("stage effort must exceed 1")
    return max(1, round(math.log(path_effort, stage_effort)))


def buffer_chain_delay(fanout: float, stage_effort: float = 8.0) -> float:
    """Delay of a buffer chain driving a large ``fanout``.

    The paper's crossbar select-fanout term uses a chain of inverters
    with per-stage electrical effort of ``stage_effort`` (8 in Table 1's
    ``9 log8(...)`` term: each stage costs ``g*h + p = 8 + 1 = 9`` tau).
    The chain length is the continuous ``log_stage_effort(fanout)`` --
    the model deliberately keeps equations smooth in their parameters.
    """
    if fanout < 1.0:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if fanout == 1.0:
        return 0.0
    stages = math.log(fanout, stage_effort)
    return stages * (stage_effort + 1.0)


def log2(x: float) -> float:
    """Base-2 logarithm (guarding the domain with a clear error)."""
    if x <= 0:
        raise ValueError(f"log2 domain error: {x}")
    return math.log2(x)


def log4(x: float) -> float:
    """Base-4 logarithm, ubiquitous in the paper's Table 1 equations."""
    if x <= 0:
        raise ValueError(f"log4 domain error: {x}")
    return math.log(x, 4)


def log8(x: float) -> float:
    """Base-8 logarithm, used in the crossbar select fan-out term."""
    if x <= 0:
        raise ValueError(f"log8 domain error: {x}")
    return math.log(x, 8)


def path_from_efforts(
    name: str, efforts: Sequence[Tuple[str, float, float, float]]
) -> Path:
    """Build a :class:`Path` from ``(name, g, h, p)`` tuples."""
    path = Path(name)
    for stage_name, g, h, p in efforts:
        path.add(Stage(stage_name, g, h, p))
    return path
