"""Technology-independent delay units for the router delay model.

The model of Peh & Dally (HPCA 2001) expresses all delays in units of
``tau`` -- the delay of a minimum-sized inverter driving another identical
inverter.  A second, coarser unit ``tau4`` is the delay of an inverter
driving *four* identical inverters; by the method of logical effort
(see :mod:`repro.delaymodel.logical_effort`, EQ 3 of the paper)::

    tau4 = g*h + p = 1*4 + 1 = 5 tau

A "typical" router clock cycle in the paper is ``20 tau4`` (100 tau).
Technology grounding is done via :class:`Technology`: the paper quotes
``tau4 = 90 ps`` in a 0.18 micron process, making a 20-tau4 cycle about
2 ns (a 500 MHz clock).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Delay of an inverter driving four identical inverters, in tau (EQ 3).
TAU4_IN_TAU: float = 5.0

#: The paper's "typical clock cycle", in tau4.
DEFAULT_CLOCK_TAU4: float = 20.0


def tau4_to_tau(delay_tau4: float) -> float:
    """Convert a delay expressed in tau4 units to tau units."""
    return delay_tau4 * TAU4_IN_TAU


def tau_to_tau4(delay_tau: float) -> float:
    """Convert a delay expressed in tau units to tau4 units."""
    return delay_tau / TAU4_IN_TAU


@dataclass(frozen=True)
class Technology:
    """Grounding of the technology-independent tau model in a process.

    Parameters
    ----------
    name:
        Human-readable process name (e.g. ``"0.18um CMOS"``).
    tau4_ps:
        Measured/assumed delay of a 4x fan-out inverter in picoseconds.
    """

    name: str
    tau4_ps: float

    def __post_init__(self) -> None:
        if self.tau4_ps <= 0:
            raise ValueError(f"tau4_ps must be positive, got {self.tau4_ps}")

    @property
    def tau_ps(self) -> float:
        """Delay of one tau, in picoseconds."""
        return self.tau4_ps / TAU4_IN_TAU

    def tau4_to_ps(self, delay_tau4: float) -> float:
        """Convert a delay in tau4 to picoseconds in this process."""
        return delay_tau4 * self.tau4_ps

    def tau_to_ps(self, delay_tau: float) -> float:
        """Convert a delay in tau to picoseconds in this process."""
        return delay_tau * self.tau_ps

    def clock_frequency_mhz(self, clock_tau4: float = DEFAULT_CLOCK_TAU4) -> float:
        """Clock frequency (MHz) implied by a cycle time in tau4."""
        period_ps = self.tau4_to_ps(clock_tau4)
        return 1e6 / period_ps


#: The 0.18 micron process used for the paper's Synopsys validation
#: (tau4 = 90 ps, so a 20-tau4 cycle is ~2 ns / 500 MHz).
CMOS_018UM = Technology(name="0.18um CMOS", tau4_ps=90.0)

#: Chien's original grounding process, included for model comparisons.
CMOS_08UM = Technology(name="0.8um CMOS", tau4_ps=400.0)
