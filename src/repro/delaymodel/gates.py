"""Standard-cell gate library with logical efforts and parasitic delays.

Values follow Sutherland, Sproull & Harris, *Logical Effort: Designing
Fast CMOS Circuits* (1999), the reference the paper's specific router
model cites.  Logical efforts assume a PMOS/NMOS mobility ratio of 2
(gamma = 2):

=============  ======================  =============
gate           logical effort g        parasitic p
=============  ======================  =============
inverter       1                       1
n-input NAND   (n + 2) / 3             n
n-input NOR    (2n + 1) / 3            n
2:1 mux        2 (per data input)      2 (per slice)
AOI (a-o-i)    see :func:`aoi`         a + o
XOR2           4                       4
latch (D)      2                       2
=============  ======================  =============

These are used to *derive* the atomic-module equations in
:mod:`repro.delaymodel.arbiter`; the closed-form Table 1 equations in
:mod:`repro.delaymodel.modules` are the paper's published fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .logical_effort import Stage


@dataclass(frozen=True)
class GateSpec:
    """Logical effort and parasitic delay of a gate type."""

    name: str
    logical_effort: float
    parasitic: float

    def stage(self, electrical_effort: float, label: str = "") -> Stage:
        """Instantiate a path :class:`Stage` with a given fan-out."""
        return Stage(
            name=label or self.name,
            logical_effort=self.logical_effort,
            electrical_effort=electrical_effort,
            parasitic=self.parasitic,
        )


def inverter() -> GateSpec:
    """Minimum inverter: g = 1, p = 1."""
    return GateSpec("inv", 1.0, 1.0)


def nand(n: int) -> GateSpec:
    """n-input NAND: g = (n + 2)/3, p = n."""
    _check_inputs(n)
    return GateSpec(f"nand{n}", (n + 2) / 3.0, float(n))


def nor(n: int) -> GateSpec:
    """n-input NOR: g = (2n + 1)/3, p = n."""
    _check_inputs(n)
    return GateSpec(f"nor{n}", (2 * n + 1) / 3.0, float(n))


def mux(n: int) -> GateSpec:
    """n:1 transmission/tri-state multiplexer.

    Per logical-effort practice a mux data input has g = 2 independent of
    width, while parasitic delay grows with the number of slices hanging
    on the output node.
    """
    _check_inputs(n)
    return GateSpec(f"mux{n}", 2.0, 2.0 * n / 2.0)


def aoi(and_width: int, or_width: int) -> GateSpec:
    """AND-OR-INVERT gate, as used in the matrix-arbiter grant logic.

    Logical effort of the AND leg of an a-wide AND into an o-wide OR
    (series NMOS of depth ``and_width``, parallel PMOS of width
    ``or_width``)::

        g = (and_width + 2 * or_width) / 3
        p = and_width + or_width
    """
    _check_inputs(and_width)
    _check_inputs(or_width)
    g = (and_width + 2.0 * or_width) / 3.0
    return GateSpec(f"aoi{and_width}{or_width}", g, float(and_width + or_width))


def xor2() -> GateSpec:
    """2-input XOR: g = 4, p = 4."""
    return GateSpec("xor2", 4.0, 4.0)


def latch() -> GateSpec:
    """Transparent D latch: g = 2, p = 2."""
    return GateSpec("latch", 2.0, 2.0)


def _check_inputs(n: int) -> None:
    if n < 1:
        raise ValueError(f"gate width must be >= 1, got {n}")
