"""Pipeline design methodology -- EQ 1 and Figure 11 of the paper.

Given the clock cycle time ``clk`` and, for every atomic module on the
router's critical path, its latency ``t_i`` and overhead ``h_i``, the
general router model packs modules into pipeline stages greedily and
maximally (EQ 1): a stage holding modules ``a..b`` must satisfy::

    sum_{i=a..b} t_i + h_b <= clk

while neither extending the stage by one module nor starting it one
module earlier would still satisfy the bound.  Only the *last* module's
overhead counts against the stage: earlier modules' priority updates
overlap with their successors' latency.

An atomic module is "best kept intact", but when its ``t + h`` exceeds a
whole cycle the model permits it to straddle stage boundaries (paper
footnote 4); the remainder spills into the following stage, where
packing continues.  The module's overhead is charged where its tail
lands (and, per EQ 1, only if the tail is the last module in its
stage).  The crossbar module always receives its own full stage
(wire-delay headroom; Section 3.2).

Canonical pipelines (Figure 4):

* wormhole:          route+decode | switch arbiter | crossbar
* virtual-channel:   route+decode | VC allocator | switch allocator | crossbar
* speculative VC:    route+decode | VC & spec-switch allocation | crossbar
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence

from .modules import (
    AtomicModule,
    RoutingRange,
    combiner_delay,
    crossbar_delay,
    crossbar_module,
    routing_module,
    speculative_allocation_module,
    switch_allocator_module,
    switch_arbiter_module,
    vc_allocator_module,
)
from .tau import DEFAULT_CLOCK_TAU4, tau4_to_tau, tau_to_tau4


class FlowControl(enum.Enum):
    """Flow-control methods whose canonical pipelines the model covers."""

    WORMHOLE = "wormhole"
    VIRTUAL_CHANNEL = "virtual_channel"
    SPECULATIVE_VIRTUAL_CHANNEL = "speculative_virtual_channel"


@dataclass(frozen=True)
class StageSlice:
    """The portion of one atomic module placed within one pipeline stage."""

    module: AtomicModule
    latency_tau: float     # latency portion of the module in this stage
    straddles: bool        # module continues from/into a neighbouring stage
    is_module_tail: bool   # this slice completes the module

    @property
    def is_partial(self) -> bool:
        return self.latency_tau < self.module.latency_tau


@dataclass(frozen=True)
class Stage:
    """One pipeline stage: the module slices it contains."""

    index: int
    slices: List[StageSlice]

    @property
    def occupancy_tau(self) -> float:
        """Stage footprint per EQ 1: slice latencies + last module's overhead."""
        total = sum(s.latency_tau for s in self.slices)
        if self.slices and self.slices[-1].is_module_tail:
            total += self.slices[-1].module.overhead_tau
        return total

    def occupancy_fraction(self, clock_tau: float) -> float:
        return self.occupancy_tau / clock_tau

    def module_names(self) -> List[str]:
        return [s.module.name for s in self.slices]


@dataclass
class PipelineDesign:
    """Result of applying EQ 1 to a module sequence."""

    flow_control: FlowControl
    clock_tau: float
    modules: List[AtomicModule]
    stages: List[Stage] = field(default_factory=list)

    @property
    def depth(self) -> int:
        """Number of pipeline stages -- the per-hop router latency in cycles."""
        return len(self.stages)

    @property
    def clock_tau4(self) -> float:
        return tau_to_tau4(self.clock_tau)

    @property
    def latency_tau(self) -> float:
        """Pipelined critical-path latency = depth x clock, in tau."""
        return self.depth * self.clock_tau

    def stage_occupancies(self) -> List[float]:
        """Fraction of each stage's cycle used -- Fig 11's shaded regions."""
        return [s.occupancy_fraction(self.clock_tau) for s in self.stages]

    def straddling_modules(self) -> List[str]:
        """Names of modules that had to straddle stage boundaries."""
        seen: List[str] = []
        for stage in self.stages:
            for sl in stage.slices:
                if sl.straddles and sl.module.name not in seen:
                    seen.append(sl.module.name)
        return seen

    def describe(self) -> str:
        """Multi-line rendering of the pipeline (a Fig 11 bar, as text)."""
        lines = [
            f"{self.flow_control.value} pipeline @ clk={self.clock_tau4:.0f} tau4: "
            f"{self.depth} stages"
        ]
        for stage in self.stages:
            parts = ", ".join(
                sl.module.name + (" (part)" if sl.is_partial else "")
                for sl in stage.slices
            )
            lines.append(
                f"  stage {stage.index + 1}: [{parts}] "
                f"{stage.occupancy_fraction(self.clock_tau) * 100:.0f}% of cycle"
            )
        return "\n".join(lines)


#: Rounding slack for EQ 1's fit test, in tau.  The Table 1 equations are
#: fits carrying about a tau of rounding, so a module computing to e.g.
#: 100.7 tau against a 100-tau clock is treated as fitting rather than
#: straddling a stage boundary.
EQ1_TOLERANCE_TAU = 1.0


def design_pipeline(
    modules: Sequence[AtomicModule],
    clock_tau4: float = DEFAULT_CLOCK_TAU4,
    flow_control: FlowControl = FlowControl.WORMHOLE,
    tolerance_tau: float = EQ1_TOLERANCE_TAU,
) -> PipelineDesign:
    """Pack atomic modules into pipeline stages per EQ 1.

    Modules are taken in dependency (critical-path) order.  Raises
    ``ValueError`` if the clock is non-positive or the module list is
    empty.  ``tolerance_tau`` is the rounding slack applied to the
    fit test (see :data:`EQ1_TOLERANCE_TAU`).
    """
    if clock_tau4 <= 0:
        raise ValueError(f"clock must be positive, got {clock_tau4} tau4")
    if not modules:
        raise ValueError("cannot design a pipeline with no modules")
    if tolerance_tau < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance_tau}")

    clk = tau4_to_tau(clock_tau4)
    budget = clk + tolerance_tau
    stages: List[List[StageSlice]] = [[]]

    def used_latency() -> float:
        return sum(sl.latency_tau for sl in stages[-1])

    def close_stage() -> None:
        stages.append([])

    for module in modules:
        if module.force_own_stage:
            if stages[-1]:
                close_stage()
            stages[-1].append(StageSlice(module, module.latency_tau, False, True))
            close_stage()
            continue

        footprint = module.latency_tau + module.overhead_tau
        if used_latency() + footprint <= budget:
            stages[-1].append(StageSlice(module, module.latency_tau, False, True))
        elif footprint <= budget:
            close_stage()
            stages[-1].append(StageSlice(module, module.latency_tau, False, True))
        else:
            # The module cannot fit one cycle: straddle from a fresh stage
            # boundary, spilling whole cycles, leaving the tail (plus
            # overhead headroom) in the final stage where packing resumes.
            if stages[-1]:
                close_stage()
            remaining = module.latency_tau
            while remaining + module.overhead_tau > budget:
                chunk = min(clk, remaining)
                if chunk <= 0:
                    raise ValueError(
                        f"module {module.name!r} overhead "
                        f"({module.overhead_tau:.1f} tau) exceeds the clock "
                        f"budget ({budget:.1f} tau); it cannot be pipelined"
                    )
                stages[-1].append(StageSlice(module, chunk, True, False))
                close_stage()
                remaining -= chunk
            stages[-1].append(StageSlice(module, remaining, True, True))

    if not stages[-1]:
        stages.pop()

    design = PipelineDesign(
        flow_control, clk, list(modules), [Stage(i, s) for i, s in enumerate(stages)]
    )
    _validate_eq1(design, budget)
    return design


def _validate_eq1(design: PipelineDesign, budget: float) -> None:
    """Internal invariant: no stage's EQ-1 footprint exceeds the budget."""
    for stage in design.stages:
        if stage.occupancy_tau > budget + 1e-9:
            raise AssertionError(
                f"EQ1 violated: stage {stage.index} occupies "
                f"{stage.occupancy_tau:.2f} tau with budget={budget:.2f} tau"
            )


# ---------------------------------------------------------------------------
# Canonical pipelines.
# ---------------------------------------------------------------------------

def wormhole_pipeline(
    p: int, w: int, clock_tau4: float = DEFAULT_CLOCK_TAU4
) -> PipelineDesign:
    """route+decode | switch arbiter | crossbar (Figure 4a)."""
    modules = [
        routing_module(clock_tau4),
        switch_arbiter_module(p),
        crossbar_module(p, w),
    ]
    return design_pipeline(modules, clock_tau4, FlowControl.WORMHOLE)


def virtual_channel_pipeline(
    p: int,
    v: int,
    w: int,
    routing_range: RoutingRange = RoutingRange.RPV,
    clock_tau4: float = DEFAULT_CLOCK_TAU4,
) -> PipelineDesign:
    """route+decode | VC allocation | switch allocation | crossbar (Fig 4b)."""
    modules = [
        routing_module(clock_tau4),
        vc_allocator_module(p, v, routing_range),
        switch_allocator_module(p, v),
        crossbar_module(p, w),
    ]
    return design_pipeline(modules, clock_tau4, FlowControl.VIRTUAL_CHANNEL)


def speculative_vc_pipeline(
    p: int,
    v: int,
    w: int,
    routing_range: RoutingRange = RoutingRange.RV,
    clock_tau4: float = DEFAULT_CLOCK_TAU4,
) -> PipelineDesign:
    """route+decode | VC & speculative switch allocation | crossbar (Fig 4c).

    The non-spec/spec combiner folds into the crossbar stage;
    :func:`check_combiner_fits_crossbar_stage` verifies the slack exists.
    """
    check_combiner_fits_crossbar_stage(p, v, w, clock_tau4)
    modules = [
        routing_module(clock_tau4),
        speculative_allocation_module(p, v, routing_range),
        crossbar_module(p, w),
    ]
    return design_pipeline(
        modules, clock_tau4, FlowControl.SPECULATIVE_VIRTUAL_CHANNEL
    )


def check_combiner_fits_crossbar_stage(
    p: int, v: int, w: int, clock_tau4: float = DEFAULT_CLOCK_TAU4
) -> float:
    """Assert ``t_CB + t_XB`` fits the crossbar stage; return the slack (tau).

    The speculative pipeline hides the non-spec/spec combiner in the
    crossbar stage, which is budgeted a full cycle while the crossbar's
    own delay is far below it.  Raises ``ValueError`` if a configuration
    breaks that assumption.
    """
    slack = tau4_to_tau(clock_tau4) - combiner_delay(p, v) - crossbar_delay(p, w)
    if slack < 0:
        raise ValueError(
            f"combiner does not fit crossbar-stage slack for p={p}, v={v}, "
            f"w={w} at clk={clock_tau4} tau4 (short by {-slack:.1f} tau); "
            "use a non-speculative pipeline or a longer clock"
        )
    return slack


def pipeline_for(
    flow_control: FlowControl,
    p: int,
    w: int,
    v: int = 1,
    routing_range: "RoutingRange | None" = None,
    clock_tau4: float = DEFAULT_CLOCK_TAU4,
) -> PipelineDesign:
    """Dispatch to the canonical pipeline for a flow-control method."""
    if flow_control is FlowControl.WORMHOLE:
        return wormhole_pipeline(p, w, clock_tau4)
    if flow_control is FlowControl.VIRTUAL_CHANNEL:
        return virtual_channel_pipeline(
            p, v, w, routing_range or RoutingRange.RPV, clock_tau4
        )
    if flow_control is FlowControl.SPECULATIVE_VIRTUAL_CHANNEL:
        return speculative_vc_pipeline(
            p, v, w, routing_range or RoutingRange.RV, clock_tau4
        )
    raise ValueError(f"unknown flow control {flow_control!r}")
