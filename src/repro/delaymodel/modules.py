"""Atomic-module delay equations -- Table 1 of the paper.

Every router function that cannot be split across pipeline stages
(because it contains state fed back from its own outputs) is an *atomic
module*.  For each one, the specific router model supplies two numbers,
both in tau:

* ``latency`` (``t_i``) -- from inputs presented to outputs stable;
* ``overhead`` (``h_i``) -- extra delay (e.g. arbiter priority update)
  before the *next* set of inputs may be presented.

The closed forms below are the paper's Table 1 equations (``log4`` is a
continuous base-4 logarithm; 1 tau4 = 5 tau):

==============================  =====================================================  ====
module                          t (tau)                                                h
==============================  =====================================================  ====
switch arbiter (SB)             ``21.5 log4(p) + 14 1/12``                             9
crossbar (XB)                   ``9 log8(w p / 2) + 6 log2(p) + 6``                    0
VC allocator, R->v              ``21.5 log4(p v) + 14 1/12``                           9
VC allocator, R->p              ``16.5 log4(p v) + 16.5 log4(v) + 20 5/6``             9
VC allocator, R->pv             ``33 log4(p v) + 20 5/6``                              9
switch allocator (SL)           ``11.5 log4(p) + 23 log4(v) + 20 5/6``                 9
speculative sw allocator (SS)   ``18 log4(p) + 23 log4(v) + 24 5/6``                   0
non-spec/spec combiner (CB)     ``6.5 log4(p v) + 5 1/3``                              0
decode + routing                fixed one clock cycle (20 tau4, paper footnote 2)      0
==============================  =====================================================  ====

Parameters: ``p`` -- physical channels (crossbar ports); ``v`` --
virtual channels per physical channel; ``w`` -- channel (phit) width in
bits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .logical_effort import log2, log4, log8
from .tau import DEFAULT_CLOCK_TAU4, tau4_to_tau
from .arbiter import switch_arbiter_latency, switch_arbiter_overhead


class RoutingRange(enum.Enum):
    """Range of the routing function, which sizes the VC allocator.

    * ``RV`` -- routing returns a *single* candidate output VC
      (``R -> v``): the allocator is a single stage of ``p v:1``
      arbiters.
    * ``RP`` -- routing returns the candidate VCs of a *single* physical
      channel (``R -> p``): a ``v:1`` first stage then a ``p v:1``
      second stage.  The most general range possible for deterministic
      routing.
    * ``RPV`` -- routing returns candidate VCs of *any* physical channel
      (``R -> pv``): two stages of ``p v:1`` arbiters.
    """

    RV = "Rv"
    RP = "Rp"
    RPV = "Rpv"


@dataclass(frozen=True)
class AtomicModule:
    """A named atomic module with its latency/overhead delay estimates."""

    name: str
    latency_tau: float
    overhead_tau: float
    #: The paper keeps crossbar traversal in its own full stage (wire
    #: delay headroom); modules with this flag never share a stage.
    force_own_stage: bool = False

    def __post_init__(self) -> None:
        if self.latency_tau < 0 or self.overhead_tau < 0:
            raise ValueError(f"negative delay in {self}")

    @property
    def total_tau(self) -> float:
        """``t_i + h_i`` in tau -- the footprint used by Table 1's columns."""
        return self.latency_tau + self.overhead_tau


# ---------------------------------------------------------------------------
# Table 1 closed forms (all return tau).
# ---------------------------------------------------------------------------

def switch_arbiter_delay(p: int) -> float:
    """Wormhole switch arbiter latency t_SB(p), tau (delegates to EQ 5)."""
    return switch_arbiter_latency(p)


def crossbar_delay(p: int, w: int) -> float:
    """Crossbar traversal latency ``t_XB(p, w)``, tau.

    Select fan-out to the ``w`` bit slices (buffer chain at stage effort
    8, hence the ``9 log8`` term) plus a ``log2(p)``-deep multiplexer
    tree.
    """
    _check(p=p, w=w)
    return 9.0 * log8(w * p / 2.0) + 6.0 * log2(p) + 6.0


def vc_allocator_delay(p: int, v: int, routing_range: RoutingRange) -> float:
    """VC allocator latency ``t_VC(p, v)`` for a routing-function range, tau."""
    _check(p=p, v=v)
    pv = p * v
    if routing_range is RoutingRange.RV:
        return 21.5 * log4(pv) + 14.0 + 1.0 / 12.0
    if routing_range is RoutingRange.RP:
        return 16.5 * log4(pv) + 16.5 * log4(v) + 20.0 + 5.0 / 6.0
    if routing_range is RoutingRange.RPV:
        return 33.0 * log4(pv) + 20.0 + 5.0 / 6.0
    raise ValueError(f"unknown routing range {routing_range!r}")


def switch_allocator_delay(p: int, v: int) -> float:
    """Non-speculative VC-router switch allocator latency ``t_SL(p, v)``, tau."""
    _check(p=p, v=v)
    return 11.5 * log4(p) + 23.0 * log4(v) + 20.0 + 5.0 / 6.0


def spec_switch_allocator_delay(p: int, v: int) -> float:
    """Speculative switch allocator latency ``t_SS(p, v)``, tau."""
    _check(p=p, v=v)
    return 18.0 * log4(p) + 23.0 * log4(v) + 24.0 + 5.0 / 6.0


def combiner_delay(p: int, v: int) -> float:
    """Non-speculative-over-speculative combiner latency ``t_CB(p, v)``, tau."""
    _check(p=p, v=v)
    return 6.5 * log4(p * v) + 5.0 + 1.0 / 3.0


ALLOCATOR_OVERHEAD_TAU = 9.0  # matrix-priority update (EQ 6), shared by SB/VC/SL.


def speculative_allocation_delay(
    p: int, v: int, routing_range: RoutingRange, include_combiner: bool = True
) -> float:
    """Delay of the combined VC + speculative-switch allocation, tau.

    The VC allocator and the speculative switch allocator operate in
    parallel; the combiner (CB) then selects non-speculative switch
    grants over speculative ones::

        t = max(t_VC, t_SS) [+ t_CB]

    With ``include_combiner=True`` this reproduces the Table 1
    "speculative virtual-channel router" rows (14.6 / 14.6 / 18.3 tau4
    at p=5, v=2) and Figure 12's curves.  The pipeline designer
    (:mod:`repro.delaymodel.pipeline`) folds the combiner into the
    crossbar stage's slack instead -- see there.
    """
    vc = vc_allocator_delay(p, v, routing_range)
    ss = spec_switch_allocator_delay(p, v)
    delay = max(vc, ss)
    if include_combiner:
        delay += combiner_delay(p, v)
    return delay


# ---------------------------------------------------------------------------
# AtomicModule factories.
# ---------------------------------------------------------------------------

def routing_module(clock_tau4: float = DEFAULT_CLOCK_TAU4) -> AtomicModule:
    """Decode + routing: assumed to occupy one full clock cycle."""
    return AtomicModule("route+decode", tau4_to_tau(clock_tau4), 0.0)


def switch_arbiter_module(p: int) -> AtomicModule:
    """Wormhole switch arbiter (SB) module."""
    return AtomicModule("sw arbiter", switch_arbiter_delay(p), switch_arbiter_overhead(p))


def crossbar_module(p: int, w: int) -> AtomicModule:
    """Crossbar traversal (XB) module; always gets a full stage."""
    return AtomicModule("crossbar", crossbar_delay(p, w), 0.0, force_own_stage=True)


def vc_allocator_module(p: int, v: int, routing_range: RoutingRange) -> AtomicModule:
    """Virtual-channel allocator (VC) module."""
    return AtomicModule(
        f"vc alloc ({routing_range.value})",
        vc_allocator_delay(p, v, routing_range),
        ALLOCATOR_OVERHEAD_TAU,
    )


def switch_allocator_module(p: int, v: int) -> AtomicModule:
    """Non-speculative switch allocator (SL) module."""
    return AtomicModule(
        "sw alloc", switch_allocator_delay(p, v), ALLOCATOR_OVERHEAD_TAU
    )


def speculative_allocation_module(
    p: int, v: int, routing_range: RoutingRange
) -> AtomicModule:
    """Combined VC + speculative switch allocation stage module.

    Latency is ``max(t_VC + h_VC, t_SS + h_SS)``: the two allocators run
    in parallel, each absorbing its own priority-update overhead, and
    the combiner (CB) is folded into the slack of the crossbar stage
    (the crossbar is budgeted a full 20-tau4 cycle but its own delay is
    well under that; ``t_CB + t_XB < 20 tau4`` is asserted by
    :func:`repro.delaymodel.pipeline.check_combiner_fits_crossbar_stage`
    for all supported configurations).  This reproduces the paper's
    Figure 11(b) stage counts: up to 16 VCs per physical channel fit a
    3-stage pipeline for p in {5, 7}.
    """
    vc = vc_allocator_delay(p, v, routing_range) + ALLOCATOR_OVERHEAD_TAU
    ss = spec_switch_allocator_delay(p, v)  # h_SS = 0
    return AtomicModule(
        f"vc&sw alloc ({routing_range.value})", max(vc, ss), 0.0
    )


def _check(p: int = 2, v: int = 1, w: int = 1) -> None:
    if p < 2:
        raise ValueError(f"router needs at least 2 physical channels, got p={p}")
    if v < 1:
        raise ValueError(f"need at least 1 virtual channel, got v={v}")
    if w < 1:
        raise ValueError(f"channel width must be >= 1 bit, got w={w}")
