"""repro: a reproduction of Peh & Dally, "A Delay Model and Speculative
Architecture for Pipelined Routers" (HPCA 2001).

Three layers:

* :mod:`repro.delaymodel` -- the logical-effort router delay model
  (Table 1's parametric equations) and the EQ-1 pipeline designer.
* :mod:`repro.sim` -- a cycle-accurate flit-level mesh simulator with
  wormhole, virtual-channel, speculative virtual-channel, and
  unit-latency routers under credit-based flow control.
* :mod:`repro.core` -- the high-level :class:`~repro.core.RouterDesign`
  API tying the two together, plus speculation analysis.

:mod:`repro.experiments` regenerates every table and figure of the
paper's evaluation (see DESIGN.md and EXPERIMENTS.md).
"""

from .core import FlowControl, RouterDesign, RoutingRange
from .delaymodel import (
    generate_table1,
    speculative_vc_pipeline,
    virtual_channel_pipeline,
    wormhole_pipeline,
)
from .runtime import (
    Experiment,
    GridResult,
    ProgressHook,
    ResultCache,
    RunCounters,
)
from .sim import (
    MeasurementConfig,
    RouterKind,
    RunResult,
    SimConfig,
    SweepResult,
    paper_scale,
    simulate,
)
from .telemetry import TelemetryConfig, TelemetrySummary

__version__ = "1.1.0"

__all__ = [
    "Experiment",
    "FlowControl",
    "GridResult",
    "MeasurementConfig",
    "ProgressHook",
    "ResultCache",
    "RouterDesign",
    "RouterKind",
    "RoutingRange",
    "RunCounters",
    "RunResult",
    "SimConfig",
    "SweepResult",
    "TelemetryConfig",
    "TelemetrySummary",
    "__version__",
    "generate_table1",
    "paper_scale",
    "simulate",
    "speculative_vc_pipeline",
    "virtual_channel_pipeline",
    "wormhole_pipeline",
]
