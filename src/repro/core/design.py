"""High-level router design API: from parameters to pipeline and simulation.

``RouterDesign`` is the library's front door.  Given a flow-control
method and the key parameters the paper's model takes -- physical
channels ``p``, virtual channels ``v``, phit width ``w``, and the clock
cycle in tau4 -- it derives:

* the pipeline prescribed by the delay model (EQ 1), hence the per-hop
  router latency in cycles and in absolute time for a chosen process;
* a matching :class:`~repro.sim.config.SimConfig` whose simulated router
  has exactly that pipeline depth, for latency-throughput evaluation.

Example::

    from repro.core import RouterDesign, FlowControl

    design = RouterDesign(FlowControl.SPECULATIVE_VIRTUAL_CHANNEL,
                          num_vcs=2, buffers_per_vc=4)
    print(design.summary())
    result = design.simulate(injection_fraction=0.3)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..delaymodel.modules import RoutingRange
from ..delaymodel.pipeline import FlowControl, PipelineDesign, pipeline_for
from ..delaymodel.tau import CMOS_018UM, DEFAULT_CLOCK_TAU4, Technology
from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..sim.engine import simulate as _simulate
from ..sim.metrics import RunResult

_FLOW_TO_ROUTER_KIND = {
    FlowControl.WORMHOLE: RouterKind.WORMHOLE,
    FlowControl.VIRTUAL_CHANNEL: RouterKind.VIRTUAL_CHANNEL,
    FlowControl.SPECULATIVE_VIRTUAL_CHANNEL: RouterKind.SPECULATIVE_VC,
}

#: Base pipeline depths of the simulator's router implementations.
#: When the delay model prescribes a *deeper* pipeline (a VC allocator
#: straddling stage boundaries at high VC counts, Figure 11), the extra
#: stages map onto ``SimConfig.va_extra_cycles`` so the simulated router
#: matches the prescribed depth exactly.  A model pipeline *shallower*
#: than the base (possible only at very long clocks, where allocation
#: stages merge) cannot be realised and is refused.
_SIMULATED_DEPTHS = {
    FlowControl.WORMHOLE: 3,
    FlowControl.VIRTUAL_CHANNEL: 4,
    FlowControl.SPECULATIVE_VIRTUAL_CHANNEL: 3,
}


@dataclass
class RouterDesign:
    """A router configuration evaluated through the paper's full stack."""

    flow_control: FlowControl
    num_ports: int = 5
    num_vcs: int = 2
    phit_bits: int = 32
    clock_tau4: float = DEFAULT_CLOCK_TAU4
    routing_range: Optional[RoutingRange] = None
    buffers_per_vc: int = 4
    mesh_radix: int = 8
    technology: Technology = CMOS_018UM
    _pipeline: PipelineDesign = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.flow_control is FlowControl.WORMHOLE:
            self.num_vcs = 1
        self._pipeline = pipeline_for(
            self.flow_control,
            self.num_ports,
            self.phit_bits,
            v=self.num_vcs,
            routing_range=self.routing_range,
            clock_tau4=self.clock_tau4,
        )

    @property
    def pipeline(self) -> PipelineDesign:
        """The pipeline the delay model prescribes (EQ 1)."""
        return self._pipeline

    @property
    def per_hop_cycles(self) -> int:
        """Router latency per hop, in cycles (pipeline depth)."""
        return self._pipeline.depth

    @property
    def per_hop_ps(self) -> float:
        """Router latency per hop in picoseconds, in ``technology``."""
        return self.technology.tau4_to_ps(self.per_hop_cycles * self.clock_tau4)

    def sim_config(self, injection_fraction: float = 0.1, **overrides) -> SimConfig:
        """A simulator configuration realising this design's pipeline.

        Extra model-prescribed allocation stages (straddling allocators
        at high VC counts) become ``va_extra_cycles``.  Raises
        ``ValueError`` when the model pipeline is *shallower* than the
        simulated router's base depth (only possible at very long
        clocks), which the fixed implementations cannot realise.
        """
        base = _SIMULATED_DEPTHS[self.flow_control]
        extra = self._pipeline.depth - base
        if extra < 0:
            raise ValueError(
                f"the delay model prescribes a {self._pipeline.depth}-stage "
                f"pipeline (clock {self.clock_tau4:.0f} tau4), shallower "
                f"than the simulated {self.flow_control.value} router's "
                f"{base} stages; use a clock near the paper's 20 tau4"
            )
        if extra > 0 and self.flow_control is FlowControl.WORMHOLE:
            raise ValueError(
                "wormhole routers have no allocation stage to deepen; "
                "the model's extra stages cannot be simulated"
            )
        if extra > 0:
            overrides.setdefault("va_extra_cycles", extra)
        return SimConfig(
            router_kind=_FLOW_TO_ROUTER_KIND[self.flow_control],
            mesh_radix=self.mesh_radix,
            num_vcs=self.num_vcs,
            buffers_per_vc=self.buffers_per_vc,
            injection_fraction=injection_fraction,
            **overrides,
        )

    def simulate(
        self,
        injection_fraction: float = 0.1,
        measurement: Optional[MeasurementConfig] = None,
        **overrides,
    ) -> RunResult:
        """Run one latency/throughput measurement at an offered load."""
        return _simulate(self.sim_config(injection_fraction, **overrides),
                         measurement)

    def summary(self) -> str:
        """Human-readable design summary."""
        frequency = self.technology.clock_frequency_mhz(self.clock_tau4)
        lines = [
            f"{self.flow_control.value} router: p={self.num_ports}, "
            f"v={self.num_vcs}, w={self.phit_bits} bits",
            f"clock: {self.clock_tau4:.0f} tau4 "
            f"({frequency:.0f} MHz in {self.technology.name})",
            f"per-hop latency: {self.per_hop_cycles} cycles "
            f"({self.per_hop_ps / 1000:.2f} ns)",
            self._pipeline.describe(),
        ]
        return "\n".join(lines)
