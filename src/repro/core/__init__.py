"""High-level API: router designs evaluated through model + simulator."""

from ..delaymodel.modules import RoutingRange
from ..delaymodel.pipeline import FlowControl
from .design import RouterDesign
from .speculation import SpeculationReport, measure_speculation

__all__ = [
    "FlowControl",
    "RouterDesign",
    "RoutingRange",
    "SpeculationReport",
    "measure_speculation",
]
