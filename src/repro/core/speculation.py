"""Speculation analysis utilities.

The paper's core architectural argument is that switch-allocation
speculation is *conservative*: prioritising non-speculative requests
means speculation can waste only crossbar slots that certain traffic was
not using, so it never hurts -- and at low load, when output VCs are
usually free, almost every speculation succeeds, which is exactly when
the saved pipeline stage matters for latency.

These helpers quantify that from simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..sim.config import MeasurementConfig, RouterKind, SimConfig
from ..sim.engine import simulate
from ..sim.metrics import RunResult


@dataclass(frozen=True)
class SpeculationReport:
    """Speculation effectiveness at one offered load."""

    injection_fraction: float
    spec_grants: int
    spec_wasted: int
    average_latency: float

    @property
    def success_rate(self) -> float:
        """Fraction of surviving speculative grants that moved a flit."""
        if self.spec_grants == 0:
            return 0.0
        return 1.0 - self.spec_wasted / self.spec_grants

    def describe(self) -> str:
        return (
            f"load {self.injection_fraction:4.0%}: "
            f"{self.spec_grants} speculative grants, "
            f"{self.success_rate:.1%} useful "
            f"(latency {self.average_latency:.1f} cycles)"
        )


def measure_speculation(
    injection_fraction: float,
    num_vcs: int = 2,
    buffers_per_vc: int = 4,
    mesh_radix: int = 8,
    measurement: Optional[MeasurementConfig] = None,
    seed: int = 1,
) -> SpeculationReport:
    """Run the speculative router and report speculation effectiveness."""
    config = SimConfig(
        router_kind=RouterKind.SPECULATIVE_VC,
        mesh_radix=mesh_radix,
        num_vcs=num_vcs,
        buffers_per_vc=buffers_per_vc,
        injection_fraction=injection_fraction,
        seed=seed,
    )
    result: RunResult = simulate(config, measurement)
    return SpeculationReport(
        injection_fraction=injection_fraction,
        spec_grants=result.spec_grants,
        spec_wasted=result.spec_wasted,
        average_latency=result.average_latency,
    )
