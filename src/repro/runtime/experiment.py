"""The unified experiment runtime: one façade over every way to run.

:class:`Experiment` owns the measurement scale, the execution backend,
the result cache, and progress reporting.  Its core is a single method:

* :meth:`Experiment.map` -- run a batch of configs, in input order,
  through the chunked job scheduler.

Everything else is a thin, keyword-only convenience wrapper over it:

* :meth:`Experiment.point` -- a single config.
* :meth:`Experiment.sweep` / :meth:`Experiment.sweeps` -- one or more
  latency-throughput curves.
* :meth:`Experiment.grid` -- a config x load x seed cartesian grid, the
  shape behind every figure of Section 5.
* :meth:`Experiment.aggregate` -- one point across seeds, with a CI.

(The accreted ``run_one/run_many/run_sweep/run_sweeps/run_grid/
run_with_seeds`` surface survives as deprecated shims over the above --
see the migration table in ``docs/RUNTIME.md``.)

Execution goes through an :class:`~repro.runtime.backends.\
ExecutionBackend` (``serial``, chunked work-stealing ``process`` pool,
or the rank-style ``ssh`` fabric) selected via ``backend=`` or
``$REPRO_BACKEND``; results are bit-identical across backends since
each point is a pure function of config + seed.  Completed points
stream into the content-addressed :class:`~repro.runtime.cache.\
ResultCache` *as they land*, with progress recorded in a sweep
manifest -- so an interrupted batch keeps everything it finished and a
re-run executes only the points still missing.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.instrumentation import NullProgress, ProgressHook
from ..sim.metrics import AggregateResult, RunResult, SweepResult
from ..telemetry.config import TelemetryConfig
from ..telemetry.registry import MetricRegistry
from .backends import ExecutionBackend, SerialBackend, SSHBackend, resolve_backend
from .cache import ResultCache, config_key
from .scheduler import Job, JobQueue, Plan, SchedulerStats

#: Offered loads used when a sweep doesn't specify its own grid
#: (mirrors ``experiments.sweep.DEFAULT_LOADS``; duplicated to keep the
#: runtime layer importable without the experiments layer).
DEFAULT_LOADS: Sequence[float] = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75)

#: Chunk-latency buckets (seconds) for the scheduler histogram.
CHUNK_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


@dataclass
class GridPoint:
    """One executed point of a grid: the exact config and its result."""

    config: SimConfig
    result: RunResult
    cached: bool = field(default=False, compare=False)


@dataclass
class GridResult:
    """Every point of a :meth:`Experiment.grid` call, in grid order."""

    points: List[GridPoint] = field(default_factory=list)

    @property
    def results(self) -> List[RunResult]:
        return [p.result for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def seeds(self) -> List[int]:
        return sorted({p.config.seed for p in self.points})

    def curve(self, label: str, *, seed: Optional[int] = None,
              where=None) -> SweepResult:
        """A subset of the grid as a latency-throughput curve.

        ``seed`` keeps one seed's points; ``where`` is an optional
        predicate over each point's :class:`SimConfig` (e.g. one router
        kind out of a multi-config grid).
        """
        points = [
            p.result for p in self.points
            if (seed is None or p.config.seed == seed)
            and (where is None or where(p.config))
        ]
        return SweepResult(label=label, points=points)

    def describe(self) -> str:
        lines = [f"grid of {len(self.points)} points:"]
        for point in self.points:
            lines.append(
                f"  seed {point.config.seed}  " + point.result.describe()
            )
        return "\n".join(lines)


@dataclass
class ExperimentStats:
    """Cumulative accounting across an :class:`Experiment`'s batches.

    The scheduler sub-record carries the dispatch-level observability
    the job queue collects -- chunk latency, steal/split counts, worker
    busy time, cache-stream lag -- and :meth:`to_registry` exports the
    whole object as :mod:`repro.telemetry` metrics so experiment-level
    and simulation-level observability share one data model.
    """

    points_requested: int = 0
    points_executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    wall_seconds: float = 0.0
    scheduler: SchedulerStats = field(default_factory=SchedulerStats)
    #: Specialization envelope, summed over executed points: routers
    #: that ran a compiled step closure versus the generic reference
    #: path, and how many points fell back for each reason.
    routers_specialized: int = 0
    routers_generic: int = 0
    generic_step_reasons: Dict[str, int] = field(default_factory=dict)
    #: Provenance tally over returned results: how many answers were
    #: freshly "simulated" vs replayed from "cached" (pre-provenance
    #: cache entries count under "unknown").
    sources: Dict[str, int] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        if not self.points_requested:
            return 0.0
        return self.cache_hits / self.points_requested

    @property
    def steals(self) -> int:
        return self.scheduler.steals

    @property
    def mean_worker_utilization(self) -> float:
        utilization = self.scheduler.worker_utilization()
        if not utilization:
            return 0.0
        return sum(utilization.values()) / len(utilization)

    def record_source(self, source: Optional[str]) -> None:
        """Tally one returned result's provenance stamp."""
        key = source or "unknown"
        self.sources[key] = self.sources.get(key, 0) + 1

    def describe_sources(self) -> str:
        """One-phrase provenance summary for the CLI ``[runtime]`` line."""
        if not self.sources:
            return "no results"
        return ", ".join(
            f"{count} {source}"
            for source, count in sorted(self.sources.items())
        )

    def record_counters(self, counters) -> None:
        """Fold one executed point's :class:`RunCounters` envelope in."""
        self.routers_specialized += counters.routers_specialized
        self.routers_generic += counters.routers_generic
        reason = counters.generic_step_reason
        if reason is not None:
            self.generic_step_reasons[reason] = (
                self.generic_step_reasons.get(reason, 0) + 1
            )

    def describe_specialization(self) -> str:
        """One-phrase envelope summary for the CLI ``[runtime]`` line."""
        total = self.routers_specialized + self.routers_generic
        if not total:
            return "no router-step data"
        if not self.routers_generic:
            return f"{self.routers_specialized} routers specialized"
        reasons = ", ".join(
            f"{reason}: {count}"
            for reason, count in sorted(self.generic_step_reasons.items())
        )
        summary = (
            f"{self.routers_specialized} routers specialized / "
            f"{self.routers_generic} generic"
        )
        return f"{summary} ({reasons})" if reasons else summary

    def to_registry(self) -> MetricRegistry:
        """This record as telemetry metrics (counters/gauges/histogram)."""
        registry = MetricRegistry()
        registry.counter("experiment_points_requested").inc(
            self.points_requested
        )
        registry.counter("experiment_points_executed").inc(
            self.points_executed
        )
        registry.counter("experiment_cache_hits").inc(self.cache_hits)
        registry.counter("experiment_points_deduplicated").inc(
            self.deduplicated
        )
        registry.counter("experiment_routers_specialized").inc(
            self.routers_specialized
        )
        registry.counter("experiment_routers_generic").inc(
            self.routers_generic
        )
        for reason, count in sorted(self.generic_step_reasons.items()):
            registry.counter(
                "experiment_generic_step_points", reason=reason
            ).inc(count)
        for source, count in sorted(self.sources.items()):
            registry.counter(
                "experiment_result_source", source=source
            ).inc(count)
        scheduler = self.scheduler
        registry.counter("scheduler_chunks_completed").inc(
            scheduler.chunks_completed
        )
        registry.counter("scheduler_steals").inc(scheduler.steals)
        registry.counter("scheduler_splits").inc(scheduler.splits)
        histogram = registry.histogram(
            "scheduler_chunk_seconds", bounds=CHUNK_SECONDS_BUCKETS
        )
        if scheduler.chunks_completed:
            # Aggregate form: mean into the matching bucket keeps the
            # histogram's total/observations exact even though the
            # per-chunk spread is summarized, and the max is preserved
            # in its own bucket.
            mean = scheduler.mean_chunk_seconds
            histogram.observe(mean, scheduler.chunks_completed - 1)
            histogram.observe(scheduler.chunk_seconds_max)
            # Re-anchor the total to the true sum (mean * (n-1) + max
            # overshoots by max - mean).
            histogram.total = scheduler.chunk_seconds_total
        for worker, utilization in scheduler.worker_utilization().items():
            registry.gauge(
                "scheduler_worker_utilization", worker=worker
            ).set(utilization)
        lag = registry.gauge("cache_stream_lag_seconds")
        if scheduler.stream_lag_count:
            lag.set(scheduler.mean_stream_lag)
            lag.set(scheduler.stream_lag_max)
        return registry


def _warn_deprecated(old: str, new: str) -> None:
    """One :class:`DeprecationWarning` per call site (python's default
    warning registry deduplicates on the caller's module + line)."""
    warnings.warn(
        f"Experiment.{old}() is deprecated; use {new} instead "
        f"(migration table: docs/RUNTIME.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class Experiment:
    """Owns how simulation points run: scale, backend, cache, progress.

    Parameters
    ----------
    measurement:
        Sampling scale shared by every point (default
        :class:`MeasurementConfig`).
    workers:
        Process count for parallel execution; ``0``/``1`` run serially
        in-process (determinism debugging, no fork overhead).  ``None``
        reads ``$REPRO_WORKERS`` (default serial).
    backend:
        Execution strategy: an :class:`ExecutionBackend` instance or a
        name -- ``"serial"``, ``"process"``/``"process:N"`` (chunked
        work-stealing pool), ``"ssh"`` (rank-style multi-host fabric
        sharing the cache directory).  ``None`` reads ``$REPRO_BACKEND``
        and otherwise infers from ``workers``.
    plan:
        Default :class:`~repro.runtime.scheduler.Plan` for every batch
        (chunk sizing, manifest bookkeeping); per-call ``plan=`` wins.
    cache:
        ``None`` disables caching; ``True`` uses the default directory
        (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sim``); a path or a
        :class:`ResultCache` selects a specific store.
    progress:
        A :class:`~repro.sim.instrumentation.ProgressHook` observing
        point starts/finishes.
    check_invariants:
        Per-cycle conservation/credit checks (slow; tests only).
    checked:
        Run every point with the invariant-probe suite of
        :mod:`repro.sim.validation` attached ("checked mode"); each
        result carries its validation summary.  ``None`` reads
        ``$REPRO_CHECKED`` (default off).  Checked runs bypass the
        result cache: their summaries must describe *this* execution,
        and cache entries stay comparable across modes.
    telemetry:
        Attach the streaming observability layer of
        :mod:`repro.telemetry` to every point: ``True`` enables default
        sampling, a :class:`~repro.telemetry.TelemetryConfig` chooses
        the sampling scale.  ``None`` reads ``$REPRO_TELEMETRY``
        (default off).  Implemented by stamping the config's own
        ``telemetry`` field (explicit per-config settings win), so the
        request rides the cache key and worker pickles for free, and
        telemetry-on results are cached separately from plain ones.
    """

    def __init__(
        self,
        measurement: Optional[MeasurementConfig] = None,
        *,
        workers: Optional[int] = None,
        backend: Union[ExecutionBackend, str, None] = None,
        plan: Optional[Plan] = None,
        cache: Union[ResultCache, str, Path, bool, None] = None,
        progress: Optional[ProgressHook] = None,
        check_invariants: bool = False,
        checked: Optional[bool] = None,
        telemetry: Union[TelemetryConfig, bool, None] = None,
    ) -> None:
        self.measurement = measurement or MeasurementConfig()
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "0"))
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.backend: ExecutionBackend = resolve_backend(
            backend, workers=workers
        )
        self.plan = plan or Plan()
        self.cache = self._resolve_cache(cache)
        self.progress: ProgressHook = progress or NullProgress()
        self.check_invariants = check_invariants
        if checked is None:
            env = os.environ.get("REPRO_CHECKED", "")
            checked = bool(env) and env not in ("0", "false", "no")
        self.checked = checked
        if telemetry is None:
            env = os.environ.get("REPRO_TELEMETRY", "")
            telemetry = bool(env) and env not in ("0", "false", "no")
        if telemetry is True:
            telemetry = TelemetryConfig()
        elif telemetry is False:
            telemetry = None
        elif telemetry is not None and not isinstance(
            telemetry, TelemetryConfig
        ):
            raise TypeError(
                f"telemetry must be a bool or TelemetryConfig, "
                f"got {telemetry!r}"
            )
        self.telemetry: Optional[TelemetryConfig] = telemetry
        self.stats = ExperimentStats()
        if isinstance(self.backend, SSHBackend) and self.cache is None:
            raise ValueError(
                "the ssh backend coordinates ranks through a shared "
                "result cache; pass cache=... (a directory every host "
                "mounts) to use it"
            )

    @staticmethod
    def _resolve_cache(
        cache: Union[ResultCache, str, Path, bool, None]
    ) -> Optional[ResultCache]:
        if cache is None or cache is False:
            return None
        if cache is True:
            return ResultCache()
        if isinstance(cache, ResultCache):
            return cache
        return ResultCache(cache)

    @classmethod
    def from_env(
        cls, measurement: Optional[MeasurementConfig] = None, **overrides
    ) -> "Experiment":
        """An Experiment configured by the ``$REPRO_*`` environment.

        ``REPRO_CACHE=1`` (or any truthy value) enables the default
        on-disk cache; ``REPRO_WORKERS``, ``REPRO_BACKEND`` and
        ``REPRO_CHECKED`` are read by the constructor itself.  Keyword
        overrides win over the environment.
        """
        if "cache" not in overrides:
            env = os.environ.get("REPRO_CACHE", "")
            if env and env not in ("0", "false", "no"):
                overrides["cache"] = True
        return cls(measurement, **overrides)

    # ------------------------------------------------------------------
    # The core: one batch through the job scheduler.
    # ------------------------------------------------------------------

    def map(self, configs: Sequence[SimConfig], *,
            plan: Optional[Plan] = None) -> List[RunResult]:
        """Run a batch of points, returning results in input order.

        Every config is validated up front; identical points execute
        once; cached points never execute.  The batch is chunked onto
        the execution backend by a work-stealing :class:`JobQueue`, and
        each completed point streams into the cache (and the batch's
        sweep manifest) the moment it lands -- interrupting a batch
        keeps everything already finished, and re-running it executes
        only the points still missing.  The result list is bit-identical
        whatever the backend.
        """
        started = time.perf_counter()
        plan = plan or self.plan
        configs = list(configs)
        if self.telemetry is not None:
            # Stamp the experiment-level telemetry request onto configs
            # that don't carry their own; the rewritten config then
            # flows through dedup keys, the cache, and worker pickles
            # exactly like any other knob.
            configs = [
                config if config.telemetry is not None
                else replace(config, telemetry=self.telemetry)
                for config in configs
            ]
        for config in configs:
            config.validate()
        total = len(configs)
        self.stats.points_requested += total
        self.progress.on_batch_start(total)

        # Deduplicate by content key (covers cache addressing too).
        keys = [
            config_key(config, self.measurement) for config in configs
        ]
        results: Dict[str, RunResult] = {}
        cached_keys = set()
        use_cache = self.cache is not None and not self.checked
        manifest = None
        if use_cache:
            for key in dict.fromkeys(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    # Provenance: the engine stamps fresh results
                    # "simulated"; a replayed entry answers as "cached".
                    results[key] = replace(hit, source="cached")
                    cached_keys.add(key)
            if plan.manifest:
                manifest = self.cache.manifest(keys, label=plan.label)
                manifest.start()
                for key in cached_keys:
                    manifest.record(key)

        pending = [
            (index, key) for index, key in enumerate(keys)
            if key not in results
        ]
        # First occurrence of each missing key executes; the rest share.
        to_run: List[Tuple[int, str]] = []
        seen = set()
        for index, key in pending:
            if key not in seen:
                seen.add(key)
                to_run.append((index, key))
        self.stats.deduplicated += len(pending) - len(to_run)
        self.stats.points_executed += len(to_run)
        self.stats.cache_hits += sum(
            1 for key in keys if key in cached_keys
        )

        jobs = [
            Job(
                index=index,
                key=key,
                payload=(
                    configs[index], self.measurement,
                    self.check_invariants, self.checked,
                ),
            )
            for index, key in to_run
        ]
        queue = JobQueue(
            jobs,
            chunk_size=plan.resolve_chunk_size(
                len(jobs), self.backend.slots
            ),
            workers=self.backend.slots,
        )

        def on_result(job: Job, result: RunResult) -> None:
            arrived = time.perf_counter()
            results[job.key] = result
            if result.counters is not None:
                self.stats.record_counters(result.counters)
            if use_cache:
                self.cache.put(
                    job.key, result,
                    metadata={"label": repr(configs[job.index])},
                )
                if manifest is not None:
                    manifest.record(job.key)
                queue.stats.record_stream_lag(
                    time.perf_counter() - arrived
                )
            self.progress.on_point_done(
                job.index, total, configs[job.index], result, cached=False
            )

        try:
            if jobs:
                for job in jobs:
                    self.progress.on_point_start(
                        job.index, total, configs[job.index]
                    )
                self.backend.execute(queue, on_result)
        finally:
            # Keep the accounting even when a worker raised: the
            # streamed points are in the cache and the manifest says so.
            self.stats.scheduler.merge(queue.stats)
            self.stats.wall_seconds += time.perf_counter() - started

        if manifest is not None:
            manifest.complete()

        # Progress for points resolved without executing (cache/dedupe).
        executed_indices = {index for index, _ in to_run}
        for index, key in enumerate(keys):
            if index not in executed_indices:
                self.progress.on_point_done(
                    index, total, configs[index], results[key],
                    cached=key in cached_keys,
                )
        self.progress.on_batch_done(total)
        ordered = [results[key] for key in keys]
        for result in ordered:
            self.stats.record_source(result.source)
        return ordered

    # ------------------------------------------------------------------
    # The public façade: thin wrappers over map().
    # ------------------------------------------------------------------

    def point(self, config: SimConfig) -> RunResult:
        """Run (or fetch from cache) a single simulation point."""
        return self.map([config])[0]

    def sweep(
        self,
        config: SimConfig,
        *,
        label: str,
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
        surrogate_prune: bool = False,
        calibration=None,
        plan: Optional[Plan] = None,
    ) -> SweepResult:
        """One latency-throughput curve over ``loads``.

        ``stop_after_saturation`` truncates the curve after its first
        saturated point.  On the serial backend that point ends
        execution early (the points beyond are strictly more expensive
        and add no information); on batched backends all points run and
        the tail is dropped, so every backend returns identical curves.

        ``surrogate_prune`` additionally drops grid loads more than one
        step past the analytical surrogate's predicted saturation
        before anything executes, so batched backends never pay for the
        deep-saturation tail either.  Off by default; when off, results
        are bit-identical to the unpruned path.
        """
        return self.sweeps(
            [(label, config)], loads=loads,
            stop_after_saturation=stop_after_saturation,
            surrogate_prune=surrogate_prune, calibration=calibration,
            plan=plan,
        )[0]

    def sweeps(
        self,
        labeled_configs: Sequence[Tuple[str, SimConfig]],
        *,
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
        surrogate_prune: bool = False,
        calibration=None,
        plan: Optional[Plan] = None,
    ) -> List[SweepResult]:
        """Several curves over a shared load grid, batched together.

        This is the figure-reproduction shape: with a parallel backend
        attached, every point of every curve fans out as one batch.
        ``surrogate_prune`` pre-prunes each curve's grid at the
        surrogate's predicted saturation (see :meth:`sweep`), using
        ``calibration`` coefficients when given.
        """
        load_grid = sorted(loads)
        grids = {
            index: (
                _surrogate_pruned_loads(load_grid, config, calibration)
                if surrogate_prune else load_grid
            )
            for index, (_, config) in enumerate(labeled_configs)
        }
        serial = isinstance(self.backend, SerialBackend)
        if not serial or not stop_after_saturation:
            flat = [
                replace(config, injection_fraction=load)
                for index, (_, config) in enumerate(labeled_configs)
                for load in grids[index]
            ]
            flat_results = self.map(flat, plan=plan)
            result = []
            start = 0
            for index, (label, _) in enumerate(labeled_configs):
                count = len(grids[index])
                points = flat_results[start:start + count]
                start += count
                result.append(SweepResult(
                    label=label,
                    points=_truncate_after_saturation(
                        points, stop_after_saturation
                    ),
                ))
            return result

        result = []
        for index, (label, config) in enumerate(labeled_configs):
            curve = SweepResult(label=label)
            for load in grids[index]:
                point = self.map(
                    [replace(config, injection_fraction=load)], plan=plan
                )[0]
                curve.points.append(point)
                if stop_after_saturation and point.saturated:
                    break
            result.append(curve)
        return result

    def grid(
        self,
        configs: Union[SimConfig, Sequence[SimConfig]],
        *,
        loads: Optional[Iterable[float]] = None,
        seeds: Optional[Sequence[int]] = None,
        plan: Optional[Plan] = None,
    ) -> GridResult:
        """The cartesian config x load x seed grid, as one batch.

        ``loads=None`` keeps each config's own ``injection_fraction``;
        ``seeds=None`` keeps each config's own ``seed``.  Points come
        back in grid order (configs outermost, seeds innermost).
        """
        if isinstance(configs, SimConfig):
            configs = [configs]
        flat: List[SimConfig] = []
        for config in configs:
            load_axis = (
                [config.injection_fraction] if loads is None
                else sorted(loads)
            )
            seed_axis = [config.seed] if seeds is None else list(seeds)
            for load in load_axis:
                for seed in seed_axis:
                    flat.append(replace(
                        config, injection_fraction=load, seed=seed
                    ))
        results = self.map(flat, plan=plan)
        return GridResult(points=[
            GridPoint(config=config, result=result)
            for config, result in zip(flat, results)
        ])

    def aggregate(
        self,
        config: SimConfig,
        *,
        load: float,
        seeds: Sequence[int] = (1, 2, 3),
    ) -> AggregateResult:
        """One point across several seeds, aggregated with a 95% CI."""
        if not seeds:
            raise ValueError("need at least one seed")
        grid = self.grid(
            replace(config, injection_fraction=load), seeds=seeds
        )
        return AggregateResult(injection_fraction=load, runs=grid.results)

    # ------------------------------------------------------------------
    # Deprecated entry points (the pre-redesign accreted surface).
    # Each forwards to its replacement and warns once per call site.
    # ------------------------------------------------------------------

    def run_many(self, configs: Sequence[SimConfig]) -> List[RunResult]:
        """.. deprecated:: use :meth:`map`."""
        _warn_deprecated("run_many", "Experiment.map(configs)")
        return self.map(configs)

    def run_one(self, config: SimConfig) -> RunResult:
        """.. deprecated:: use :meth:`point`."""
        _warn_deprecated("run_one", "Experiment.point(config)")
        return self.point(config)

    def run_sweep(
        self,
        config: SimConfig,
        label: str,
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
    ) -> SweepResult:
        """.. deprecated:: use :meth:`sweep` (keyword-only)."""
        _warn_deprecated(
            "run_sweep", "Experiment.sweep(config, label=..., loads=...)"
        )
        return self.sweep(
            config, label=label, loads=loads,
            stop_after_saturation=stop_after_saturation,
        )

    def run_sweeps(
        self,
        labeled_configs: Sequence[Tuple[str, SimConfig]],
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
    ) -> List[SweepResult]:
        """.. deprecated:: use :meth:`sweeps` (keyword-only)."""
        _warn_deprecated(
            "run_sweeps", "Experiment.sweeps(labeled_configs, loads=...)"
        )
        return self.sweeps(
            labeled_configs, loads=loads,
            stop_after_saturation=stop_after_saturation,
        )

    def run_grid(
        self,
        configs: Union[SimConfig, Sequence[SimConfig]],
        loads: Optional[Iterable[float]] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> GridResult:
        """.. deprecated:: use :meth:`grid` (keyword-only)."""
        _warn_deprecated(
            "run_grid", "Experiment.grid(configs, loads=..., seeds=...)"
        )
        return self.grid(configs, loads=loads, seeds=seeds)

    def run_with_seeds(
        self,
        config: SimConfig,
        load: float,
        seeds: Sequence[int] = (1, 2, 3),
    ) -> AggregateResult:
        """.. deprecated:: use :meth:`aggregate` (keyword-only)."""
        _warn_deprecated(
            "run_with_seeds", "Experiment.aggregate(config, load=..., seeds=...)"
        )
        return self.aggregate(config, load=load, seeds=seeds)


def _truncate_after_saturation(
    points: List[RunResult], stop_after_saturation: bool
) -> List[RunResult]:
    """Drop everything past the first saturated point (inclusive keep)."""
    if not stop_after_saturation:
        return points
    kept: List[RunResult] = []
    for point in points:
        kept.append(point)
        if point.saturated:
            break
    return kept


def _surrogate_pruned_loads(
    load_grid: List[float], config: SimConfig, calibration
) -> List[float]:
    """Drop grid loads more than one step past the surrogate's knee.

    Keeps every load up to the analytical predicted saturation plus the
    first grid point beyond it (so the measured curve still shows the
    turn), and drops the deep-saturation tail -- the points that cost
    the most wall-clock and contribute nothing but ``inf`` latencies.
    The whole grid survives when the knee sits at or past its top.
    """
    from ..surrogate import DEFAULT_COEFFICIENTS, predicted_saturation

    coefficients = (
        calibration.for_config(config) if calibration is not None
        else DEFAULT_COEFFICIENTS
    )
    knee = predicted_saturation(config, coefficients)
    pruned: List[float] = []
    for load in load_grid:
        pruned.append(load)
        if load > knee:
            break
    return pruned
