"""The unified experiment runtime: one façade over every way to run.

:class:`Experiment` replaces the three historical entry points
(``Simulator(cfg).run()``, module-level ``simulate(cfg, meas)``, and
``experiments.sweep.sweep(...)``) with one object that owns the
measurement scale, the worker pool, the result cache, and progress
reporting:

* :meth:`Experiment.run_one` -- a single point.
* :meth:`Experiment.run_sweep` -- one latency-throughput curve.
* :meth:`Experiment.run_grid` -- a config x load x seed cartesian grid,
  the shape behind every figure of Section 5.

Points fan out over a :class:`concurrent.futures.ProcessPoolExecutor`
when ``workers > 1`` (serial otherwise -- bit-identical results either
way, since each run is a pure function of config + seed), and identical
points are deduplicated and served from the content-addressed
:class:`~repro.runtime.cache.ResultCache` when one is attached.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.engine import Simulator
from ..sim.instrumentation import NullProgress, ProgressHook
from ..sim.metrics import AggregateResult, RunResult, SweepResult
from ..telemetry.config import TelemetryConfig
from .cache import ResultCache, config_key

#: Offered loads used when a sweep doesn't specify its own grid
#: (mirrors ``experiments.sweep.DEFAULT_LOADS``; duplicated to keep the
#: runtime layer importable without the experiments layer).
DEFAULT_LOADS: Sequence[float] = (0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75)


def _execute_payload(
    payload: Tuple[SimConfig, Optional[MeasurementConfig], bool, bool]
) -> RunResult:
    """Worker entry point: run one point (top level so it pickles)."""
    config, measurement, check_invariants, checked = payload
    return Simulator(
        config, measurement, check_invariants, checked=checked
    ).run()


@dataclass
class GridPoint:
    """One executed point of a grid: the exact config and its result."""

    config: SimConfig
    result: RunResult
    cached: bool = field(default=False, compare=False)


@dataclass
class GridResult:
    """Every point of a :meth:`Experiment.run_grid` call, in grid order."""

    points: List[GridPoint] = field(default_factory=list)

    @property
    def results(self) -> List[RunResult]:
        return [p.result for p in self.points]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def seeds(self) -> List[int]:
        return sorted({p.config.seed for p in self.points})

    def curve(self, label: str, *, seed: Optional[int] = None,
              where=None) -> SweepResult:
        """A subset of the grid as a latency-throughput curve.

        ``seed`` keeps one seed's points; ``where`` is an optional
        predicate over each point's :class:`SimConfig` (e.g. one router
        kind out of a multi-config grid).
        """
        points = [
            p.result for p in self.points
            if (seed is None or p.config.seed == seed)
            and (where is None or where(p.config))
        ]
        return SweepResult(label=label, points=points)

    def describe(self) -> str:
        lines = [f"grid of {len(self.points)} points:"]
        for point in self.points:
            lines.append(
                f"  seed {point.config.seed}  " + point.result.describe()
            )
        return "\n".join(lines)


@dataclass
class ExperimentStats:
    """Cumulative accounting across an :class:`Experiment`'s batches."""

    points_requested: int = 0
    points_executed: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        if not self.points_requested:
            return 0.0
        return self.cache_hits / self.points_requested


class Experiment:
    """Owns how simulation points run: scale, parallelism, cache, progress.

    Parameters
    ----------
    measurement:
        Sampling scale shared by every point (default
        :class:`MeasurementConfig`).
    workers:
        Process count for parallel execution; ``0``/``1`` run serially
        in-process (determinism debugging, no fork overhead).  ``None``
        reads ``$REPRO_WORKERS`` (default serial).
    cache:
        ``None`` disables caching; ``True`` uses the default directory
        (``$REPRO_CACHE_DIR`` or ``~/.cache/repro-sim``); a path or a
        :class:`ResultCache` selects a specific store.
    progress:
        A :class:`~repro.sim.instrumentation.ProgressHook` observing
        point starts/finishes.
    check_invariants:
        Per-cycle conservation/credit checks (slow; tests only).
    checked:
        Run every point with the invariant-probe suite of
        :mod:`repro.sim.validation` attached ("checked mode"); each
        result carries its validation summary.  ``None`` reads
        ``$REPRO_CHECKED`` (default off).  Checked runs bypass the
        result cache: their summaries must describe *this* execution,
        and cache entries stay comparable across modes.
    telemetry:
        Attach the streaming observability layer of
        :mod:`repro.telemetry` to every point: ``True`` enables default
        sampling, a :class:`~repro.telemetry.TelemetryConfig` chooses
        the sampling scale.  ``None`` reads ``$REPRO_TELEMETRY``
        (default off).  Implemented by stamping the config's own
        ``telemetry`` field (explicit per-config settings win), so the
        request rides the cache key and worker pickles for free, and
        telemetry-on results are cached separately from plain ones.
    """

    def __init__(
        self,
        measurement: Optional[MeasurementConfig] = None,
        *,
        workers: Optional[int] = None,
        cache: Union[ResultCache, str, Path, bool, None] = None,
        progress: Optional[ProgressHook] = None,
        check_invariants: bool = False,
        checked: Optional[bool] = None,
        telemetry: Union[TelemetryConfig, bool, None] = None,
    ) -> None:
        self.measurement = measurement or MeasurementConfig()
        if workers is None:
            workers = int(os.environ.get("REPRO_WORKERS", "0"))
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.cache = self._resolve_cache(cache)
        self.progress: ProgressHook = progress or NullProgress()
        self.check_invariants = check_invariants
        if checked is None:
            env = os.environ.get("REPRO_CHECKED", "")
            checked = bool(env) and env not in ("0", "false", "no")
        self.checked = checked
        if telemetry is None:
            env = os.environ.get("REPRO_TELEMETRY", "")
            telemetry = bool(env) and env not in ("0", "false", "no")
        if telemetry is True:
            telemetry = TelemetryConfig()
        elif telemetry is False:
            telemetry = None
        elif telemetry is not None and not isinstance(
            telemetry, TelemetryConfig
        ):
            raise TypeError(
                f"telemetry must be a bool or TelemetryConfig, "
                f"got {telemetry!r}"
            )
        self.telemetry: Optional[TelemetryConfig] = telemetry
        self.stats = ExperimentStats()

    @staticmethod
    def _resolve_cache(
        cache: Union[ResultCache, str, Path, bool, None]
    ) -> Optional[ResultCache]:
        if cache is None or cache is False:
            return None
        if cache is True:
            return ResultCache()
        if isinstance(cache, ResultCache):
            return cache
        return ResultCache(cache)

    @classmethod
    def from_env(
        cls, measurement: Optional[MeasurementConfig] = None, **overrides
    ) -> "Experiment":
        """An Experiment configured by the ``$REPRO_*`` environment.

        ``REPRO_CACHE=1`` (or any truthy value) enables the default
        on-disk cache; ``REPRO_WORKERS`` and ``REPRO_CHECKED`` are read
        by the constructor itself.  Keyword overrides win over the
        environment.
        """
        if "cache" not in overrides:
            env = os.environ.get("REPRO_CACHE", "")
            if env and env not in ("0", "false", "no"):
                overrides["cache"] = True
        return cls(measurement, **overrides)

    # ------------------------------------------------------------------
    # Core execution.
    # ------------------------------------------------------------------

    def run_many(self, configs: Sequence[SimConfig]) -> List[RunResult]:
        """Run a batch of points, in input order.

        Every config is validated up front; identical points execute
        once; cached points never execute.  The result list is
        bit-identical whether the batch ran serially or across workers.
        """
        started = time.perf_counter()
        configs = list(configs)
        if self.telemetry is not None:
            # Stamp the experiment-level telemetry request onto configs
            # that don't carry their own; the rewritten config then
            # flows through dedup keys, the cache, and worker pickles
            # exactly like any other knob.
            configs = [
                config if config.telemetry is not None
                else replace(config, telemetry=self.telemetry)
                for config in configs
            ]
        for config in configs:
            config.validate()
        total = len(configs)
        self.stats.points_requested += total
        self.progress.on_batch_start(total)

        # Deduplicate by content key (covers cache addressing too).
        keys = [
            config_key(config, self.measurement) for config in configs
        ]
        results: Dict[str, RunResult] = {}
        cached_keys = set()
        use_cache = self.cache is not None and not self.checked
        if use_cache:
            for key in dict.fromkeys(keys):
                hit = self.cache.get(key)
                if hit is not None:
                    results[key] = hit
                    cached_keys.add(key)

        pending = [
            (index, key) for index, key in enumerate(keys)
            if key not in results
        ]
        # First occurrence of each missing key executes; the rest share.
        to_run: List[Tuple[int, str]] = []
        seen = set()
        for index, key in pending:
            if key not in seen:
                seen.add(key)
                to_run.append((index, key))
        self.stats.deduplicated += len(pending) - len(to_run)
        self.stats.points_executed += len(to_run)
        self.stats.cache_hits += sum(
            1 for key in keys if key in cached_keys
        )

        if self.workers > 1 and len(to_run) > 1:
            self._execute_parallel(configs, keys, to_run, results, total)
        else:
            self._execute_serial(configs, keys, to_run, results, total)

        if use_cache:
            for index, key in to_run:
                self.cache.put(
                    key, results[key],
                    metadata={"label": repr(configs[index])},
                )

        # Progress for points resolved without executing (cache/dedupe).
        executed_indices = {index for index, _ in to_run}
        for index, key in enumerate(keys):
            if index not in executed_indices:
                self.progress.on_point_done(
                    index, total, configs[index], results[key],
                    cached=key in cached_keys,
                )
        self.progress.on_batch_done(total)
        self.stats.wall_seconds += time.perf_counter() - started
        return [results[key] for key in keys]

    def _execute_serial(self, configs, keys, to_run, results, total) -> None:
        for index, key in to_run:
            self.progress.on_point_start(index, total, configs[index])
            results[key] = Simulator(
                configs[index], self.measurement, self.check_invariants,
                checked=self.checked,
            ).run()
            self.progress.on_point_done(
                index, total, configs[index], results[key], cached=False
            )

    def _execute_parallel(self, configs, keys, to_run, results, total) -> None:
        max_workers = min(self.workers, len(to_run))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {}
            for index, key in to_run:
                self.progress.on_point_start(index, total, configs[index])
                future = pool.submit(
                    _execute_payload,
                    (configs[index], self.measurement,
                     self.check_invariants, self.checked),
                )
                futures[future] = (index, key)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                for future in done:
                    index, key = futures[future]
                    results[key] = future.result()
                    self.progress.on_point_done(
                        index, total, configs[index], results[key],
                        cached=False,
                    )

    # ------------------------------------------------------------------
    # The public façade.
    # ------------------------------------------------------------------

    def run_one(self, config: SimConfig) -> RunResult:
        """Run (or fetch from cache) a single simulation point."""
        return self.run_many([config])[0]

    def run_sweep(
        self,
        config: SimConfig,
        label: str,
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
    ) -> SweepResult:
        """One latency-throughput curve over ``loads``.

        ``stop_after_saturation`` truncates the curve after its first
        saturated point.  Serially that point ends execution early (the
        points beyond are strictly more expensive and add no
        information); in parallel all points run and the tail is
        dropped, so both paths return identical curves.
        """
        return self.run_sweeps([(label, config)], loads,
                               stop_after_saturation)[0]

    def run_sweeps(
        self,
        labeled_configs: Sequence[Tuple[str, SimConfig]],
        loads: Iterable[float] = DEFAULT_LOADS,
        stop_after_saturation: bool = True,
    ) -> List[SweepResult]:
        """Several curves over a shared load grid, batched together.

        This is the figure-reproduction shape: with workers attached,
        every point of every curve fans out as one batch.
        """
        load_grid = sorted(loads)
        if self.workers > 1 or not stop_after_saturation:
            flat = [
                replace(config, injection_fraction=load)
                for _, config in labeled_configs
                for load in load_grid
            ]
            flat_results = self.run_many(flat)
            sweeps = []
            for curve_index, (label, _) in enumerate(labeled_configs):
                start = curve_index * len(load_grid)
                points = flat_results[start:start + len(load_grid)]
                sweeps.append(SweepResult(
                    label=label,
                    points=_truncate_after_saturation(
                        points, stop_after_saturation
                    ),
                ))
            return sweeps

        sweeps = []
        for label, config in labeled_configs:
            result = SweepResult(label=label)
            for load in load_grid:
                point = self.run_one(
                    replace(config, injection_fraction=load)
                )
                result.points.append(point)
                if stop_after_saturation and point.saturated:
                    break
            sweeps.append(result)
        return sweeps

    def run_grid(
        self,
        configs: Union[SimConfig, Sequence[SimConfig]],
        loads: Optional[Iterable[float]] = None,
        seeds: Optional[Sequence[int]] = None,
    ) -> GridResult:
        """The cartesian config x load x seed grid, as one batch.

        ``loads=None`` keeps each config's own ``injection_fraction``;
        ``seeds=None`` keeps each config's own ``seed``.  Points come
        back in grid order (configs outermost, seeds innermost).
        """
        if isinstance(configs, SimConfig):
            configs = [configs]
        grid: List[SimConfig] = []
        for config in configs:
            load_axis = (
                [config.injection_fraction] if loads is None
                else sorted(loads)
            )
            seed_axis = [config.seed] if seeds is None else list(seeds)
            for load in load_axis:
                for seed in seed_axis:
                    grid.append(replace(
                        config, injection_fraction=load, seed=seed
                    ))
        results = self.run_many(grid)
        return GridResult(points=[
            GridPoint(config=config, result=result)
            for config, result in zip(grid, results)
        ])

    def run_with_seeds(
        self,
        config: SimConfig,
        load: float,
        seeds: Sequence[int] = (1, 2, 3),
    ) -> AggregateResult:
        """One point across several seeds, aggregated with a 95% CI."""
        if not seeds:
            raise ValueError("need at least one seed")
        grid = self.run_grid(
            replace(config, injection_fraction=load), seeds=seeds
        )
        return AggregateResult(injection_fraction=load, runs=grid.results)


def _truncate_after_saturation(
    points: List[RunResult], stop_after_saturation: bool
) -> List[RunResult]:
    """Drop everything past the first saturated point (inclusive keep)."""
    if not stop_after_saturation:
        return points
    kept: List[RunResult] = []
    for point in points:
        kept.append(point)
        if point.saturated:
            break
    return kept
