"""Execution backends: where and how a :class:`JobQueue` actually runs.

Every backend implements the same tiny protocol -- drain a
:class:`~repro.runtime.scheduler.JobQueue`, calling ``on_result(job,
result)`` for each finished point *as it lands* -- so the
:class:`~repro.runtime.experiment.Experiment` façade can stream results
into the cache and fire progress hooks identically whatever the
execution substrate:

* :class:`SerialBackend` -- in-process, one point at a time.  The
  determinism baseline and the zero-overhead path for small batches.
* :class:`ProcessBackend` -- a :class:`~concurrent.futures.\
  ProcessPoolExecutor` fed by the work-stealing pull loop: each idle
  worker takes the next *chunk* of points (one pickle/spawn round-trip
  per chunk, not per point), and the tail of the queue is split so the
  last chunks are shared instead of straggling.
* :class:`SSHBackend` -- the rank-style multi-host fabric, modelled on
  MPI grid fan-outs: the chunk space is sharded ``chunk_id % world``
  across ranks which share one result-cache directory.  Without
  configured hosts it runs every rank's shard in-process ("loopback"),
  which exercises the sharding/merge semantics end to end; with hosts it
  is a stub that renders the per-host command lines a deployment would
  run (actual remote spawning is not wired up yet).

Backends are selected by :class:`~repro.runtime.experiment.Experiment`
via ``backend=`` or ``$REPRO_BACKEND`` (see :func:`resolve_backend`).
Results are bit-identical across backends -- each point is a pure
function of config + measurement -- and that is enforced by
``oracle_serial_vs_parallel`` running the same sweep through every one
of them.
"""

from __future__ import annotations

import os
import shlex
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.engine import Simulator
from ..sim.metrics import RunResult
from .scheduler import Chunk, JobQueue, OnResult

#: Environment variable naming the default backend.
BACKEND_ENV = "REPRO_BACKEND"
#: Environment variable listing ssh hosts (comma-separated).
SSH_HOSTS_ENV = "REPRO_SSH_HOSTS"


class BackendUnavailable(RuntimeError):
    """The selected backend cannot execute in this environment."""


def run_payload(
    payload: Tuple[SimConfig, Optional[MeasurementConfig], bool, bool]
) -> RunResult:
    """Worker entry point: run one point (top level so it pickles)."""
    config, measurement, check_invariants, checked = payload
    return Simulator(
        config, measurement, check_invariants, checked=checked
    ).run()


def run_chunk(
    payloads: Sequence[Tuple[SimConfig, Optional[MeasurementConfig], bool, bool]]
) -> List[RunResult]:
    """Worker entry point: run one chunk of points in submission order.

    One of these per pickle/spawn round-trip is the whole point of
    chunked scheduling: the per-task overhead that made unchunked
    process fan-out lose to serial is paid once per chunk.
    """
    return [run_payload(payload) for payload in payloads]


@runtime_checkable
class ExecutionBackend(Protocol):
    """Drains a :class:`JobQueue`, streaming completions to ``on_result``."""

    #: Short name used in configuration and stats (``serial``/``process``/...).
    name: str

    @property
    def slots(self) -> int:
        """Concurrent execution slots (sizes automatic chunking)."""

    def execute(self, queue: JobQueue, on_result: OnResult) -> None:
        """Run every chunk, calling ``on_result(job, result)`` per point
        in completion order.  Raises the first worker exception after
        accounting for everything that already finished."""


class SerialBackend:
    """In-process execution, one point at a time, in queue order."""

    name = "serial"

    @property
    def slots(self) -> int:
        return 1

    def execute(self, queue: JobQueue, on_result: OnResult) -> None:
        started = time.perf_counter()
        try:
            while True:
                chunk = queue.pull(0)
                if chunk is None:
                    break
                chunk_started = time.perf_counter()
                try:
                    for job in chunk.jobs:
                        on_result(job, run_payload(job.payload))
                finally:
                    queue.chunk_done(
                        chunk, 0, time.perf_counter() - chunk_started
                    )
        finally:
            queue.stats.dispatch_seconds += time.perf_counter() - started


class ProcessBackend:
    """Chunked fan-out over a process pool with work-stealing dispatch.

    Workers are fed by pulling: each finished worker takes the next
    chunk off the shared queue, so a slow chunk delays only its own
    worker while the others drain the rest.  When fewer chunks remain
    than idle workers the queue's tail is split (see
    :meth:`JobQueue.rebalance`) so the final points finish in parallel.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"process backend needs >= 1 worker, got {workers}")
        self.workers = workers

    @property
    def slots(self) -> int:
        return self.workers

    def execute(self, queue: JobQueue, on_result: OnResult) -> None:
        started = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                in_flight: Dict[Any, Tuple[int, Chunk, float]] = {}

                def feed(worker: int) -> bool:
                    queue.rebalance(self.workers - len(in_flight))
                    chunk = queue.pull(worker)
                    if chunk is None:
                        return False
                    future = pool.submit(
                        run_chunk, [job.payload for job in chunk.jobs]
                    )
                    in_flight[future] = (worker, chunk, time.perf_counter())
                    return True

                for worker in range(self.workers):
                    if not feed(worker):
                        break
                while in_flight:
                    done, _ = wait(
                        set(in_flight), return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        worker, chunk, chunk_started = in_flight.pop(future)
                        results = future.result()
                        queue.chunk_done(
                            chunk, worker,
                            time.perf_counter() - chunk_started,
                        )
                        for job, result in zip(chunk.jobs, results):
                            on_result(job, result)
                        feed(worker)
        finally:
            queue.stats.dispatch_seconds += time.perf_counter() - started


class SSHBackend:
    """Rank-style multi-host execution sharing one cache directory.

    The scheduling model follows MPI-style grid fan-outs: rank ``r`` of
    ``world`` executes exactly the chunks with ``chunk_id % world == r``
    and streams its results into the *shared* content-addressed cache;
    the coordinating process assembles the full batch from the cache.
    Static sharding (no stealing) is deliberate -- ranks on different
    hosts share no queue, only the filesystem.

    Two modes:

    * **loopback** (``hosts=None``/empty): every rank's shard runs
      in-process, sequentially, in rank order.  Functionally complete --
      sharding, streaming and merge semantics are all exercised -- and
      what tests and oracles run.
    * **hosts configured** (``hosts=[...]`` or ``$REPRO_SSH_HOSTS``):
      a deployment stub.  :meth:`command_lines` renders the per-host
      invocations (one ``python -m repro.experiments worker`` per rank
      with its rank/world/cache environment); :meth:`execute` refuses
      with :class:`BackendUnavailable` since remote spawning is not
      wired up yet.
    """

    name = "ssh"

    def __init__(self, hosts: Optional[Sequence[str]] = None,
                 world: Optional[int] = None,
                 python: str = "python") -> None:
        self.hosts: Tuple[str, ...] = tuple(hosts or ())
        if world is None:
            world = len(self.hosts) or 2
        if world < 1:
            raise ValueError(f"world must be >= 1, got {world}")
        self.world = world
        self.python = python

    @classmethod
    def from_env(cls) -> "SSHBackend":
        hosts = [
            host.strip()
            for host in os.environ.get(SSH_HOSTS_ENV, "").split(",")
            if host.strip()
        ]
        return cls(hosts=hosts)

    @property
    def slots(self) -> int:
        return self.world

    def shard(self, queue_length: int, rank: int) -> List[int]:
        """Chunk ids owned by ``rank`` (the static modulo partition)."""
        return [
            chunk_id for chunk_id in range(queue_length)
            if chunk_id % self.world == rank
        ]

    def command_lines(self, cache_dir: str, label: str = "") -> List[str]:
        """The per-host commands a real deployment would launch.

        One line per rank: ``ssh HOST env REPRO_RANK=r ... python -m
        repro.experiments worker``.  The worker process would recompute
        the batch from the manifest named by ``label``, execute its
        shard, and stream results into the shared ``cache_dir``.
        """
        if not self.hosts:
            raise BackendUnavailable(
                "ssh backend has no hosts configured "
                f"(set ${SSH_HOSTS_ENV} or pass hosts=[...])"
            )
        lines = []
        for rank, host in enumerate(self.hosts):
            env = (
                f"REPRO_RANK={rank} REPRO_WORLD={len(self.hosts)} "
                f"REPRO_CACHE_DIR={shlex.quote(cache_dir)}"
            )
            label_arg = f" --label {shlex.quote(label)}" if label else ""
            lines.append(
                f"ssh {shlex.quote(host)} env {env} "
                f"{self.python} -m repro.experiments worker{label_arg}"
            )
        return lines

    def execute(self, queue: JobQueue, on_result: OnResult) -> None:
        if self.hosts:
            raise BackendUnavailable(
                "ssh backend cannot spawn remote workers yet; use "
                "command_lines() to render the per-host invocations, or "
                "leave hosts unset for loopback execution"
            )
        started = time.perf_counter()
        try:
            # Loopback: drain the queue in chunk-id order; each chunk
            # executes as its owning rank (chunk_id % world), which is
            # the static modulo shard -- no stealing across ranks.
            pulled = 0
            while True:
                chunk = queue.pull(pulled)
                if chunk is None:
                    break
                pulled += 1
                rank = chunk.chunk_id % self.world
                chunk_started = time.perf_counter()
                try:
                    for job in chunk.jobs:
                        on_result(job, run_payload(job.payload))
                finally:
                    queue.chunk_done(
                        chunk, rank, time.perf_counter() - chunk_started
                    )
        finally:
            queue.stats.dispatch_seconds += time.perf_counter() - started


def resolve_backend(
    spec: Any = None, *, workers: int = 0
) -> ExecutionBackend:
    """The backend an :class:`Experiment` will execute with.

    ``spec`` may be an :class:`ExecutionBackend` instance, a name
    (``"serial"``, ``"process"``, ``"ssh"``), or ``None`` -- which reads
    ``$REPRO_BACKEND`` and otherwise infers from ``workers``: more than
    one worker selects the process backend, else serial.  A bare
    ``"process"`` uses ``workers`` (minimum 2) for its pool size;
    ``"process:N"`` pins the pool to N.
    """
    if spec is None:
        spec = os.environ.get(BACKEND_ENV) or None
    if spec is None:
        return ProcessBackend(workers) if workers > 1 else SerialBackend()
    if isinstance(spec, (SerialBackend, ProcessBackend, SSHBackend)):
        return spec
    if not isinstance(spec, str):
        if isinstance(spec, ExecutionBackend):
            return spec
        raise TypeError(
            f"backend must be a name or an ExecutionBackend, got {spec!r}"
        )
    name, _, argument = spec.partition(":")
    if name == "serial":
        return SerialBackend()
    if name == "process":
        if argument:
            return ProcessBackend(int(argument))
        return ProcessBackend(max(2, workers))
    if name == "ssh":
        backend = SSHBackend.from_env()
        if argument:
            backend = SSHBackend(hosts=backend.hosts, world=int(argument))
        return backend
    raise ValueError(
        f"unknown backend {spec!r} (expected serial, process[:N] or ssh[:N])"
    )
