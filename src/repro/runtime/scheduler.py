"""The job-scheduler core: chunked, work-stealing dispatch of grid points.

A batch of simulation points (one :class:`Job` each) is partitioned into
:class:`Chunk` s -- contiguous slices of the batch -- and queued on a
:class:`JobQueue`.  Execution backends *pull* chunks from the queue as
their workers go idle instead of receiving a static partition up front:
a worker that finishes early steals the chunks a static split would have
handed to its slower peers, and when the queue runs dry while several
workers are still asking, the tail chunk is split so the last stragglers
share the remaining work.

Chunking is the fix for the per-task overhead that made the original
ProcessPoolExecutor path *lose* to serial execution (BENCH_runtime.json
recorded ``parallel_speedup: 0.819``): one pickle/spawn round-trip now
carries ``chunk_size`` points instead of one.

Scheduling never changes results.  Every knob on :class:`Plan` steers
*how* points execute -- chunk granularity, manifest bookkeeping -- and a
point's :class:`~repro.sim.metrics.RunResult` stays a pure function of
its config + measurement.  That contract is machine-checked: the
``CACHE003`` rule of :mod:`repro.analysis` requires every :class:`Plan`
field to either ride the result-cache key or be declared in
:data:`RESULT_NEUTRAL` below.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: :class:`Plan` fields that steer scheduling only and provably cannot
#: change a point's results -- which is why they are allowed to stay out
#: of the result-cache key.  The CACHE003 lint rule fails the build when
#: a new Plan field is neither keyed nor declared here, so a future knob
#: that *does* change results cannot silently alias cached entries.
RESULT_NEUTRAL = {
    "Plan.chunk_size",
    "Plan.chunks_per_worker",
    "Plan.manifest",
    "Plan.label",
}

#: Target chunks per worker when :attr:`Plan.chunk_size` is automatic.
#: More than one chunk per worker is what makes stealing possible; four
#: keeps chunks large enough to amortize the pickle/spawn round-trip
#: while leaving slack for slow-point imbalance.
DEFAULT_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class Plan:
    """How one :meth:`Experiment.map` batch is scheduled.

    A plan is pure scheduling: no field here may change what any point
    computes (enforced by CACHE003 -- see :data:`RESULT_NEUTRAL`).

    Parameters
    ----------
    chunk_size:
        Points per dispatch unit.  ``None`` sizes chunks automatically
        from the batch and worker count (see :meth:`resolve_chunk_size`).
    chunks_per_worker:
        Granularity target used by automatic sizing.
    manifest:
        Record the batch in a sweep manifest when a cache is attached
        (the resume/progress ledger; see ``docs/RUNTIME.md``).
    label:
        Human-readable tag stored in the manifest header.
    """

    chunk_size: Optional[int] = None
    chunks_per_worker: int = DEFAULT_CHUNKS_PER_WORKER
    manifest: bool = True
    label: str = ""

    def resolve_chunk_size(self, jobs: int, slots: int) -> int:
        """The chunk size to use for ``jobs`` points on ``slots`` workers.

        Explicit :attr:`chunk_size` wins; otherwise aim for
        :attr:`chunks_per_worker` chunks per worker slot so the queue
        always holds spare chunks for stealing, never below one point.
        """
        if self.chunk_size is not None:
            if self.chunk_size < 1:
                raise ValueError(
                    f"chunk_size must be >= 1, got {self.chunk_size}"
                )
            return self.chunk_size
        slots = max(1, slots)
        target_chunks = max(1, slots * self.chunks_per_worker)
        return max(1, -(-jobs // target_chunks))  # ceil division


@dataclass(frozen=True)
class Job:
    """One simulation point of a batch, ready to execute anywhere.

    ``payload`` is the picklable argument tuple the worker entry point
    consumes; ``index`` is the point's position in the caller's batch
    (results come back in batch order regardless of execution order);
    ``key`` is its content-address in the result cache.
    """

    index: int
    key: str
    payload: Tuple[Any, ...]


@dataclass
class Chunk:
    """A contiguous run of jobs dispatched as one unit."""

    chunk_id: int
    jobs: List[Job]

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass
class SchedulerStats:
    """What the dispatch loop did: mergeable across batches.

    ``steals`` counts chunks a worker pulled that a static round-robin
    partition would have assigned to a different worker -- the
    work-stealing win.  ``splits`` counts tail chunks divided so idle
    workers could share the last of the queue.  Latency/busy/lag fields
    aggregate as (count, total, max) so they merge by addition/extrema.
    """

    chunks_total: int = 0
    chunks_completed: int = 0
    jobs_completed: int = 0
    steals: int = 0
    splits: int = 0
    #: Per-chunk wall seconds, aggregated.
    chunk_seconds_total: float = 0.0
    chunk_seconds_max: float = 0.0
    #: Per-worker busy seconds (worker id -> seconds executing chunks).
    worker_busy_seconds: Dict[int, float] = field(default_factory=dict)
    #: Wall seconds the dispatch loop ran (utilization denominator).
    dispatch_seconds: float = 0.0
    #: Completion-to-cache-write lag of streamed results, aggregated.
    stream_lag_count: int = 0
    stream_lag_total: float = 0.0
    stream_lag_max: float = 0.0

    @property
    def mean_chunk_seconds(self) -> float:
        if not self.chunks_completed:
            return 0.0
        return self.chunk_seconds_total / self.chunks_completed

    @property
    def mean_stream_lag(self) -> float:
        if not self.stream_lag_count:
            return 0.0
        return self.stream_lag_total / self.stream_lag_count

    def worker_utilization(self) -> Dict[int, float]:
        """Busy fraction of the dispatch wall time, per worker."""
        if self.dispatch_seconds <= 0:
            return {worker: 0.0 for worker in self.worker_busy_seconds}
        return {
            worker: min(1.0, busy / self.dispatch_seconds)
            for worker, busy in sorted(self.worker_busy_seconds.items())
        }

    def record_stream_lag(self, seconds: float) -> None:
        self.stream_lag_count += 1
        self.stream_lag_total += seconds
        self.stream_lag_max = max(self.stream_lag_max, seconds)

    def merge(self, other: "SchedulerStats") -> None:
        self.chunks_total += other.chunks_total
        self.chunks_completed += other.chunks_completed
        self.jobs_completed += other.jobs_completed
        self.steals += other.steals
        self.splits += other.splits
        self.chunk_seconds_total += other.chunk_seconds_total
        self.chunk_seconds_max = max(
            self.chunk_seconds_max, other.chunk_seconds_max
        )
        for worker, busy in other.worker_busy_seconds.items():
            self.worker_busy_seconds[worker] = (
                self.worker_busy_seconds.get(worker, 0.0) + busy
            )
        self.dispatch_seconds += other.dispatch_seconds
        self.stream_lag_count += other.stream_lag_count
        self.stream_lag_total += other.stream_lag_total
        self.stream_lag_max = max(self.stream_lag_max, other.stream_lag_max)


class JobQueue:
    """Pull-based chunk queue shared by an execution backend's workers.

    The queue owns the chunk partition and the scheduling accounting;
    backends own the mechanics of running a chunk somewhere.  Workers
    call :meth:`pull` when idle and :meth:`chunk_done` when a chunk's
    results land; the queue splits its tail (:meth:`rebalance`) when
    fewer chunks remain than workers asking for them.
    """

    def __init__(self, jobs: Sequence[Job], chunk_size: int,
                 workers: int = 1) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = max(1, workers)
        self.chunk_size = chunk_size
        jobs = list(jobs)
        self._pending: deque = deque(
            Chunk(chunk_id, jobs[start:start + chunk_size])
            for chunk_id, start in enumerate(range(0, len(jobs), chunk_size))
        )
        self._next_chunk_id = len(self._pending)
        self._in_flight = 0
        self.stats = SchedulerStats(chunks_total=len(self._pending))

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def in_flight(self) -> int:
        return self._in_flight

    @property
    def exhausted(self) -> bool:
        """No work left anywhere: queue empty and nothing executing."""
        return not self._pending and self._in_flight == 0

    def pull(self, worker: int) -> Optional[Chunk]:
        """The next chunk for an idle worker, or ``None`` when drained.

        A chunk whose id a static round-robin partition would have
        assigned to a different worker counts as stolen: the pull model
        means fast workers absorb the slack of slow ones instead of the
        batch waiting on the worst static share.
        """
        if not self._pending:
            return None
        chunk = self._pending.popleft()
        self._in_flight += 1
        if chunk.chunk_id % self.workers != worker % self.workers:
            self.stats.steals += 1
        return chunk

    def rebalance(self, idle_workers: int) -> int:
        """Split tail chunks so ``idle_workers`` can share the remnant.

        Called by backends when a worker goes idle and the queue holds
        fewer chunks than there are workers to feed.  Splits the largest
        pending chunks in half until counts match or chunks reach single
        points; returns how many splits happened.
        """
        splits = 0
        while 0 < len(self._pending) < idle_workers:
            largest = max(self._pending, key=len)
            if len(largest) < 2:
                break
            self._pending.remove(largest)
            middle = len(largest) // 2
            left = Chunk(largest.chunk_id, largest.jobs[:middle])
            right = Chunk(self._next_chunk_id, largest.jobs[middle:])
            self._next_chunk_id += 1
            self._pending.appendleft(right)
            self._pending.appendleft(left)
            self.stats.chunks_total += 1
            self.stats.splits += 1
            splits += 1
        return splits

    def chunk_done(self, chunk: Chunk, worker: int, seconds: float) -> None:
        """Record one chunk's completion (latency + worker busy time)."""
        self._in_flight -= 1
        self.stats.chunks_completed += 1
        self.stats.jobs_completed += len(chunk)
        self.stats.chunk_seconds_total += seconds
        self.stats.chunk_seconds_max = max(
            self.stats.chunk_seconds_max, seconds
        )
        self.stats.worker_busy_seconds[worker] = (
            self.stats.worker_busy_seconds.get(worker, 0.0) + seconds
        )


#: Signature backends call for every finished job, in completion order:
#: ``on_result(job, result)``.  The experiment streams the result into
#: the cache and fires progress hooks from inside this callback, so a
#: batch interrupted mid-flight keeps everything already completed.
OnResult = Callable[[Job, Any], None]


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` and return ``(value, wall_seconds)``."""
    started = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - started
