"""Content-addressed on-disk cache of simulation results.

A run is fully determined by its :class:`~repro.sim.config.SimConfig`
(which includes the seed), its
:class:`~repro.sim.config.MeasurementConfig`, and the simulator code
itself, so the cache key is a SHA-256 over a canonical JSON encoding of
all three.  Any config field change -- including the seed -- produces a
different key, and editing anything under ``repro/sim`` rotates the
code fingerprint, so stale entries can never be served.

Entries are one JSON file each, sharded by key prefix, written
atomically (temp file + rename) so concurrent writers on the same
machine cannot corrupt each other.  Results round-trip exactly:
``RunResult.from_dict(result.to_dict()) == result``.

Batches stream: :meth:`Experiment.map` writes each point into the cache
*as it completes* (not at sweep end) and records progress in a
:class:`SweepManifest` -- an append-only JSONL ledger addressed by a
hash of the batch's point keys.  An interrupted sweep therefore keeps
everything it finished; re-running the same batch resumes from the
cache, executing only the points that never landed, and the manifest
says exactly which those are.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Union

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.metrics import RunResult

#: Cache format version; bump to invalidate every existing entry.
CACHE_FORMAT = 1

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Hash of every source file the cached payload depends on.

    Covers ``repro/sim`` (the engine and routers) and
    ``repro/telemetry`` (cached results embed telemetry summaries, so a
    collector change must rotate the key too).  Computed once per
    process; survives process restarts unchanged as long as the sources
    do, which is exactly the invariant the cache needs.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for subpackage in ("sim", "telemetry"):
            for path in sorted((package_root / subpackage).rglob("*.py")):
                digest.update(path.name.encode())
                digest.update(path.read_bytes())
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _jsonable(value: Any) -> Any:
    """Make dataclass-dict values canonical-JSON-safe (enums -> values)."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "value") and value.__class__.__module__ != "builtins":
        return value.value  # enum members
    return value


def config_key(
    config: SimConfig,
    measurement: Optional[MeasurementConfig] = None,
    code_version: Optional[str] = None,
) -> str:
    """Stable content hash identifying one simulation run."""
    payload = {
        "format": CACHE_FORMAT,
        "config": _jsonable(asdict(config)),
        "measurement": _jsonable(asdict(measurement or MeasurementConfig())),
        "code": code_version if code_version is not None else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def sweep_key(keys: Sequence[str]) -> str:
    """Content address of one batch: a hash over its point keys.

    Order-independent (the same set of points is the same sweep however
    the caller enumerated the grid), so a restarted sweep finds its own
    manifest even if the batch was rebuilt in a different order.
    """
    digest = hashlib.sha256()
    for key in sorted(set(keys)):
        digest.update(key.encode())
        digest.update(b"\n")
    return digest.hexdigest()


class SweepManifest:
    """Append-only progress ledger of one batch of points.

    Line 1 is the header (sweep key, label, point count); every
    completed point appends a ``{"done": key}`` record the moment its
    result is in the cache; a final ``{"complete": true}`` line marks a
    finished batch.  Appends are line-buffered single writes, so a
    killed process leaves a readable ledger that simply ends early --
    which is the resume story: re-open the manifest, read the done set,
    execute the rest.
    """

    def __init__(self, path: Path, sweep: str, points: int,
                 label: str = "") -> None:
        self.path = path
        self.sweep = sweep
        self.points = points
        self.label = label
        self._done: Set[str] = set()
        self._complete = False
        self._load()

    def _load(self) -> None:
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return
        for line in lines:
            try:
                record = json.loads(line)
            except ValueError:
                continue  # a torn trailing write from a killed process
            if "done" in record:
                self._done.add(record["done"])
            elif record.get("complete"):
                self._complete = True

    def start(self) -> "SweepManifest":
        """Write the header if this is a fresh ledger; no-op on resume."""
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._append({
                "format": CACHE_FORMAT,
                "sweep": self.sweep,
                "label": self.label,
                "points": self.points,
            })
        return self

    def _append(self, record: Dict[str, Any]) -> None:
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")

    def record(self, key: str) -> None:
        """One point's result is in the cache: append its done record."""
        if key not in self._done:
            self._done.add(key)
            self._append({"done": key})

    def complete(self) -> None:
        """Every point landed: append the completion marker."""
        if not self._complete:
            self._complete = True
            self._append({"complete": True, "points": self.points})

    @property
    def done(self) -> Set[str]:
        return set(self._done)

    @property
    def is_complete(self) -> bool:
        return self._complete

    def remaining(self, keys: Iterable[str]) -> List[str]:
        """The subset of ``keys`` this ledger has not seen complete."""
        return [key for key in keys if key not in self._done]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-sim``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-sim"


class ResultCache:
    """On-disk :class:`RunResult` store addressed by :func:`config_key`."""

    def __init__(self, directory: Union[str, Path, None] = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """The cached result for ``key``, or None (a recorded miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(data["result"])

    def put(self, key: str, result: RunResult,
            metadata: Optional[Dict[str, Any]] = None) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": key,
            "metadata": metadata or {},
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def manifest(self, keys: Sequence[str], label: str = "") -> SweepManifest:
        """The progress ledger for the batch addressed by ``keys``.

        Lives under ``manifests/`` next to the entry shards; the same
        batch (same point keys, any order) always maps to the same
        ledger, which is what makes an interrupted sweep resumable.
        """
        sweep = sweep_key(keys)
        path = self.directory / "manifests" / f"{sweep}.jsonl"
        return SweepManifest(path, sweep, len(set(keys)), label=label)

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(
            1 for p in self.directory.glob("*/*.json")
            if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*/*.json"):
                path.unlink()
                removed += 1
            # Progress ledgers describe entries that no longer exist.
            for path in self.directory.glob("manifests/*.jsonl"):
                path.unlink()
        return removed

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
