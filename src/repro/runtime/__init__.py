"""Sharded sweep runtime: the one way to run experiments.

::

    from repro.runtime import Experiment

    exp = Experiment(workers=4, cache=True)
    grid = exp.grid(configs, loads=(0.05, 0.25, 0.45), seeds=(1, 2, 3))

:class:`Experiment` owns the measurement scale, the execution backend
(serial, chunked work-stealing process pool, or the rank-style ssh
fabric), the content-addressed on-disk :class:`ResultCache`, and
progress reporting.  Its core is :meth:`Experiment.map`; ``point`` /
``sweep`` / ``sweeps`` / ``grid`` / ``aggregate`` are thin wrappers
over it, completed points stream into the cache as they land, and an
interrupted sweep resumes from its manifest (see ``docs/RUNTIME.md``).
The pre-redesign ``run_one`` / ``run_sweep`` / ``run_grid`` surface
remains as deprecated shims.

:class:`Estimator` layers the hybrid serving path on top: surrogate or
cache answers instantly, cycle-accurate refinement in the background
(see ``docs/SURROGATE.md``).
"""

from ..sim.instrumentation import (
    NullProgress,
    PrintProgress,
    ProgressHook,
    RunCounters,
)
from .backends import (
    BackendUnavailable,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    SSHBackend,
    resolve_backend,
)
from .cache import (
    ResultCache,
    SweepManifest,
    code_fingerprint,
    config_key,
    default_cache_dir,
    sweep_key,
)
from .estimator import EstimateAnswer, Estimator
from .experiment import (
    DEFAULT_LOADS,
    Experiment,
    ExperimentStats,
    GridPoint,
    GridResult,
)
from .scheduler import Chunk, Job, JobQueue, Plan, SchedulerStats

__all__ = [
    "BackendUnavailable",
    "Chunk",
    "DEFAULT_LOADS",
    "EstimateAnswer",
    "Estimator",
    "ExecutionBackend",
    "Experiment",
    "ExperimentStats",
    "GridPoint",
    "GridResult",
    "Job",
    "JobQueue",
    "NullProgress",
    "Plan",
    "PrintProgress",
    "ProcessBackend",
    "ProgressHook",
    "ResultCache",
    "RunCounters",
    "SchedulerStats",
    "SerialBackend",
    "SSHBackend",
    "SweepManifest",
    "code_fingerprint",
    "config_key",
    "default_cache_dir",
    "resolve_backend",
    "sweep_key",
]
