"""Parallel sweep runtime: the one way to run experiments.

::

    from repro.runtime import Experiment

    exp = Experiment(workers=4, cache=True)
    grid = exp.run_grid(configs, loads=(0.05, 0.25, 0.45), seeds=(1, 2, 3))

:class:`Experiment` owns the measurement scale, the process pool, the
content-addressed on-disk :class:`ResultCache`, and progress reporting;
``run_one`` / ``run_sweep`` / ``run_grid`` cover everything the older
``Simulator(cfg).run()`` / ``simulate(...)`` / ``sweep(...)`` entry
points did (those remain as thin deprecated shims).
"""

from ..sim.instrumentation import (
    NullProgress,
    PrintProgress,
    ProgressHook,
    RunCounters,
)
from .cache import ResultCache, code_fingerprint, config_key, default_cache_dir
from .experiment import (
    DEFAULT_LOADS,
    Experiment,
    ExperimentStats,
    GridPoint,
    GridResult,
)

__all__ = [
    "DEFAULT_LOADS",
    "Experiment",
    "ExperimentStats",
    "GridPoint",
    "GridResult",
    "NullProgress",
    "PrintProgress",
    "ProgressHook",
    "ResultCache",
    "RunCounters",
    "code_fingerprint",
    "config_key",
    "default_cache_dir",
]
