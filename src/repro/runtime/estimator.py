"""The hybrid serving path: surrogate-first, simulate-to-refine.

:class:`Estimator` is the front door the north-star "millions of user
queries" scenario needs.  :meth:`Estimator.query` answers a
(config, load) question immediately -- from the content-addressed
result cache when the exact point was ever simulated, otherwise from
the analytical surrogate (:mod:`repro.surrogate`) -- and, for
surrogate answers, schedules the real simulation as background
refinement through the ordinary chunked work-stealing scheduler.  The
refined result lands in the shared cache, so the *next* identical
query upgrades from ``surrogate`` to ``cached`` for free.

Every answer is stamped with its provenance (``surrogate`` /
``cached`` / ``simulated``) and an error estimate: the calibration's
residual relative error for surrogate answers, zero for measured ones.
Serving telemetry (query counts per source, refinement backlog,
observed surrogate error against refinements that completed) lives in
a :class:`~repro.telemetry.registry.MetricRegistry` exported by
:attr:`Estimator.registry`, the same data model the simulator and the
experiment runtime already export.

Threading model: the caller's thread only ever touches the front
:class:`~repro.runtime.experiment.Experiment` (used for ``wait=True``
synchronous queries); a single daemon worker drains the refinement
queue through a *second* Experiment that shares the cache but nothing
else, so background simulation never races the foreground stats.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from ..sim.config import MeasurementConfig, SimConfig
from ..sim.metrics import RunResult
from ..surrogate import Calibration, SurrogateEstimate, estimate
from ..telemetry.registry import MetricRegistry
from .cache import config_key
from .experiment import Experiment

__all__ = ["EstimateAnswer", "Estimator"]

#: Refinement points batched into one scheduler submission: large
#: enough to amortize chunking, small enough that the backlog gauge
#: moves while a burst of queries drains.
_REFINE_BATCH = 8

#: Lock discipline, enforced by the CONC analysis rules: every write to
#: these fields must happen under ``with self.<named lock>``.  The
#: caller thread and the refinement drain worker share them; ``_lock``
#: guards the serving stats, ``_idle`` guards the refinement
#: bookkeeping its Condition predicate reads.
LOCKED_BY = {
    "Estimator._queries": "_lock",
    "Estimator._observed_errors": "_lock",
    "Estimator.calibration": "_lock",
    "Estimator._scheduled_keys": "_idle",
    "Estimator._inflight": "_idle",
    "Estimator._worker": "_idle",
    "Estimator._closed": "_idle",
}


@dataclass
class EstimateAnswer:
    """One answer from the hybrid serving path."""

    config: SimConfig
    load: float
    #: Where the numbers came from: "surrogate" (analytical model,
    #: instant), "cached" (previously simulated, replayed from the
    #: content-addressed store) or "simulated" (cycle-accurate run
    #: executed for this query).
    source: str
    latency_cycles: float
    throughput_fraction: float
    saturated: bool
    #: Expected relative latency error: the calibration's residual
    #: max-rel-error for surrogate answers (None when the config's
    #: class was never calibrated), 0.0 for measured answers.
    error_estimate: Optional[float]
    #: The analytical estimate backing a surrogate answer (also
    #: attached to measured answers for breakdown display).
    estimate: Optional[SurrogateEstimate] = None
    #: The measured result backing a cached/simulated answer.
    result: Optional[RunResult] = None
    #: True when this query scheduled a background refinement.
    refinement_scheduled: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "load": self.load,
            "source": self.source,
            "latency_cycles": (
                self.latency_cycles
                if math.isfinite(self.latency_cycles) else None
            ),
            "throughput_fraction": self.throughput_fraction,
            "saturated": self.saturated,
            "error_estimate": self.error_estimate,
            "refinement_scheduled": self.refinement_scheduled,
            "estimate": self.estimate.to_dict() if self.estimate else None,
            "result": self.result.to_dict() if self.result else None,
        }

    def describe(self) -> str:
        latency = (
            f"{self.latency_cycles:7.1f}"
            if math.isfinite(self.latency_cycles) else "    inf"
        )
        if self.error_estimate is None:
            error = "uncalibrated"
        else:
            error = f"+-{self.error_estimate:.1%}"
        return (
            f"load {self.load:4.0%}  latency {latency} cycles  "
            f"accepted {self.throughput_fraction:5.1%}  "
            f"[{self.source}, {error}]"
            f"{'  [saturated]' if self.saturated else ''}"
        )


class Estimator:
    """Surrogate-first query serving over the experiment runtime.

    ``cache`` / ``backend`` / ``workers`` configure the underlying
    Experiments exactly as :class:`~repro.runtime.experiment.Experiment`
    does; ``calibration`` supplies fitted surrogate coefficients (the
    default uncalibrated coefficients serve until
    :meth:`calibrate` or a loaded calibration replaces them);
    ``refine=False`` turns background refinement off (answers still
    come from surrogate + cache).
    """

    def __init__(
        self,
        measurement: Optional[MeasurementConfig] = None,
        *,
        cache: Any = True,
        backend: Any = None,
        workers: Optional[int] = None,
        calibration: Optional[Calibration] = None,
        refine: bool = True,
        refine_batch: int = _REFINE_BATCH,
    ) -> None:
        self.measurement = measurement or MeasurementConfig()
        self.experiment = Experiment(
            self.measurement, cache=cache, backend=backend, workers=workers,
        )
        # The refiner shares the *cache* (that is the hand-off: refined
        # results land where the front door probes) but nothing else --
        # its own backend instance and its own stats, so the background
        # thread never races a synchronous query.
        self._refiner = Experiment(
            self.measurement,
            # NB: an empty ResultCache is falsy -- pass the instance
            # itself, never `cache or False`.
            cache=(
                self.experiment.cache
                if self.experiment.cache is not None else False
            ),
            backend=backend, workers=workers,
        )
        self.calibration = calibration or Calibration()
        self.refine_enabled = refine
        self.refine_batch = max(1, refine_batch)
        self.registry = MetricRegistry()
        self._lock = threading.Lock()
        self._pending: "queue.Queue[Optional[SimConfig]]" = queue.Queue()
        self._scheduled_keys: set = set()
        self._inflight = 0
        self._idle = threading.Condition()
        self._worker: Optional[threading.Thread] = None
        self._closed = False
        self._started = time.perf_counter()
        self._queries = 0
        self._observed_errors: List[float] = []

    # ------------------------------------------------------------------
    # The front door.
    # ------------------------------------------------------------------

    def query(
        self,
        config: SimConfig,
        load: Optional[float] = None,
        *,
        wait: bool = False,
        refine: Optional[bool] = None,
    ) -> EstimateAnswer:
        """Answer one (config, load) question.

        The default path never touches the cycle kernel: a cache hit
        answers as ``cached``, anything else answers instantly from the
        surrogate and (unless ``refine=False``) schedules the real
        simulation in the background.  ``wait=True`` instead blocks on
        the simulation and answers as ``simulated``.
        """
        if load is not None:
            config = replace(config, injection_fraction=load)
        config.validate()
        with self._lock:
            self._queries += 1
            self.registry.counter("estimator_queries").inc()

        key = config_key(config, self.measurement)
        cache = self.experiment.cache
        hit = cache.get(key) if cache is not None else None
        if hit is not None:
            return self._measured_answer(
                config, replace(hit, source="cached"), "cached"
            )
        if wait:
            result = self.experiment.map([config])[0]
            return self._measured_answer(
                config, result, result.source or "simulated"
            )

        coefficients = self.calibration.for_config(config)
        prediction = estimate(config, coefficients=coefficients)
        scheduled = False
        if refine if refine is not None else self.refine_enabled:
            scheduled = self._schedule_refinement(config, key, prediction)
        with self._lock:
            self.registry.counter(
                "estimator_answers", source="surrogate"
            ).inc()
        return EstimateAnswer(
            config=config,
            load=config.injection_fraction,
            source="surrogate",
            latency_cycles=prediction.latency_cycles,
            throughput_fraction=prediction.throughput_fraction,
            saturated=prediction.saturated,
            error_estimate=self.calibration.error_estimate(config),
            estimate=prediction,
            refinement_scheduled=scheduled,
        )

    def query_many(
        self, configs, load: Optional[float] = None, **kwargs
    ) -> List[EstimateAnswer]:
        """One :meth:`query` per config, in order."""
        return [self.query(config, load, **kwargs) for config in configs]

    def _measured_answer(
        self, config: SimConfig, result: RunResult, source: str
    ) -> EstimateAnswer:
        with self._lock:
            self.registry.counter(
                "estimator_answers", source=source
            ).inc()
        coefficients = self.calibration.for_config(config)
        return EstimateAnswer(
            config=config,
            load=config.injection_fraction,
            source=source,
            latency_cycles=result.average_latency,
            throughput_fraction=result.accepted_fraction,
            saturated=result.saturated,
            error_estimate=0.0,
            estimate=estimate(config, coefficients=coefficients),
            result=result,
        )

    # ------------------------------------------------------------------
    # Background refinement.
    # ------------------------------------------------------------------

    def _schedule_refinement(
        self, config: SimConfig, key: str, prediction: SurrogateEstimate
    ) -> bool:
        """Enqueue one point for background simulation (dedup by key)."""
        if self.experiment.cache is None:
            # Nowhere for the refined result to land that a later query
            # would see; skip rather than simulate into the void.
            return False
        with self._idle:
            if self._closed or key in self._scheduled_keys:
                return False
            self._scheduled_keys.add(key)
            self._inflight += 1
            backlog = self._inflight
        self._pending.put(config)
        with self._lock:
            self.registry.counter("estimator_refinements_scheduled").inc()
            self.registry.gauge("estimator_refine_backlog").set(backlog)
        self._ensure_worker()
        return True

    def _ensure_worker(self) -> None:
        with self._idle:
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._drain_loop,
                    name="estimator-refine",
                    daemon=True,
                )
                self._worker.start()

    def _drain_loop(self) -> None:
        while True:
            item = self._pending.get()
            if item is None:
                return
            batch = [item]
            stop = False
            while len(batch) < self.refine_batch:
                try:
                    extra = self._pending.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            try:
                results = self._refiner.map(batch)
            except Exception:  # pragma: no cover - backend failure
                results = [None] * len(batch)
            for config, result in zip(batch, results):
                self._record_refinement(config, result)
            with self._idle:
                self._inflight -= len(batch)
                backlog = self._inflight
                self._idle.notify_all()
            with self._lock:
                self.registry.gauge("estimator_refine_backlog").set(backlog)
            if stop:
                return

    def _record_refinement(
        self, config: SimConfig, result: Optional[RunResult]
    ) -> None:
        """Score the surrogate against one refined (simulated) point."""
        with self._lock:
            self.registry.counter("estimator_refinements_completed").inc()
            if result is None or result.latency is None:
                return
            coefficients = self.calibration.for_config(config)
            predicted = estimate(config, coefficients=coefficients)
            if not math.isfinite(predicted.latency_cycles):
                return
            error = (
                abs(predicted.latency_cycles - result.average_latency)
                / result.average_latency
            )
            self._observed_errors.append(error)
            self.registry.gauge("estimator_observed_rel_error").set(error)
            self.registry.gauge("estimator_observed_max_rel_error").set(
                max(self._observed_errors)
            )

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until the refinement backlog is empty (or timeout)."""
        with self._idle:
            return self._idle.wait_for(
                lambda: self._inflight == 0, timeout=timeout
            )

    def close(self, timeout: Optional[float] = 30.0) -> None:
        """Stop the refinement worker (idempotent)."""
        with self._idle:
            if self._closed:
                return
            self._closed = True
        self._pending.put(None)
        if self._worker is not None and self._worker.is_alive():
            self._worker.join(timeout=timeout)

    def __enter__(self) -> "Estimator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Calibration and reporting.
    # ------------------------------------------------------------------

    def calibrate(self, configs=None, loads=None) -> Calibration:
        """Fit (or re-fit) the surrogate against the cached corpus.

        Gathers the calibration corpus through the front Experiment --
        all cache hits in steady state -- and installs the fitted
        coefficients for subsequent queries.  Returns the calibration
        so callers can serialize it.
        """
        from ..surrogate import calibrate_from_cache

        calibration, _ = calibrate_from_cache(
            self.experiment, configs, loads
        )
        # The drain worker reads self.calibration under _lock while
        # scoring refinements; installing the new fit unlocked would
        # race it.
        with self._lock:
            self.calibration = calibration
        return calibration

    @property
    def backlog(self) -> int:
        """Refinement points scheduled but not yet completed."""
        with self._idle:
            return self._inflight

    def counters(self) -> Dict[str, float]:
        """The serving counters as a flat dict (for tests/CLI)."""
        with self._lock:
            flat: Dict[str, float] = {}
            for key, metric in self.registry.to_dict().items():
                flat[key] = metric.get("value", metric.get("total", 0.0))
            return flat

    def summary(self) -> str:
        """One-paragraph serving summary for the CLI."""
        elapsed = time.perf_counter() - self._started
        with self._lock:
            queries = self._queries
            rate = queries / elapsed if elapsed > 0 else 0.0
            self.registry.gauge("estimator_query_rate_hz").set(rate)
            sources = []
            for source in ("surrogate", "cached", "simulated"):
                counter = self.registry.get(
                    "estimator_answers", source=source
                )
                if counter is not None and counter.value:
                    sources.append(f"{counter.value:.0f} {source}")
            surrogate_counter = self.registry.get(
                "estimator_answers", source="surrogate"
            )
            surrogate_rate = (
                surrogate_counter.value / queries
                if surrogate_counter is not None and queries else 0.0
            )
            observed = (
                f"{max(self._observed_errors):.1%} max observed error "
                f"over {len(self._observed_errors)} refinements"
                if self._observed_errors else "no refinements scored yet"
            )
        backlog = self.backlog
        return (
            f"[estimator] {queries} queries ({rate:.1f}/s), "
            f"{', '.join(sources) if sources else 'no answers'} "
            f"({surrogate_rate:.0%} surrogate hit rate), "
            f"refinement backlog {backlog}, {observed}"
        )
