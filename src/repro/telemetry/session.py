"""The telemetry session the engine drives when telemetry is enabled.

:class:`TelemetrySession` mirrors the validation suite's lifecycle --
``attach`` / ``after_cycle`` / ``finalize`` / ``detach`` -- so the
engine treats both layers identically: one ``is not None`` attribute
test per step when enabled, nothing at all when not.

A session owns the :class:`~repro.telemetry.registry.MetricRegistry`
its collectors record into, the windowed
:class:`~repro.telemetry.timeseries.Timeseries`, and (optionally) a
:class:`~repro.sim.trace.Tracer` for Chrome-trace export.  Its product
is a :class:`~repro.telemetry.summary.TelemetrySummary`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from .collectors import Collector, default_collectors
from .config import TelemetryConfig
from .registry import MetricRegistry
from .summary import TelemetrySummary
from .timeseries import Timeseries, Window


class TelemetrySession:
    """One run's worth of metric collection."""

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        collectors: Optional[Sequence[Collector]] = None,
    ) -> None:
        self.config = config or TelemetryConfig()
        self.collectors: List[Collector] = (
            list(collectors) if collectors is not None
            else default_collectors(self.config)
        )
        self.registry = MetricRegistry()
        self.timeseries = Timeseries(self.config.max_windows)
        self.tracer = None
        self.summary: Optional[TelemetrySummary] = None
        self._attached = False
        self._start_cycle = 0
        self._window_start = 0
        self._last_cycle = 0
        self._wrapped_sinks: List[tuple] = []

    # ------------------------------------------------------------------

    def attach(self, network) -> None:
        if self._attached:
            raise RuntimeError("session is already attached to a network")
        # Collectors wrap generic-path methods (instance-level
        # ``_traverse`` wrappers); compiled step functions would bypass
        # them, so the network falls back to the generic path.
        force = getattr(network, "force_generic_step", None)
        if force is not None:
            force("telemetry")
        self._start_cycle = network.cycle
        self._window_start = network.cycle
        self._last_cycle = network.cycle
        for collector in self.collectors:
            collector.attach(network, self.registry)
        if self.config.capture_trace:
            from ..sim.trace import Tracer

            self._wrapped_sinks = [
                (sink, sink.accept) for sink in network.sinks
            ]
            self.tracer = Tracer.attach(network, self.config.trace_max_events)
        self._attached = True

    def detach(self, network) -> None:
        for collector in self.collectors:
            collector.detach(network)
        if self.tracer is not None:
            for router in network.routers:
                router.tracer = None
            for sink, accept in self._wrapped_sinks:
                sink.accept = accept
            self._wrapped_sinks = []
        self._attached = False

    # ------------------------------------------------------------------

    def after_cycle(self, network) -> None:
        """Observe the settled end-of-step state (every network step)."""
        cycle = network.cycle
        self._last_cycle = cycle
        if (cycle - self._start_cycle) % self.config.sample_period == 0:
            registry = self.registry
            for collector in self.collectors:
                collector.sample(network, registry, cycle)
        if cycle - self._window_start >= self.config.window_cycles:
            self._flush_window(network, cycle)

    def _flush_window(self, network, cycle: int) -> None:
        values: dict = {}
        for collector in self.collectors:
            collector.window(network, values)
        self.timeseries.append(Window(self._window_start, cycle, values))
        self._window_start = cycle

    # ------------------------------------------------------------------

    def finalize(self, network) -> TelemetrySummary:
        """Flush the tail window, run collector finalizers, detach."""
        cycle = network.cycle
        self._last_cycle = cycle
        if cycle > self._window_start:
            self._flush_window(network, cycle)
        cycles_observed = cycle - self._start_cycle
        for collector in self.collectors:
            collector.finalize(network, self.registry, cycles_observed)
        self.detach(network)
        self.summary = TelemetrySummary(
            sample_period=self.config.sample_period,
            window_cycles=self.config.window_cycles,
            cycles_observed=cycles_observed,
            metrics=self.registry,
            windows=self.timeseries.to_dicts(),
        )
        return self.summary


def resolve_telemetry(
    telemetry: Union["TelemetrySession", TelemetryConfig, bool, None],
    config,
) -> Optional["TelemetrySession"]:
    """Interpret the engine's ``telemetry`` argument.

    ``False`` disables telemetry outright; ``None`` defers to
    ``config.telemetry`` (the knob that travels with
    :class:`~repro.sim.config.SimConfig` through caches and worker
    processes); ``True`` enables default sampling; a
    :class:`TelemetryConfig` configures a fresh session; a
    :class:`TelemetrySession` is used as given.
    """
    if telemetry is False:
        return None
    if telemetry is None:
        embedded = getattr(config, "telemetry", None)
        if embedded is None:
            return None
        return TelemetrySession(embedded)
    if telemetry is True:
        return TelemetrySession(TelemetryConfig())
    if isinstance(telemetry, TelemetryConfig):
        return TelemetrySession(telemetry)
    if isinstance(telemetry, TelemetrySession):
        return telemetry
    raise TypeError(
        "telemetry must be a bool, TelemetryConfig or TelemetrySession, "
        f"got {telemetry!r}"
    )
