"""Telemetry configuration.

:class:`TelemetryConfig` is deliberately free of any ``repro.sim``
import: :class:`~repro.sim.config.SimConfig` embeds it as its
``telemetry`` field (so a telemetry request travels with the config
through the result cache's content key and across process-pool hops),
and the sim layer must stay importable without the collectors.

The defaults are the "default sampling" the overhead gate measures:
occupancy sampled every 64 cycles, 1024-cycle windows, at most 64
windows held in memory (older windows merge pairwise, coarsening the
early history instead of growing without bound).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling and retention knobs for one run's telemetry session.

    Frozen: a config is part of the simulation's identity (it changes
    what a run *records*, never what it *simulates*) and is hashed into
    the result-cache key, so it must not mutate after construction.
    """

    #: Cycles between occupancy/utilization samples.  Sampling reads
    #: settled end-of-cycle state; sleeping routers are never woken for
    #: it (their occupancy is provably zero and integrated analytically).
    sample_period: int = 64
    #: Width of one timeseries window in cycles.
    window_cycles: int = 1024
    #: Upper bound on retained windows; a full ring merges adjacent
    #: pairs, halving the count and doubling the early windows' span.
    max_windows: int = 64
    #: Also attach a :class:`~repro.sim.trace.Tracer` so the run can be
    #: exported as a Chrome ``trace_event`` file (Perfetto).  Costs one
    #: record per pipeline event; off by default.
    capture_trace: bool = False
    #: Cap on captured trace events (None = unbounded).
    trace_max_events: Optional[int] = 200_000

    def __post_init__(self) -> None:
        if self.sample_period < 1:
            raise ValueError(
                f"sample_period must be >= 1, got {self.sample_period}"
            )
        if self.window_cycles < self.sample_period:
            raise ValueError(
                "window_cycles must be >= sample_period "
                f"({self.window_cycles} < {self.sample_period})"
            )
        if self.max_windows < 2:
            raise ValueError(
                f"max_windows must be >= 2, got {self.max_windows}"
            )
        if self.trace_max_events is not None and self.trace_max_events < 1:
            raise ValueError("trace_max_events must be >= 1 or None")
